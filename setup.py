"""Legacy setup shim.

The sandboxed environment has no ``wheel`` package and no network, so
PEP 660 editable installs fail; ``pip install -e . --no-use-pep517``
takes the legacy path through this file instead.
"""

from setuptools import setup

setup()
