"""Trimmable gradients: just-in-time gradient compression via packet trimming.

Reproduction of Chen, Vargaftik & Ben Basat (HotNets '24).  The package
is organized as:

* :mod:`repro.core` — the paper's contribution: trimmable two-part
  gradient codecs (sign / SQ / SD / RHT), multi-level tiered codes, and
  the heads-first packet layout.
* :mod:`repro.transforms` — fast Walsh-Hadamard transform and shared-
  randomness streams.
* :mod:`repro.packet` — wire formats, bit packing, and trim policies.
* :mod:`repro.net` — a discrete-event network simulator with
  trim-on-overflow shallow-buffer switches.
* :mod:`repro.transport` — go-back-N (NCCL-like) and trimming-aware
  (NDP-like) transports with congestion control.
* :mod:`repro.collectives` — all-reduce / all-gather over pluggable
  gradient channels, DDP-style comm hooks.
* :mod:`repro.nn` — a numpy autograd training substrate (VGG-style
  models, SGD+momentum, synthetic CIFAR-100-like data).
* :mod:`repro.train` — distributed trainers, the Bernoulli trim channel
  of the paper's evaluation, the wall-clock cost model, trim-transcript
  replay, and FSDP.
* :mod:`repro.baselines` — TernGrad, Top-K, PowerSGD comparisons.
* :mod:`repro.obs` — unified observability: process-wide metrics
  registry, gradient-path span tracing to JSONL, Prometheus text dump
  and per-run reports (``python -m repro.obs.report``).

Quickstart::

    import numpy as np
    from repro import RHTCodec, packetize, decode_packets, nmse

    gradient = np.random.default_rng(0).standard_normal(100_000)
    codec = RHTCodec(root_seed=7)
    packets = packetize(codec.encode(gradient), "gpu0", "gpu1")
    wire = [packets[0]] + [p.trim() for p in packets[1:]]  # congested!
    estimate = decode_packets(wire, codec)
    print(f"NMSE after trimming every packet: {nmse(gradient, estimate):.3f}")
"""

import logging as _logging
import os as _os
import sys as _sys

# Library logging convention: everything under the ``repro.*`` hierarchy,
# silent by default (NullHandler), opted into by applications via
# :func:`configure_logging` or the standard logging module.
_logging.getLogger("repro").addHandler(_logging.NullHandler())


class _DelegatingStreamHandler(_logging.Handler):
    """Handler resolving ``sys.stdout``/``sys.stderr`` at emit time.

    Resolving lazily (instead of capturing the stream at configure time)
    keeps log output visible to tools that swap the streams later —
    pytest's capsys, tee wrappers, notebook kernels.
    """

    def __init__(self, stream_name: str = "stdout") -> None:
        super().__init__()
        if stream_name not in ("stdout", "stderr"):
            raise ValueError(f"stream_name must be stdout or stderr, got {stream_name!r}")
        self.stream_name = stream_name

    def emit(self, record: _logging.LogRecord) -> None:
        try:
            stream = getattr(_sys, self.stream_name)
            stream.write(self.format(record) + "\n")
        except Exception:
            self.handleError(record)


def configure_logging(level=None, stream_name: str = "stdout", fmt: str = "%(message)s"):
    """Attach one stream handler to the ``repro`` logger (idempotent).

    Args:
        level: logging level name or number; defaults to the
            ``REPRO_LOG_LEVEL`` environment variable, then ``INFO``.
        stream_name: ``"stdout"`` (default, CLI-friendly) or ``"stderr"``.
        fmt: log record format (default: bare message, so CLI output
            looks like plain prints).

    Returns:
        The configured ``repro`` logger.
    """
    logger = _logging.getLogger("repro")
    if level is None:
        level = _os.environ.get("REPRO_LOG_LEVEL", "INFO")
    logger.setLevel(level)
    for handler in logger.handlers:
        if isinstance(handler, _DelegatingStreamHandler):
            handler.stream_name = stream_name
            handler.setFormatter(_logging.Formatter(fmt))
            return logger
    handler = _DelegatingStreamHandler(stream_name)
    handler.setFormatter(_logging.Formatter(fmt))
    logger.addHandler(handler)
    return logger


from .core import (
    EncodedGradient,
    GradientCodec,
    GradientMetadata,
    MultiLevelCodec,
    RHTCodec,
    SignMagnitudeCodec,
    StochasticQuantizationCodec,
    SubtractiveDitheringCodec,
    TrimmableLayout,
    available_codecs,
    codec_by_id,
    codec_by_name,
    decode_packets,
    depacketize,
    nmse,
    packetize,
    paper_worked_example,
)
from .packet import GradientHeader, MultiLevelTrim, NeverTrim, Packet, SingleLevelTrim
from .train import (
    DDPTrainer,
    FSDPTrainer,
    RoundTimeModel,
    TimingConfig,
    TrainConfig,
    TrimChannel,
    TrimTranscript,
)

__version__ = "0.1.0"

__all__ = [
    "EncodedGradient",
    "GradientCodec",
    "GradientMetadata",
    "MultiLevelCodec",
    "RHTCodec",
    "SignMagnitudeCodec",
    "StochasticQuantizationCodec",
    "SubtractiveDitheringCodec",
    "TrimmableLayout",
    "available_codecs",
    "codec_by_id",
    "codec_by_name",
    "decode_packets",
    "depacketize",
    "nmse",
    "packetize",
    "paper_worked_example",
    "GradientHeader",
    "MultiLevelTrim",
    "NeverTrim",
    "Packet",
    "SingleLevelTrim",
    "DDPTrainer",
    "FSDPTrainer",
    "RoundTimeModel",
    "TimingConfig",
    "TrainConfig",
    "TrimChannel",
    "TrimTranscript",
    "configure_logging",
    "__version__",
]
