"""Trimmable gradients: just-in-time gradient compression via packet trimming.

Reproduction of Chen, Vargaftik & Ben Basat (HotNets '24).  The package
is organized as:

* :mod:`repro.core` — the paper's contribution: trimmable two-part
  gradient codecs (sign / SQ / SD / RHT), multi-level tiered codes, and
  the heads-first packet layout.
* :mod:`repro.transforms` — fast Walsh-Hadamard transform and shared-
  randomness streams.
* :mod:`repro.packet` — wire formats, bit packing, and trim policies.
* :mod:`repro.net` — a discrete-event network simulator with
  trim-on-overflow shallow-buffer switches.
* :mod:`repro.transport` — go-back-N (NCCL-like) and trimming-aware
  (NDP-like) transports with congestion control.
* :mod:`repro.collectives` — all-reduce / all-gather over pluggable
  gradient channels, DDP-style comm hooks.
* :mod:`repro.nn` — a numpy autograd training substrate (VGG-style
  models, SGD+momentum, synthetic CIFAR-100-like data).
* :mod:`repro.train` — distributed trainers, the Bernoulli trim channel
  of the paper's evaluation, the wall-clock cost model, trim-transcript
  replay, and FSDP.
* :mod:`repro.baselines` — TernGrad, Top-K, PowerSGD comparisons.

Quickstart::

    import numpy as np
    from repro import RHTCodec, packetize, decode_packets, nmse

    gradient = np.random.default_rng(0).standard_normal(100_000)
    codec = RHTCodec(root_seed=7)
    packets = packetize(codec.encode(gradient), "gpu0", "gpu1")
    wire = [packets[0]] + [p.trim() for p in packets[1:]]  # congested!
    estimate = decode_packets(wire, codec)
    print(f"NMSE after trimming every packet: {nmse(gradient, estimate):.3f}")
"""

from .core import (
    EncodedGradient,
    GradientCodec,
    GradientMetadata,
    MultiLevelCodec,
    RHTCodec,
    SignMagnitudeCodec,
    StochasticQuantizationCodec,
    SubtractiveDitheringCodec,
    TrimmableLayout,
    available_codecs,
    codec_by_id,
    codec_by_name,
    decode_packets,
    depacketize,
    nmse,
    packetize,
    paper_worked_example,
)
from .packet import GradientHeader, MultiLevelTrim, NeverTrim, Packet, SingleLevelTrim
from .train import (
    DDPTrainer,
    FSDPTrainer,
    RoundTimeModel,
    TimingConfig,
    TrainConfig,
    TrimChannel,
    TrimTranscript,
)

__version__ = "0.1.0"

__all__ = [
    "EncodedGradient",
    "GradientCodec",
    "GradientMetadata",
    "MultiLevelCodec",
    "RHTCodec",
    "SignMagnitudeCodec",
    "StochasticQuantizationCodec",
    "SubtractiveDitheringCodec",
    "TrimmableLayout",
    "available_codecs",
    "codec_by_id",
    "codec_by_name",
    "decode_packets",
    "depacketize",
    "nmse",
    "packetize",
    "paper_worked_example",
    "GradientHeader",
    "MultiLevelTrim",
    "NeverTrim",
    "Packet",
    "SingleLevelTrim",
    "DDPTrainer",
    "FSDPTrainer",
    "RoundTimeModel",
    "TimingConfig",
    "TrainConfig",
    "TrimChannel",
    "TrimTranscript",
    "__version__",
]
