"""Byte-bounded queues for switch and NIC egress ports.

Two flavours:

* :class:`ByteQueue` — a FIFO bounded in bytes, with an optional ECN
  marking threshold (mark-on-enqueue above the threshold, DCTCP-style).
* :class:`PriorityQueue` — strict-priority bands built from ByteQueues.
  Trimmed headers travel in the high band, bypassing payload packets,
  exactly the express-lane treatment NDP/EODS give them.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..packet.packet import Packet

__all__ = ["ByteQueue", "PriorityQueue"]


class ByteQueue:
    """FIFO bounded by total bytes, with optional ECN marking.

    Attributes:
        capacity_bytes: maximum total wire bytes held (the *shallow
            buffer* of the paper's switches).
        ecn_threshold_bytes: mark packets CE when the post-enqueue depth
            exceeds this many bytes (None disables marking).
    """

    def __init__(
        self, capacity_bytes: int, ecn_threshold_bytes: Optional[int] = None
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self._items: deque[Packet] = deque()
        self._bytes = 0
        # Telemetry.
        self.enqueued = 0
        self.dequeued = 0
        self.rejected = 0
        self.ecn_marked = 0
        self.peak_bytes = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def bytes_queued(self) -> int:
        """Current occupancy in wire bytes."""
        return self._bytes

    @property
    def fill(self) -> float:
        """Occupancy as a fraction of capacity, in [0, 1]."""
        return self._bytes / self.capacity_bytes

    def fits(self, packet: Packet) -> bool:
        """Would ``packet`` fit without overflowing?"""
        return self._bytes + packet.wire_size <= self.capacity_bytes

    def push(self, packet: Packet) -> bool:
        """Enqueue; returns False (and counts a rejection) on overflow."""
        new_bytes = self._bytes + packet.wire_size
        if new_bytes > self.capacity_bytes:
            self.rejected += 1
            return False
        threshold = self.ecn_threshold_bytes
        if threshold is not None and new_bytes > threshold:
            packet.ecn = True
            self.ecn_marked += 1
        self._items.append(packet)
        self._bytes = new_bytes
        self.enqueued += 1
        if new_bytes > self.peak_bytes:
            self.peak_bytes = new_bytes
        return True

    def pop(self) -> Optional[Packet]:
        """Dequeue the head packet, or None when empty."""
        if not self._items:
            return None
        packet = self._items.popleft()
        self._bytes -= packet.wire_size
        self.dequeued += 1
        return packet


class PriorityQueue:
    """Strict-priority scheduler over per-band ByteQueues.

    Band 0 is served first (highest priority).  A packet's band is
    ``num_bands - 1 - min(packet.priority, num_bands - 1)`` so that
    higher ``Packet.priority`` means earlier service.
    """

    def __init__(
        self,
        band_capacities: list[int],
        ecn_threshold_bytes: Optional[int] = None,
    ) -> None:
        if not band_capacities:
            raise ValueError("need at least one band")
        # ECN marking only makes sense on the normal (lowest) band: the
        # high band holds tiny trimmed headers and control packets.
        self.bands = [
            ByteQueue(
                cap,
                ecn_threshold_bytes if i == len(band_capacities) - 1 else None,
            )
            for i, cap in enumerate(band_capacities)
        ]
        # The band list is fixed for the queue's lifetime; the per-push
        # index arithmetic reads this instead of len(bands) - 1.
        self._last_band = len(self.bands) - 1

    def band_for(self, packet: Packet) -> int:
        """Band index (0 = served first) for this packet's priority."""
        last = self._last_band
        clamped = min(packet.priority, last)
        return last - clamped

    def push(self, packet: Packet) -> bool:
        """Enqueue into the packet's band; False on that band's overflow."""
        last = self._last_band
        priority = packet.priority
        return self.bands[last - (priority if priority < last else last)].push(packet)

    def pop(self) -> Optional[Packet]:
        """Dequeue from the highest-priority non-empty band."""
        for band in self.bands:
            # Inlined ByteQueue.pop: this runs once per serialized
            # packet and the empty-band probe is the common case.
            items = band._items
            if items:
                packet = items.popleft()
                band._bytes -= packet.wire_size
                band.dequeued += 1
                return packet
        return None

    def __len__(self) -> int:
        return sum(len(b) for b in self.bands)

    @property
    def bytes_queued(self) -> int:
        """Total occupancy across bands."""
        return sum(b.bytes_queued for b in self.bands)

    def data_band(self) -> ByteQueue:
        """The lowest-priority band, where full-size data packets wait."""
        return self.bands[-1]
