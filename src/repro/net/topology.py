"""Network construction: devices + cables + routing.

:class:`Network` wraps a :class:`~repro.net.simulator.Simulator`, a
networkx graph describing connectivity, and shortest-path static routes.
Builders for the standard data-center shapes are provided: a dumbbell
(the classic shared-bottleneck microbenchmark), a two-tier leaf–spine,
and a k-ary fat-tree.
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx

from ..obs.int_telemetry import is_reserved_hop_name
from ..packet.trim import TrimPolicy
from ..transforms.prng import derive_seed
from .host import Host
from .link import Device, Link
from .simulator import Simulator
from .switch import Switch

__all__ = ["Network", "dumbbell", "leaf_spine", "fat_tree"]

GBPS = 1e9


class Network:
    """A simulated network: hosts, switches, links, routes.

    Typical use::

        net = dumbbell(pairs=4)
        net.build_routes()
        ... attach transports to net.hosts[...] ...
        net.sim.run()
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        host_burst: int = 1,
        switch_burst: int = 1,
    ) -> None:
        self.sim = sim or Simulator()
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.graph = nx.Graph()
        # Serializer batch applied to host uplinks by connect().  Kept at
        # 1 by default: burst batching preserves delivery *times* but not
        # event ordering at tied instants, so enabling it can flip
        # drop decisions at a saturated shared queue.  The cluster fabric
        # opts in (Link.HOST_BURST) where no legacy baselines exist.
        if host_burst < 1:
            raise ValueError(f"host_burst must be >= 1, got {host_burst}")
        self.host_burst = host_burst
        # Same batch applied to switch egress, default off and strictly
        # opt-in: switch queues have a priority express band, and a burst
        # drained in one batch keeps serializing data packets even when
        # an express-band arrival lands mid-burst — so control headers
        # can be reordered behind data they would have preempted.  Only
        # enable for throughput studies where that inversion (bounded by
        # ``switch_burst - 1`` packets' serialization time) is acceptable.
        if switch_burst < 1:
            raise ValueError(f"switch_burst must be >= 1, got {switch_burst}")
        self.switch_burst = switch_burst

    # -- construction ----------------------------------------------------------

    def _check_name(self, name: str) -> None:
        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate device name {name!r}")
        # Devices intern their name into the INT hop registry; names the
        # registry generates itself (link labels "a->b", the "hop<N>"
        # fallback) would alias other hops' telemetry.
        if is_reserved_hop_name(name):
            raise ValueError(
                f"device name {name!r} collides with the INT hop registry's "
                "interned ids (link labels 'src->dst' and 'hop<N>' are reserved)"
            )

    def add_host(self, name: str, **kwargs) -> Host:
        """Create and register a host."""
        self._check_name(name)
        host = Host(name, self.sim, **kwargs)
        self.hosts[name] = host
        self.graph.add_node(name, kind="host")
        return host

    def add_switch(self, name: str, **kwargs) -> Switch:
        """Create and register a switch."""
        self._check_name(name)
        switch = Switch(name, self.sim, **kwargs)
        self.switches[name] = switch
        self.graph.add_node(name, kind="switch")
        return switch

    def device(self, name: str) -> Device:
        """Look up any device by name."""
        if name in self.hosts:
            return self.hosts[name]
        if name in self.switches:
            return self.switches[name]
        raise KeyError(f"unknown device {name!r}")

    def connect(
        self,
        a: str,
        b: str,
        rate_bps: float = 100 * GBPS,
        delay_s: float = 1e-6,
        drop_prob: float = 0.0,
        trim_prob: float = 0.0,
        seed: int = 0,
    ) -> None:
        """Wire a full-duplex cable between devices ``a`` and ``b``.

        ``drop_prob``/``trim_prob`` impose probabilistic impairment on
        both directions — the paper's "pre-set random probabilistic
        dropping/trimming" congestion emulation.
        """
        dev_a, dev_b = self.device(a), self.device(b)
        # Host uplinks may serialize bursts in one batch of events (a
        # FIFO NIC queue has no express band to reorder, so batching
        # preserves delivery times); switch egress always keeps
        # per-packet events because the priority bands interleave.
        link_ab = Link(
            self.sim, a, dev_b, rate_bps, delay_s, dev_a.make_queue(),
            drop_prob=drop_prob, trim_prob=trim_prob, seed=seed,
            burst=self.host_burst if isinstance(dev_a, Host) else self.switch_burst,
        )
        link_ba = Link(
            self.sim, b, dev_a, rate_bps, delay_s, dev_b.make_queue(),
            drop_prob=drop_prob, trim_prob=trim_prob, seed=seed + 1,
            burst=self.host_burst if isinstance(dev_b, Host) else self.switch_burst,
        )
        dev_a.attach(b, link_ab)
        dev_b.attach(a, link_ba)
        self.graph.add_edge(a, b, rate_bps=rate_bps, delay_s=delay_s)

    def set_impairment(
        self, a: str, b: str, drop_prob: float = 0.0, trim_prob: float = 0.0
    ) -> None:
        """Adjust probabilistic impairment on the a->b and b->a links."""
        for link in (self.link_between(a, b), self.link_between(b, a)):
            link.drop_prob = drop_prob
            link.trim_prob = trim_prob

    def build_routes(self, ecmp: bool = False, ecmp_seed: int = 0) -> None:
        """Install shortest-path routes toward every host on every switch.

        With ``ecmp=True`` every equal-cost next hop is installed and
        switches spread flows across them by per-flow hashing (the
        standard Clos load-balancing); otherwise a single deterministic
        shortest path is used.  ``ecmp_seed`` salts the fabric-wide flow
        hash through the shared ``"ecmp"`` PRNG purpose, so two runs of
        the same (topology, seed) place every flow identically while
        different seeds explore different collision patterns.
        """
        if not ecmp:
            for dst in self.hosts:
                paths = nx.shortest_path(self.graph, target=dst)
                for name, switch in self.switches.items():
                    path = paths.get(name)
                    if path is None or len(path) < 2:
                        continue
                    switch.set_route(dst, path[1])
            return
        salt = derive_seed(ecmp_seed, purpose="ecmp") & 0xFFFFFFFF
        for switch in self.switches.values():
            switch.ecmp_salt = salt
        for dst in self.hosts:
            lengths = nx.shortest_path_length(self.graph, target=dst)
            for name, switch in self.switches.items():
                if name not in lengths:
                    continue
                my_distance = lengths[name]
                next_hops = sorted(
                    neighbor
                    for neighbor in self.graph.neighbors(name)
                    if lengths.get(neighbor, float("inf")) == my_distance - 1
                )
                if next_hops:
                    switch.set_route(dst, next_hops)

    # -- convenience -------------------------------------------------------------

    def flow_path(self, src: str, dst: str, flow_id: int) -> list:
        """The device names flow ``(src, dst, flow_id)`` traverses.

        Walks the installed routes with the switches' pure
        :meth:`~repro.net.switch.Switch.route_lookup` (no flow-table or
        counter side effects), so tests and fault planners can predict
        ECMP placements without perturbing the fabric.  Raises if the
        walk dead-ends or loops.
        """
        if src not in self.hosts or dst not in self.hosts:
            raise KeyError(f"flow endpoints must be hosts: {src!r} -> {dst!r}")
        host = self.hosts[src]
        if host.uplink is None:
            raise ValueError(f"host {src!r} has no uplink")
        path = [src]
        current = host.uplink.dst.name
        while current != dst:
            path.append(current)
            if len(path) > len(self.hosts) + len(self.switches):
                raise ValueError(f"routing loop on {src}->{dst} flow {flow_id}: {path}")
            switch = self.switches.get(current)
            if switch is None:
                raise ValueError(f"{src}->{dst} flow {flow_id} dead-ends at {current}")
            resolved = switch.route_lookup(src, dst, flow_id)
            if resolved is None:
                raise ValueError(f"{current} has no route toward {dst}")
            current = resolved[0]
        path.append(dst)
        return path

    def link_between(self, a: str, b: str) -> Link:
        """The egress link from ``a`` toward ``b``."""
        dev = self.device(a)
        if isinstance(dev, Host):
            if dev.uplink is None or dev.uplink.dst.name != b:
                raise KeyError(f"{a} has no link toward {b}")
            return dev.uplink
        return dev.ports[b]

    def total_switch_stats(self) -> Dict[str, int]:
        """Aggregate forwarded/trimmed/dropped/failover counters over all switches."""
        totals = {
            "forwarded": 0,
            "trimmed": 0,
            "dropped": 0,
            "reroutes": 0,
            "blackhole_drops": 0,
            "ports_down": 0,
        }
        for switch in self.switches.values():
            totals["forwarded"] += switch.stats.forwarded
            totals["trimmed"] += switch.stats.trimmed
            totals["dropped"] += switch.stats.dropped
            totals["reroutes"] += switch.stats.reroutes
            totals["blackhole_drops"] += switch.stats.blackhole
            totals["ports_down"] += len(switch.ports_down)
        return totals


def dumbbell(
    pairs: int = 2,
    edge_rate_bps: float = 100 * GBPS,
    bottleneck_rate_bps: float = 100 * GBPS,
    delay_s: float = 1e-6,
    trim_policy: Optional[TrimPolicy] = None,
    buffer_bytes: int = 60_000,
    ecn_threshold_bytes: Optional[int] = None,
    host_burst: int = 1,
    switch_burst: int = 1,
) -> Network:
    """Classic dumbbell: senders -> S0 == S1 -> receivers.

    ``pairs`` sender/receiver pairs share one bottleneck cable, the
    canonical setup for studying congestion at a single queue.  Senders
    are ``tx0..`` and receivers ``rx0..``.
    """
    net = Network(host_burst=host_burst, switch_burst=switch_burst)
    for side in ("s0", "s1"):
        net.add_switch(
            side,
            trim_policy=trim_policy,
            buffer_bytes=buffer_bytes,
            ecn_threshold_bytes=ecn_threshold_bytes,
        )
    for i in range(pairs):
        net.add_host(f"tx{i}")
        net.add_host(f"rx{i}")
        net.connect(f"tx{i}", "s0", rate_bps=edge_rate_bps, delay_s=delay_s)
        net.connect(f"rx{i}", "s1", rate_bps=edge_rate_bps, delay_s=delay_s)
    net.connect("s0", "s1", rate_bps=bottleneck_rate_bps, delay_s=delay_s)
    net.build_routes()
    return net


def leaf_spine(
    leaves: int = 2,
    spines: int = 2,
    hosts_per_leaf: int = 4,
    host_rate_bps: float = 100 * GBPS,
    fabric_rate_bps: float = 100 * GBPS,
    delay_s: float = 1e-6,
    trim_policy: Optional[TrimPolicy] = None,
    buffer_bytes: int = 60_000,
    ecn_threshold_bytes: Optional[int] = None,
    ecmp: bool = False,
    ecmp_seed: int = 0,
    host_burst: int = 1,
    switch_burst: int = 1,
) -> Network:
    """Two-tier Clos: every leaf connects to every spine.

    Hosts are named ``h<leaf>_<index>``; oversubscription is controlled
    by the ``hosts_per_leaf * host_rate / (spines * fabric_rate)`` ratio
    — the paper's motivating setting is an over-subscribed second-layer
    fabric between training clusters.
    """
    net = Network(host_burst=host_burst, switch_burst=switch_burst)
    for s in range(spines):
        net.add_switch(
            f"spine{s}",
            trim_policy=trim_policy,
            buffer_bytes=buffer_bytes,
            ecn_threshold_bytes=ecn_threshold_bytes,
        )
    for leaf in range(leaves):
        net.add_switch(
            f"leaf{leaf}",
            trim_policy=trim_policy,
            buffer_bytes=buffer_bytes,
            ecn_threshold_bytes=ecn_threshold_bytes,
        )
        for s in range(spines):
            net.connect(f"leaf{leaf}", f"spine{s}", rate_bps=fabric_rate_bps, delay_s=delay_s)
        for i in range(hosts_per_leaf):
            name = f"h{leaf}_{i}"
            net.add_host(name)
            net.connect(name, f"leaf{leaf}", rate_bps=host_rate_bps, delay_s=delay_s)
    net.build_routes(ecmp=ecmp, ecmp_seed=ecmp_seed)
    return net


def fat_tree(
    k: int = 4,
    rate_bps: float = 100 * GBPS,
    delay_s: float = 1e-6,
    trim_policy: Optional[TrimPolicy] = None,
    buffer_bytes: int = 60_000,
    ecn_threshold_bytes: Optional[int] = None,
    ecmp: bool = False,
    ecmp_seed: int = 0,
    host_burst: int = 1,
    switch_burst: int = 1,
) -> Network:
    """A k-ary fat-tree (k even): k pods, k²/4 cores, k²*k/4 hosts.

    Kept small by default (k=4 → 16 hosts, 20 switches); used by the
    larger closed-loop trimming studies.
    """
    if k % 2 != 0 or k < 2:
        raise ValueError(f"fat-tree degree k must be even and >= 2, got {k}")
    net = Network(host_burst=host_burst, switch_burst=switch_burst)
    half = k // 2

    def sw(name: str) -> None:
        net.add_switch(
            name,
            trim_policy=trim_policy,
            buffer_bytes=buffer_bytes,
            ecn_threshold_bytes=ecn_threshold_bytes,
        )

    cores = [f"core{i}" for i in range(half * half)]
    for name in cores:
        sw(name)
    for pod in range(k):
        aggs = [f"agg{pod}_{i}" for i in range(half)]
        edges = [f"edge{pod}_{i}" for i in range(half)]
        for name in aggs + edges:
            sw(name)
        for a, agg in enumerate(aggs):
            for c in range(half):
                net.connect(agg, cores[a * half + c], rate_bps=rate_bps, delay_s=delay_s)
            for edge in edges:
                net.connect(agg, edge, rate_bps=rate_bps, delay_s=delay_s)
        for e, edge in enumerate(edges):
            for h in range(half):
                name = f"h{pod}_{e}_{h}"
                net.add_host(name)
                net.connect(name, edge, rate_bps=rate_bps, delay_s=delay_s)
    net.build_routes(ecmp=ecmp, ecmp_seed=ecmp_seed)
    return net
