"""Discrete-event simulation engine.

A minimal but complete event loop in the style of ns-2/htsim.  Events
are ``(time, sequence, ...)`` tuples ordered by ``(time, sequence)``;
``sequence`` breaks ties so same-time events run in schedule order,
which keeps runs deterministic.  Everything in :mod:`repro.net` and
:mod:`repro.transport` is driven by one :class:`Simulator`.

The scheduler is a **calendar queue** (Brown 1988), not a single binary
heap: near-future events land in a ring of per-bucket heaps indexed by
``int(time / bucket_width)``, and events beyond the ring's horizon wait
in an overflow heap.  Pushes into the current bucket — the common case
on the packet hot path, where a link schedules a delivery a few
microseconds out — are O(log bucket) on a bucket holding only a few
events, and the pop fast path is one tuple compare plus a ``heappop``
on that same small bucket.  Ordering stays exact because the mapping
``time -> int(time * inv_width)`` is monotone (equal times share a
bucket, earlier buckets hold strictly earlier times) and because the
pop path merges the overflow heap head into the current bucket whenever
it would be due first, comparing full ``(time, sequence)`` tuples.

Cancelled events are skipped lazily at pop; when more than half the
queued entries are dead the structure compacts in place, so timer-heavy
workloads (flap/blackout fault churn, transport RTO re-arming) keep
bounded memory.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Callable, Iterable, Iterator, Optional, Tuple

__all__ = ["Simulator", "Event"]

#: Dead entries tolerated before cancellation triggers compaction.
_COMPACT_MIN_DEAD = 64


class Event:
    """One scheduled callback.  Ordered by (time, sequence).

    The scheduler stores ``(time, sequence, event)`` tuples so ordering
    compares plain floats/ints at C speed and never falls back to this
    class's ``__lt__`` (kept for API compatibility).
    """

    __slots__ = ("time", "sequence", "callback", "cancelled", "_scheduler", "_done")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[[], None],
        _scheduler: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self._scheduler = _scheduler
        self._done = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else ("done" if self._done else "pending")
        return f"Event(time={self.time!r}, sequence={self.sequence}, {state})"

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped.

        Cancelling an already-executed or already-cancelled event is a
        no-op, so timer-style callers can cancel unconditionally.
        """
        if self.cancelled or self._done:
            return
        self.cancelled = True
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler._live -= 1
            scheduler._dead += 1
            # Lazy-cancel compaction: once dead entries outnumber live
            # ones the structure is mostly garbage — rebuild it so heavy
            # cancel churn (timer re-arming every packet) cannot grow
            # the queue without bound.
            if (
                scheduler._dead > _COMPACT_MIN_DEAD
                and scheduler._dead > scheduler._live
            ):
                scheduler._compact()


class Simulator:
    """A deterministic discrete-event scheduler (calendar queue).

    Typical use::

        sim = Simulator()
        sim.schedule(1e-6, lambda: print("one microsecond in"))
        sim.run()

    Args:
        bucket_width: seconds of simulated time per calendar bucket.
            The default (1 µs) keeps packet-scale events — serialization
            times of ~1 µs on 10 Gb/s links — in the current or next
            bucket.
        num_buckets: ring size (rounded up to a power of two).  Events
            beyond ``bucket_width * num_buckets`` in the future wait in
            the overflow heap until the calendar advances.
    """

    def __init__(self, bucket_width: float = 1e-6, num_buckets: int = 1024) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        nb = 1
        while nb < num_buckets:
            nb *= 2
        self._inv = 1.0 / bucket_width
        self._nb = nb
        self._mask = nb - 1
        self._buckets: list[list] = [[] for _ in range(nb)]
        # Absolute (unwrapped) index of the bucket currently being
        # drained; ``_curb`` aliases ``_buckets[_cur & _mask]``.
        self._cur = 0
        self._curb: list = self._buckets[0]
        # Overflow heap for events past the ring horizon.
        self._far: list = []
        self._sequence = itertools.count()
        #: Current simulation time in seconds.  A plain attribute (not a
        #: property): hot callbacks read it once or more per packet.
        self.now = 0.0
        self._processed = 0
        # Live (scheduled, not yet run or cancelled) event count, kept
        # in sync on push/pop/cancel so pending() is O(1) — transport
        # timers poll it per packet, and an O(n) scan there turns the
        # event loop quadratic.
        self._live = 0
        # Cancelled entries still occupying the structure.
        self._dead = 0

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    # -- scheduling ---------------------------------------------------------

    def _push(self, entry: tuple) -> None:
        """File ``entry`` into the bucket owning its timestamp."""
        idx = int(entry[0] * self._inv)
        offset = idx - self._cur
        if offset <= 0:
            heappush(self._curb, entry)
        elif offset < self._nb:
            heappush(self._buckets[idx & self._mask], entry)
        else:
            heappush(self._far, entry)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` seconds from now; returns a handle.

        ``delay`` must be non-negative; zero-delay events run after all
        previously scheduled events for the current instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        when = self.now + delay
        event = Event(when, next(self._sequence), callback, self)
        self._push((when, event.sequence, event))
        self._live += 1
        return event

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute time ``when``."""
        return self.schedule(when - self.now, callback)

    def schedule_call(self, delay: float, fn: Callable, arg) -> None:
        """Fire-and-forget: run ``fn(arg)`` ``delay`` seconds from now.

        The hot-path sibling of :meth:`schedule`: no :class:`Event`
        handle is created (so the call cannot be cancelled) and no
        closure needs allocating — the argument rides in the heap entry
        itself.  Links and switches use this for packet deliveries and
        serializer completions; ordering shares the same ``(time,
        sequence)`` stream, so mixing the two APIs stays deterministic.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        when = self.now + delay
        entry = (when, next(self._sequence), fn, arg)
        idx = int(when * self._inv)
        offset = idx - self._cur
        if offset <= 0:
            heappush(self._curb, entry)
        elif offset < self._nb:
            heappush(self._buckets[idx & self._mask], entry)
        else:
            heappush(self._far, entry)
        self._live += 1

    def schedule_batch(self, items: Iterable[Tuple[float, Callable, object]]) -> None:
        """Post many ``(delay, fn, arg)`` calls in one pass.

        Equivalent to ``schedule_call`` per item (same sequence-number
        stream, same ordering), but hoists the scheduler state lookups
        out of the loop — a link posting a burst of N deliveries pays
        for one method call, not N.
        """
        now = self.now
        inv = self._inv
        cur = self._cur
        nb = self._nb
        mask = self._mask
        sequence = self._sequence
        buckets = self._buckets
        curb = self._curb
        far = self._far
        posted = 0
        for delay, fn, arg in items:
            if delay < 0:
                raise ValueError(f"cannot schedule in the past (delay={delay})")
            when = now + delay
            entry = (when, next(sequence), fn, arg)
            idx = int(when * inv)
            offset = idx - cur
            if offset <= 0:
                heappush(curb, entry)
            elif offset < nb:
                heappush(buckets[idx & mask], entry)
            else:
                heappush(far, entry)
            posted += 1
        self._live += posted

    # -- draining -----------------------------------------------------------

    def _pop_slow(self) -> Optional[tuple]:
        """Pop the globally minimal entry when the fast path cannot.

        Handles the three non-trivial cases: the overflow head precedes
        (or ties, by sequence, with) the current bucket head; the
        current bucket is drained and the calendar must advance; the
        queue is empty.
        """
        far = self._far
        b = self._curb
        inv = self._inv
        while True:
            if b:
                if far and far[0] < b[0]:
                    # The overflow head is due first (full tuple
                    # compare, so same-time entries keep sequence
                    # order): merge it and re-check.
                    heappush(b, heappop(far))
                    continue
                return heappop(b)
            if not far and self._live == 0 and self._dead == 0:
                return None
            if far and int(far[0][0] * inv) <= self._cur:
                heappush(b, heappop(far))
                continue
            # Advance to the next non-empty bucket (or jump to the
            # overflow head when the whole ring is idle).
            cur = self._cur
            buckets = self._buckets
            mask = self._mask
            nxt = None
            for step in range(1, self._nb):
                if buckets[(cur + step) & mask]:
                    nxt = cur + step
                    break
            if far:
                fidx = int(far[0][0] * inv)
                if nxt is None or fidx < nxt:
                    nxt = fidx
            if nxt is None:
                return None
            self._cur = nxt
            b = self._curb = buckets[nxt & mask]
            # Pull overflow entries now due into the active bucket.
            while far and int(far[0][0] * inv) <= nxt:
                heappush(b, heappop(far))

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event calendar.

        Args:
            until: stop once simulated time would pass this instant
                (events at exactly ``until`` still run).
            max_events: safety valve against runaway simulations.

        Returns:
            The simulation time when the run stopped.
        """
        # Sentinels instead of per-iteration None checks: comparing
        # against +inf costs one float compare on the hot path.  The
        # current bucket and the processed counter live in locals while
        # the loop spins (callbacks push into the same list object, and
        # ``_curb`` is only rebound by ``_pop_slow``), which makes
        # ``run`` non-reentrant: a callback must not call ``run`` or
        # ``peek_time`` on its own simulator.
        inf = float("inf")
        limit = inf if until is None else until
        budget = inf if max_events is None else max_events
        # ``int(t * inv)`` is the bucket mapping used everywhere; with
        # +inf it overflows, so an unlimited run gets a None sentinel.
        inv = self._inv
        limit_idx = None if limit == inf else int(limit * inv)
        unbudgeted = max_events is None
        far = self._far
        b = self._curb
        pop = heappop
        tuplen = len
        processed = 0
        try:
            while budget > 0:
                if b and (not far or b[0] < far[0]):
                    entry = pop(b)
                else:
                    entry = self._pop_slow()
                    b = self._curb
                    if entry is None:
                        if until is not None and until > self.now:
                            self.now = until
                        break
                when = entry[0]
                if when > limit:
                    # Past the horizon: put it back and stop.  (A cancelled
                    # head past the horizon is ≥ every live entry, so
                    # stopping on one is equally correct.)
                    self._push(entry)
                    self.now = until
                    break
                if tuplen(entry) == 4:
                    self.now = when
                    self._live -= 1
                    entry[2](entry[3])
                else:
                    event = entry[2]
                    if event.cancelled:
                        self._dead -= 1
                        continue
                    self.now = when
                    event._done = True
                    self._live -= 1
                    event.callback()
                processed += 1
                budget -= 1
                # Bucket-grain fast path.  Every entry in the current
                # bucket maps to index ``_cur`` exactly (pushes beyond
                # the ring go to the overflow heap; merged overflow
                # entries land in their own bucket), so two integer
                # gates decide for the *whole bucket* what the loop
                # above re-checks per event:
                #  * the overflow head maps past ``_cur`` → nothing in
                #    ``far`` can precede any in-bucket entry (same-time
                #    overflow ties were merged by _pop_slow already, and
                #    callbacks can only add entries beyond the horizon);
                #  * the horizon maps past ``_cur`` → no in-bucket entry
                #    can exceed ``limit`` (the mapping is monotone).
                # When both hold (and no event budget needs counting
                # down), drain the bucket with nothing but pop+dispatch.
                if (
                    not unbudgeted
                    or (far and int(far[0][0] * inv) <= self._cur)
                    or (limit_idx is not None and limit_idx <= self._cur)
                ):
                    continue
                while b:
                    entry = pop(b)
                    if tuplen(entry) == 4:
                        when, _seq, fn, arg = entry
                        self.now = when
                        self._live -= 1
                        fn(arg)
                    else:
                        event = entry[2]
                        if event.cancelled:
                            self._dead -= 1
                            continue
                        self.now = entry[0]
                        event._done = True
                        self._live -= 1
                        event.callback()
                    processed += 1
        finally:
            self._processed += processed
        return self.now

    def run_profiled(
        self,
        observer: Callable[[Callable, float, float], None],
        clock: Callable[[], float],
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """:meth:`run`, timing every callback for an observer.

        After each event executes, calls ``observer(callback, when,
        wall_s)`` where ``wall_s`` is the callback's execution time as
        measured by ``clock`` (injected — typically
        ``time.perf_counter`` — so this module stays free of wall-clock
        imports; the fabric itself must never read real time).  Events
        run in exactly the order and at exactly the simulated times
        :meth:`run` would use: profiling perturbs nothing modeled.
        :class:`repro.obs.profile.SimProfiler` shadows ``sim.run`` with
        a wrapper around this method, which is why hot paths are free
        to cache bound ``schedule_call`` references — coverage does not
        depend on intercepting the scheduling APIs.
        """
        inf = float("inf")
        limit = inf if until is None else until
        budget = inf if max_events is None else max_events
        processed = 0
        try:
            while budget > 0:
                far = self._far
                b = self._curb
                if b and (not far or b[0] < far[0]):
                    entry = heappop(b)
                else:
                    entry = self._pop_slow()
                    if entry is None:
                        if until is not None and until > self.now:
                            self.now = until
                        break
                when = entry[0]
                if when > limit:
                    self._push(entry)
                    self.now = until
                    break
                if len(entry) == 4:
                    fn = entry[2]
                    self.now = when
                    self._live -= 1
                    start = clock()
                    fn(entry[3])
                    observer(fn, when, clock() - start)
                else:
                    event = entry[2]
                    if event.cancelled:
                        self._dead -= 1
                        continue
                    self.now = when
                    event._done = True
                    self._live -= 1
                    callback = event.callback
                    start = clock()
                    callback()
                    observer(callback, when, clock() - start)
                processed += 1
                budget -= 1
        finally:
            self._processed += processed
        return self.now

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        far = self._far
        while True:
            b = self._curb
            if b and (not far or b[0] < far[0]):
                entry = heappop(b)
            else:
                entry = self._pop_slow()
                if entry is None:
                    return None
            if len(entry) == 3 and entry[2].cancelled:
                self._dead -= 1
                continue
            self._push(entry)
            return entry[0]

    def pending(self) -> int:
        """Number of live events still queued (O(1) — see ``_live``)."""
        return self._live

    # -- maintenance --------------------------------------------------------

    def _entries(self) -> Iterator[tuple]:
        """Every queued entry (live and dead), in no particular order."""
        for bucket in self._buckets:
            yield from bucket
        yield from self._far

    def _compact(self) -> None:
        """Rebuild every bucket without its cancelled entries.

        Called from :meth:`Event.cancel` once dead entries exceed half
        the structure; O(total entries), amortized O(1) per cancel.
        """
        removed = 0
        for bucket in self._buckets:
            if not bucket:
                continue
            kept = [e for e in bucket if len(e) == 4 or not e[2].cancelled]
            if len(kept) != len(bucket):
                removed += len(bucket) - len(kept)
                bucket[:] = kept
                heapify(bucket)
        far = self._far
        kept = [e for e in far if len(e) == 4 or not e[2].cancelled]
        if len(kept) != len(far):
            removed += len(far) - len(kept)
            far[:] = kept
            heapify(far)
        self._dead -= removed
