"""Discrete-event simulation engine.

A minimal but complete event loop in the style of ns-2/htsim: events are
``(time, sequence, callback)`` triples in a binary heap; ``sequence``
breaks ties so same-time events run in schedule order, which keeps runs
deterministic.  Everything in :mod:`repro.net` and :mod:`repro.transport`
is driven by one :class:`Simulator`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Simulator", "Event"]


@dataclass(order=True)
class Event:
    """One scheduled callback.  Ordered by (time, sequence).

    The heap itself stores ``(time, sequence, event)`` tuples so heap
    sifting compares plain floats/ints at C speed and never falls back
    to this dataclass ``__lt__`` (kept for API compatibility).
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _scheduler: "Optional[Simulator]" = field(default=None, compare=False, repr=False)
    _done: bool = field(default=False, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped.

        Cancelling an already-executed or already-cancelled event is a
        no-op, so timer-style callers can cancel unconditionally.
        """
        if self.cancelled or self._done:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._live -= 1


class Simulator:
    """A deterministic discrete-event scheduler.

    Typical use::

        sim = Simulator()
        sim.schedule(1e-6, lambda: print("one microsecond in"))
        sim.run()
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        # Live (scheduled, not yet run or cancelled) event count, kept
        # in sync on push/pop/cancel so pending() is O(1) — transport
        # timers poll it per packet, and an O(n) heap scan there turns
        # the event loop quadratic.
        self._live = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` seconds from now; returns a handle.

        ``delay`` must be non-negative; zero-delay events run after all
        previously scheduled events for the current instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(self._now + delay, next(self._sequence), callback, _scheduler=self)
        heapq.heappush(self._heap, (event.time, event.sequence, event))
        self._live += 1
        return event

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute time ``when``."""
        return self.schedule(when - self._now, callback)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event heap.

        Args:
            until: stop once simulated time would pass this instant
                (events at exactly ``until`` still run).
            max_events: safety valve against runaway simulations.

        Returns:
            The simulation time when the run stopped.
        """
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if max_events is not None and executed >= max_events:
                break
            when = heap[0][0]
            if until is not None and when > until:
                # Nothing left at or before the horizon (cancelled
                # events past it are ≥ every live one, so stopping on a
                # cancelled head is equally correct).
                self._now = until
                break
            # Batched pop: drain every event at this instant (including
            # zero-delay events the callbacks themselves schedule) in
            # one pass over the heap top.
            while heap and heap[0][0] == when:
                if max_events is not None and executed >= max_events:
                    break
                event = pop(heap)[2]
                if event.cancelled:
                    continue
                self._now = when
                event._done = True
                self._live -= 1
                event.callback()
                self._processed += 1
                executed += 1
        else:
            if until is not None:
                self._now = max(self._now, until)
        return self._now

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def pending(self) -> int:
        """Number of live events still queued (O(1) — see ``_live``)."""
        return self._live
