"""Flow-level bookkeeping: completion times and tail statistics.

The paper's headline transport metric is the *slowest* flow completion
time in a synchronous training round — one straggler stalls every GPU.
:class:`FlowLog` records message completions and computes mean/percentile
/max FCT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["FlowRecord", "FlowLog"]


@dataclass
class FlowRecord:
    """Lifecycle of one message-sized flow."""

    flow_id: int
    src: str
    dst: str
    bytes_total: int
    started_at: float
    completed_at: Optional[float] = None
    retransmissions: int = 0
    packets_trimmed: int = 0
    packets_sent: int = 0

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time in seconds (None while in flight)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class FlowLog:
    """Registry of flow records with summary statistics."""

    def __init__(self) -> None:
        self._records: Dict[int, FlowRecord] = {}

    def open(
        self, flow_id: int, src: str, dst: str, bytes_total: int, now: float
    ) -> FlowRecord:
        """Start tracking a flow."""
        if flow_id in self._records:
            raise ValueError(f"flow {flow_id} already open")
        record = FlowRecord(flow_id, src, dst, bytes_total, started_at=now)
        self._records[flow_id] = record
        return record

    def close(self, flow_id: int, now: float) -> FlowRecord:
        """Mark a flow complete."""
        record = self._records[flow_id]
        record.completed_at = now
        return record

    def get(self, flow_id: int) -> FlowRecord:
        return self._records[flow_id]

    @property
    def records(self) -> List[FlowRecord]:
        return list(self._records.values())

    def completed(self) -> List[FlowRecord]:
        """Flows that have finished."""
        return [r for r in self._records.values() if r.completed_at is not None]

    def fcts(self) -> np.ndarray:
        """Completion times of all finished flows."""
        return np.array([r.fct for r in self.completed()])

    def max_fct(self) -> float:
        """The straggler: slowest completion time (inf if none finished)."""
        fcts = self.fcts()
        return float(fcts.max()) if fcts.size else float("inf")

    def mean_fct(self) -> float:
        fcts = self.fcts()
        return float(fcts.mean()) if fcts.size else float("inf")

    def percentile_fct(self, q: float) -> float:
        """q-th percentile FCT (q in [0, 100])."""
        fcts = self.fcts()
        return float(np.percentile(fcts, q)) if fcts.size else float("inf")

    def total_retransmissions(self) -> int:
        return sum(r.retransmissions for r in self._records.values())

    def total_trimmed(self) -> int:
        return sum(r.packets_trimmed for r in self._records.values())
