"""End hosts (GPU servers in the paper's setting).

A host owns one uplink toward its top-of-rack switch and demultiplexes
arriving packets to transport endpoints by flow id.  The egress queue is
deep (host memory, not switch SRAM), so hosts never trim.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..packet import arena as _arena
from ..packet.packet import Packet
from .link import Device, Link
from .queues import PriorityQueue
from .simulator import Simulator

__all__ = ["Host"]

PacketHandler = Callable[[Packet], None]


class Host(Device):
    """A server endpoint.

    Args:
        name: host id (packet ``src``/``dst`` fields refer to these).
        sim: the event loop.
        queue_bytes: egress buffer (deep by default — host DRAM).
    """

    def __init__(self, name: str, sim: Simulator, queue_bytes: int = 10_000_000) -> None:
        super().__init__(name, sim)
        self.queue_bytes = queue_bytes
        self.uplink: Optional[Link] = None
        self._handlers: Dict[int, PacketHandler] = {}
        self._default_handler: Optional[PacketHandler] = None
        # Telemetry.
        self.packets_received = 0
        self.packets_sent = 0

    def make_queue(self) -> PriorityQueue:
        """Host egress queue: same two-band structure, deep data band."""
        return PriorityQueue(band_capacities=[self.queue_bytes, self.queue_bytes])

    def attach(self, neighbor: str, link: Link) -> None:
        """Register the uplink (hosts have exactly one port)."""
        del neighbor
        self.uplink = link

    # -- sending ------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Inject a packet into the network.  False if the NIC queue is full."""
        if self.uplink is None:
            raise RuntimeError(f"host {self.name} is not wired to the network")
        packet.created_at = self.sim.now
        accepted = self.uplink.enqueue(packet)
        if accepted:
            self.packets_sent += 1
        return accepted

    # -- receiving -----------------------------------------------------------

    def register_flow(self, flow_id: int, handler: PacketHandler) -> None:
        """Deliver packets of ``flow_id`` to ``handler``."""
        if flow_id in self._handlers:
            raise ValueError(f"flow {flow_id} already registered on {self.name}")
        self._handlers[flow_id] = handler

    def unregister_flow(self, flow_id: int) -> None:
        """Remove a flow handler (missing ids are ignored)."""
        self._handlers.pop(flow_id, None)

    def set_default_handler(self, handler: PacketHandler) -> None:
        """Catch-all for packets with no registered flow."""
        self._default_handler = handler

    def receive(self, packet: Packet, ingress: Optional[Link] = None) -> None:
        self.packets_received += 1
        handler = self._handlers.get(packet.flow_id, self._default_handler)
        if handler is not None:
            handler(packet)
        else:
            # No consumer: the host is this packet's sink.  Pooled
            # transient traffic (crosstraffic filler, stray controls)
            # goes straight back to the arena.
            _arena._ARENA.release_transient(packet)
