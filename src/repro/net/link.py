"""Devices and links.

A :class:`Device` is anything with a name that can receive packets (hosts
and switches).  A :class:`Link` is a *unidirectional* serializer: it owns
an egress queue, transmits one packet at a time at its line rate, and
delivers to the peer device after the propagation delay.  Bidirectional
cables are simply two Links.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..obs.int_telemetry import DECISION_TRIM, REASON_LINK_IMPAIRMENT, hop_id
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..packet.packet import Packet
from .queues import ByteQueue, PriorityQueue
from .simulator import Simulator

__all__ = ["Device", "Link", "DeliveryHook"]

#: Fault-injection seam: maps a packet about to cross the wire to the
#: list of ``(extra_delay_s, packet)`` deliveries that actually happen.
#: ``[(0.0, packet)]`` is a clean pass-through; ``[]`` drops it; two
#: entries duplicate it; a positive delay jitters/reorders it; a mutated
#: copy corrupts it.  Installed by :class:`repro.faults.FaultInjector`.
DeliveryHook = Callable[["Packet"], List[Tuple[float, "Packet"]]]


class Device:
    """Base class for hosts and switches."""

    def __init__(self, name: str, sim: Simulator) -> None:
        self.name = name
        self.sim = sim

    def receive(self, packet: Packet, ingress: "Link") -> None:
        """Handle a packet delivered by ``ingress``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Link:
    """One direction of a cable: egress queue + serializer + wire.

    Attributes:
        src: name of the transmitting device (for traces).
        dst: device at the far end.
        rate_bps: line rate in bits per second.
        delay_s: propagation delay in seconds.
        queue: the egress queue feeding this link.
        burst: serializer batch size.  With ``burst > 1`` a clean link
            (up, unimpaired, no delivery hook) pops up to ``burst``
            queued packets at once and schedules their deliveries at the
            exact per-packet cumulative serialization times — identical
            timing to the one-at-a-time path, ~half the simulator events.
            Only safe on FIFO queues (host NICs): a priority queue could
            admit an express packet mid-burst that the batch would
            wrongly hold back, so switch egress keeps ``burst=1``.
    """

    #: Batch size Network.connect applies to host uplinks.
    HOST_BURST = 8

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: Device,
        rate_bps: float,
        delay_s: float,
        queue: Union[ByteQueue, PriorityQueue],
        drop_prob: float = 0.0,
        trim_prob: float = 0.0,
        seed: int = 0,
        burst: int = 1,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        if not 0.0 <= drop_prob <= 1.0 or not 0.0 <= trim_prob <= 1.0:
            raise ValueError("drop_prob and trim_prob must be in [0, 1]")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue = queue
        # Probabilistic impairment, mirroring the paper's evaluation
        # methodology ("pre-set random probabilistic dropping/trimming,
        # both in the software layer and on our SmartNIC").  Control
        # packets (ACKs) are never impaired — they are tiny and travel in
        # the express band.
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.drop_prob = drop_prob
        self.trim_prob = trim_prob
        self.burst = burst
        self._rng = np.random.default_rng(seed)
        self._busy = False
        # Fault-injection state: a downed link (flap) loses everything it
        # finishes serializing; the delivery hook lets an injector drop,
        # corrupt, duplicate or delay individual packets deterministically.
        self.up = True
        self.delivery_hook: Optional[DeliveryHook] = None
        self.packets_lost_down = 0
        # Telemetry: plain attributes stay the public API; the registry
        # carries the same counts under a per-link label.
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        self.packets_trimmed = 0
        label = f"{src}->{dst.name}"
        registry = get_registry()
        self._m_packets = registry.counter(
            "repro_link_packets_sent_total", "packets serialized onto the wire", ("link",)
        ).bind(link=label)
        self._m_bytes = registry.counter(
            "repro_link_bytes_sent_total", "bytes serialized onto the wire", ("link",)
        ).bind(link=label)
        self._m_dropped = registry.counter(
            "repro_link_packets_dropped_total",
            "packets lost to probabilistic impairment",
            ("link",),
        ).bind(link=label)
        self._m_trimmed = registry.counter(
            "repro_link_packets_trimmed_total",
            "packets trimmed by probabilistic impairment",
            ("link",),
        ).bind(link=label)
        self._label = label
        # Stable small-integer id this link stamps into INT records when
        # probabilistic impairment trims a packet in flight.
        self._int_hop = hop_id(label)

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy

    def transmission_time(self, packet: Packet) -> float:
        """Seconds to serialize ``packet`` at line rate."""
        return packet.wire_size * 8.0 / self.rate_bps

    def enqueue(self, packet: Packet) -> bool:
        """Push into the egress queue and kick the serializer.

        Returns False when the queue rejected the packet (caller decides
        whether to trim or drop).
        """
        accepted = self.queue.push(packet)
        if accepted:
            self._try_transmit()
        return accepted

    def kick(self) -> None:
        """Restart transmission after the caller enqueued directly."""
        self._try_transmit()

    def _try_transmit(self) -> None:
        if self._busy:
            return
        if (
            self.burst > 1
            and self.up
            and self.delivery_hook is None
            and self.drop_prob == 0.0
            and self.trim_prob == 0.0
        ):
            self._try_transmit_burst()
            return
        packet = self.queue.pop()
        if packet is None:
            return
        self._busy = True
        self.sim.schedule(
            self.transmission_time(packet), lambda: self._finish(packet)
        )

    def _try_transmit_burst(self) -> None:
        """Serialize up to ``burst`` queued packets as one event batch.

        Deliveries land at ``cumulative tx time + delay`` — exactly when
        the serial path would deliver them (a packet arriving mid-burst
        waits for the burst to finish, just as it would wait for the
        serializer) — and one completion event replaces ``burst``
        per-packet ``_finish`` events.  Callers guarantee the link is
        clean (up, no hook, no impairment): the fault injector pins
        ``burst = 1`` on every link it touches so faults keep their
        per-packet semantics.
        """
        batch: List[Tuple[float, Packet]] = []
        offset = 0.0
        while len(batch) < self.burst:
            packet = self.queue.pop()
            if packet is None:
                break
            offset += self.transmission_time(packet)
            batch.append((offset, packet))
        if not batch:
            return
        self._busy = True
        for tx_done, packet in batch:
            self.sim.schedule(
                tx_done + self.delay_s,
                lambda p=packet: self.dst.receive(p, self),
            )
        self.sim.schedule(batch[-1][0], lambda: self._finish_burst(batch))

    def _finish_burst(self, batch: List[Tuple[float, Packet]]) -> None:
        self._busy = False
        size = sum(packet.wire_size for _, packet in batch)
        self.packets_sent += len(batch)
        self.bytes_sent += size
        self._m_packets.inc(len(batch))
        self._m_bytes.inc(size)
        self._try_transmit()

    def _finish(self, packet: Packet) -> None:
        self._busy = False
        self.packets_sent += 1
        self.bytes_sent += packet.wire_size
        self._m_packets.inc()
        self._m_bytes.inc(packet.wire_size)
        if not self.up:
            # The cable is flapped down: everything on the wire is lost,
            # control packets included — a dead link spares nothing.
            self.packets_lost_down += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "link.down_loss",
                    sim_time=self.sim.now,
                    link=self._label,
                    flow_id=packet.flow_id,
                    seq=packet.seq,
                )
            self._try_transmit()
            return
        delivered: Optional[Packet] = packet
        if not packet.is_ack:
            if self.drop_prob > 0.0 and self._rng.random() < self.drop_prob:
                delivered = None
                self.packets_dropped += 1
                self._m_dropped.inc()
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "link.drop",
                        sim_time=self.sim.now,
                        link=self._label,
                        flow_id=packet.flow_id,
                        seq=packet.seq,
                    )
            elif (
                self.trim_prob > 0.0
                and packet.trimmable_bytes() is not None
                and self._rng.random() < self.trim_prob
            ):
                delivered = packet.trim()
                if delivered.int_ext is not None:
                    delivered.int_ext.stamp(
                        self._int_hop,
                        DECISION_TRIM,
                        REASON_LINK_IMPAIRMENT,
                        self.sim.now,
                    )
                self.packets_trimmed += 1
                self._m_trimmed.inc()
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "link.trim",
                        sim_time=self.sim.now,
                        link=self._label,
                        flow_id=packet.flow_id,
                        seq=packet.seq,
                    )
        if delivered is not None:
            deliveries: List[Tuple[float, Packet]] = [(0.0, delivered)]
            if self.delivery_hook is not None:
                deliveries = self.delivery_hook(delivered)
            for extra_delay, final in deliveries:
                self.sim.schedule(
                    self.delay_s + extra_delay,
                    lambda p=final: self.dst.receive(p, self),
                )
        self._try_transmit()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.bytes_sent * 8.0 / self.rate_bps / elapsed)
