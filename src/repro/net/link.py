"""Devices and links.

A :class:`Device` is anything with a name that can receive packets (hosts
and switches).  A :class:`Link` is a *unidirectional* serializer: it owns
an egress queue, transmits one packet at a time at its line rate, and
delivers to the peer device after the propagation delay.  Bidirectional
cables are simply two Links.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..obs.int_telemetry import DECISION_TRIM, REASON_LINK_IMPAIRMENT, hop_id
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..packet import arena as _arena
from ..packet.packet import Packet
from .queues import ByteQueue, PriorityQueue
from .simulator import Simulator

__all__ = ["Device", "Link", "DeliveryHook"]

#: Below this batch size the scalar cumulative-offset loop beats the
#: numpy round trip; at or above it the vectorized path wins.  Both
#: compute bit-identical offsets (sequential accumulation either way).
_VECTOR_MIN_BURST = 16

#: Fault-injection seam: maps a packet about to cross the wire to the
#: list of ``(extra_delay_s, packet)`` deliveries that actually happen.
#: ``[(0.0, packet)]`` is a clean pass-through; ``[]`` drops it; two
#: entries duplicate it; a positive delay jitters/reorders it; a mutated
#: copy corrupts it.  Installed by :class:`repro.faults.FaultInjector`.
DeliveryHook = Callable[["Packet"], List[Tuple[float, "Packet"]]]


class Device:
    """Base class for hosts and switches."""

    def __init__(self, name: str, sim: Simulator) -> None:
        self.name = name
        self.sim = sim

    def receive(self, packet: Packet, ingress: "Link") -> None:
        """Handle a packet delivered by ``ingress``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Link:
    """One direction of a cable: egress queue + serializer + wire.

    Attributes:
        src: name of the transmitting device (for traces).
        dst: device at the far end.
        rate_bps: line rate in bits per second.
        delay_s: propagation delay in seconds.
        queue: the egress queue feeding this link.
        burst: serializer batch size.  With ``burst > 1`` a clean link
            (up, unimpaired, no delivery hook) pops up to ``burst``
            queued packets at once and schedules their deliveries at the
            exact per-packet cumulative serialization times — identical
            timing to the one-at-a-time path, ~half the simulator events.
            Only exact on FIFO queues (host NICs): a priority queue could
            admit an express packet mid-burst that the batch would
            wrongly hold back, so switch egress defaults to ``burst=1``
            (``Network(switch_burst=...)`` opts in, accepting a priority
            inversion bounded by ``burst - 1`` data serializations).
    """

    #: Batch size Network.connect applies to host uplinks.
    HOST_BURST = 8

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: Device,
        rate_bps: float,
        delay_s: float,
        queue: Union[ByteQueue, PriorityQueue],
        drop_prob: float = 0.0,
        trim_prob: float = 0.0,
        seed: int = 0,
        burst: int = 1,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        if not 0.0 <= drop_prob <= 1.0 or not 0.0 <= trim_prob <= 1.0:
            raise ValueError("drop_prob and trim_prob must be in [0, 1]")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue = queue
        # Probabilistic impairment, mirroring the paper's evaluation
        # methodology ("pre-set random probabilistic dropping/trimming,
        # both in the software layer and on our SmartNIC").  Control
        # packets (ACKs) are never impaired — they are tiny and travel in
        # the express band.
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.drop_prob = drop_prob
        self.trim_prob = trim_prob
        self.burst = burst
        self._rng = np.random.default_rng(seed)
        self._busy = False
        # Fault-injection state: a downed link (flap) loses everything it
        # finishes serializing; the delivery hook lets an injector drop,
        # corrupt, duplicate or delay individual packets deterministically.
        self.up = True
        self.delivery_hook: Optional[DeliveryHook] = None
        self.packets_lost_down = 0
        # Telemetry: plain attributes stay the public API; the registry
        # carries the same counts under a per-link label.
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        self.packets_trimmed = 0
        label = f"{src}->{dst.name}"
        registry = get_registry()
        self._m_packets = registry.counter(
            "repro_link_packets_sent_total", "packets serialized onto the wire", ("link",)
        ).bind(link=label)
        self._m_bytes = registry.counter(
            "repro_link_bytes_sent_total", "bytes serialized onto the wire", ("link",)
        ).bind(link=label)
        self._m_dropped = registry.counter(
            "repro_link_packets_dropped_total",
            "packets lost to probabilistic impairment",
            ("link",),
        ).bind(link=label)
        self._m_trimmed = registry.counter(
            "repro_link_packets_trimmed_total",
            "packets trimmed by probabilistic impairment",
            ("link",),
        ).bind(link=label)
        # The per-packet sent/bytes twins are deferred: _finish keeps
        # the plain attributes and the registry pulls them on read.
        registry.add_flush_hook(self._flush_metrics)
        self._label = label
        # Stable small-integer id this link stamps into INT records when
        # probabilistic impairment trims a packet in flight.
        self._int_hop = hop_id(label)
        # Prebuilt bound methods for Simulator.schedule_call: the hot
        # path posts (delay, fn, packet) tuples instead of allocating a
        # closure + Event per packet.  Deliveries post ``dst.receive``
        # looked up per schedule, so per-instance wrappers (PacketTracer
        # attaches before the run, when nothing is in flight) still
        # intercept every delivery.
        self._finish_cb = self._finish
        self._finish_burst_cb = self._finish_burst
        # Bound scheduler entry points, cached once per link: the
        # profiler times events at the dispatch level (run_profiled),
        # so caching these cannot hide anything from it.
        self._sched_call = sim.schedule_call
        self._sched_batch = sim.schedule_batch
        # Priority bands for the inline refill probe in _finish (None
        # for plain FIFO queues, which use queue.pop()).  The queue is
        # fixed at construction, so this never goes stale.
        self._pq_bands = queue.bands if isinstance(queue, PriorityQueue) else None

    def _flush_metrics(self) -> None:
        """Publish deferred per-packet counters into the registry."""
        self._m_packets.set(self.packets_sent)
        self._m_bytes.set(self.bytes_sent)

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy

    def transmission_time(self, packet: Packet) -> float:
        """Seconds to serialize ``packet`` at line rate."""
        return packet.wire_size * 8.0 / self.rate_bps

    def enqueue(self, packet: Packet) -> bool:
        """Push into the egress queue and kick the serializer.

        Returns False when the queue rejected the packet (caller decides
        whether to trim or drop).
        """
        accepted = self.queue.push(packet)
        if accepted and not self._busy:
            self._try_transmit()
        return accepted

    def kick(self) -> None:
        """Restart transmission after the caller enqueued directly."""
        self._try_transmit()

    def _deliver(self, packet: Packet) -> None:
        # Kept for introspection/tests; the transmit paths schedule
        # ``dst.receive`` directly (looked up when the delivery is
        # posted, so instance-attribute wrappers still intercept).
        self.dst.receive(packet, self)

    def _try_transmit(self) -> None:
        if self._busy:
            return
        if (
            self.burst > 1
            and self.up
            and self.delivery_hook is None
            and self.drop_prob == 0.0
            and self.trim_prob == 0.0
        ):
            self._try_transmit_burst()
            return
        packet = self.queue.pop()
        if packet is None:
            return
        self._busy = True
        self._sched_call(
            packet.wire_size * 8.0 / self.rate_bps, self._finish_cb, packet
        )

    def _try_transmit_burst(self) -> None:
        """Serialize up to ``burst`` queued packets as one event batch.

        Deliveries land at ``cumulative tx time + delay`` — exactly when
        the serial path would deliver them (a packet arriving mid-burst
        waits for the burst to finish, just as it would wait for the
        serializer) — and one completion event replaces ``burst``
        per-packet ``_finish`` events.  Callers guarantee the link is
        clean (up, no hook, no impairment): the fault injector pins
        ``burst = 1`` on every link it touches so faults keep their
        per-packet semantics.

        Large batches (>= 16) compute the cumulative serialization
        offsets with numpy over the packet-size array; ``np.cumsum``
        accumulates sequentially, so the offsets are bit-identical to
        the scalar loop and the crossover is purely a speed choice.
        """
        packets: List[Packet] = []
        count = 0
        burst = self.burst
        bands = self._pq_bands
        if bands is not None:
            # Inline PriorityQueue.pop: the loop runs once per queued
            # packet plus one all-empty probe, and both bands are short.
            while count < burst:
                for band in bands:
                    items = band._items
                    if items:
                        packet = items.popleft()
                        band._bytes -= packet.wire_size
                        band.dequeued += 1
                        packets.append(packet)
                        count += 1
                        break
                else:
                    break
        else:
            queue = self.queue
            while count < burst:
                packet = queue.pop()
                if packet is None:
                    break
                packets.append(packet)
                count += 1
        if not packets:
            return
        self._busy = True
        rate = self.rate_bps
        delay = self.delay_s
        recv = self.dst.receive
        if count == 1:
            # Paced senders usually find the serializer idle with one
            # packet queued; post the same two entries the batch below
            # would (same order, consecutive sequence numbers, same
            # times) without building the items list.  Both posts are
            # Simulator.schedule_call inlined (keep in sync with
            # simulator.py).
            packet = packets[0]
            tx = packet.wire_size * 8.0 / rate
            sim = self.sim
            now = sim.now
            sequence = sim._sequence
            inv = sim._inv
            cur = sim._cur
            nb = sim._nb
            when = now + (tx + delay)
            entry = (when, next(sequence), recv, packet)
            idx = int(when * inv)
            offset = idx - cur
            if offset <= 0:
                heappush(sim._curb, entry)
            elif offset < nb:
                heappush(sim._buckets[idx & sim._mask], entry)
            else:
                heappush(sim._far, entry)
            when = now + tx
            entry = (when, next(sequence), self._finish_burst_cb, packets)
            idx = int(when * inv)
            offset = idx - cur
            if offset <= 0:
                heappush(sim._curb, entry)
            elif offset < nb:
                heappush(sim._buckets[idx & sim._mask], entry)
            else:
                heappush(sim._far, entry)
            sim._live += 2
            return
        if count >= _VECTOR_MIN_BURST:
            sizes = np.empty(count, dtype=np.float64)
            for i, packet in enumerate(packets):
                sizes[i] = packet.wire_size
            offsets = np.cumsum(sizes * 8.0 / rate)
            last = float(offsets[-1])
            items: List[Tuple[float, Callable, object]] = [
                (float(offsets[i]) + delay, recv, packets[i])
                for i in range(count)
            ]
        else:
            offset = 0.0
            items = []
            for packet in packets:
                offset += packet.wire_size * 8.0 / rate
                items.append((offset + delay, recv, packet))
            last = offset
        items.append((last, self._finish_burst_cb, packets))
        self._sched_batch(items)

    def _finish_burst(self, packets: List[Packet]) -> None:
        self._busy = False
        size = 0
        for packet in packets:
            size += packet.wire_size
        self.packets_sent += len(packets)
        self.bytes_sent += size
        self._try_transmit()

    def _finish(self, packet: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.wire_size
        if (
            self.up
            and self.delivery_hook is None
            and (packet.is_ack or (self.drop_prob == 0.0 and self.trim_prob == 0.0))
        ):
            # Clean wire: deliver after propagation and immediately refill
            # the serializer.  Identical event structure to the general
            # path below, minus allocations and impairment draws.  The
            # delivery post is Simulator.schedule_call inlined (same
            # entry tuple, sequence stream, and bucket placement — keep
            # in sync with simulator.py): it runs once per packet on
            # every clean link.
            sim = self.sim
            when = sim.now + self.delay_s
            entry = (when, next(sim._sequence), self.dst.receive, packet)
            idx = int(when * sim._inv)
            offset = idx - sim._cur
            if offset <= 0:
                heappush(sim._curb, entry)
            elif offset < sim._nb:
                heappush(sim._buckets[idx & sim._mask], entry)
            else:
                heappush(sim._far, entry)
            sim._live += 1
            sched = self._sched_call
            if self.burst == 1:
                # Inline refill: probe the priority bands (or pop a FIFO)
                # here instead of round-tripping through _try_transmit;
                # _busy stays True across the probe (nothing reentrant
                # runs inside it).  The band walk is PriorityQueue.pop
                # verbatim — both bands empty is the common case.
                bands = self._pq_bands
                if bands is not None:
                    for band in bands:
                        items = band._items
                        if items:
                            nxt = items.popleft()
                            band._bytes -= nxt.wire_size
                            band.dequeued += 1
                            sched(
                                nxt.wire_size * 8.0 / self.rate_bps,
                                self._finish_cb,
                                nxt,
                            )
                            return
                    self._busy = False
                    return
                nxt = self.queue.pop()
                if nxt is not None:
                    sched(
                        nxt.wire_size * 8.0 / self.rate_bps, self._finish_cb, nxt
                    )
                    return
                self._busy = False
                return
            self._busy = False
            self._try_transmit()
            return
        self._busy = False
        if not self.up:
            # The cable is flapped down: everything on the wire is lost,
            # control packets included — a dead link spares nothing.
            self.packets_lost_down += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "link.down_loss",
                    sim_time=self.sim.now,
                    link=self._label,
                    flow_id=packet.flow_id,
                    seq=packet.seq,
                )
            _arena._ARENA.release_transient(packet)
            self._try_transmit()
            return
        delivered: Optional[Packet] = packet
        if not packet.is_ack:
            if self.drop_prob > 0.0 and self._rng.random() < self.drop_prob:
                delivered = None
                self.packets_dropped += 1
                self._m_dropped.inc()
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "link.drop",
                        sim_time=self.sim.now,
                        link=self._label,
                        flow_id=packet.flow_id,
                        seq=packet.seq,
                    )
                _arena._ARENA.release_transient(packet)
            elif (
                self.trim_prob > 0.0
                and packet.trimmable_bytes() is not None
                and self._rng.random() < self.trim_prob
            ):
                delivered = packet.trim()
                if delivered.int_ext is not None:
                    delivered.int_ext.stamp(
                        self._int_hop,
                        DECISION_TRIM,
                        REASON_LINK_IMPAIRMENT,
                        self.sim.now,
                    )
                self.packets_trimmed += 1
                self._m_trimmed.inc()
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "link.trim",
                        sim_time=self.sim.now,
                        link=self._label,
                        flow_id=packet.flow_id,
                        seq=packet.seq,
                    )
                # The un-pooled trim twin travels on; a transient
                # original (filler/control) is dead here.
                _arena._ARENA.release_transient(packet)
        if delivered is not None:
            deliveries: List[Tuple[float, Packet]] = [(0.0, delivered)]
            if self.delivery_hook is not None:
                # A hook may duplicate (deliver the same object twice),
                # hold, or mutate the packet — detach it from any arena
                # so no sink can recycle an object with pending aliases.
                delivered._pool = None
                deliveries = self.delivery_hook(delivered)
            for extra_delay, final in deliveries:
                self._sched_call(
                    self.delay_s + extra_delay, self.dst.receive, final
                )
        self._try_transmit()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.bytes_sent * 8.0 / self.rate_bps / elapsed)
