"""Shallow-buffer switch with trim-on-overflow.

The paper's enabling mechanism: when an egress queue fills, the switch —
instead of dropping — *trims* a gradient packet down to its decodable
head and forwards the remnant in a strict-priority express band, like
NDP/EODS and the packet-trimming features of Tofino, Trident 4 and
Spectrum 2.  The trim depth is delegated to a
:class:`~repro.packet.trim.TrimPolicy`, so the same switch runs drop-tail
(``NeverTrim``), classic single-level trimming, or the Section 5.1
multi-level policy.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..obs.int_telemetry import (
    DECISION_DROP,
    DECISION_FORWARD,
    DECISION_TRIM,
    REASON_BUFFER_OVERFLOW,
    REASON_HEADER_BAND_OVERFLOW,
    REASON_NO_ROUTE,
    REASON_PORT_BLACKOUT,
    hop_id,
)
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..packet.packet import Packet
from ..packet.trim import NeverTrim, TrimPolicy
from .link import Device, Link
from .queues import PriorityQueue
from .simulator import Simulator

__all__ = ["Switch", "SwitchStats"]

#: Drop kinds → INT reason codes stamped into the telemetry band.
_DROP_REASONS = {
    "no-route": REASON_NO_ROUTE,
    "port-blackout": REASON_PORT_BLACKOUT,
    "header-band-overflow": REASON_HEADER_BAND_OVERFLOW,
    "buffer-overflow": REASON_BUFFER_OVERFLOW,
}


@dataclass
class SwitchStats:
    """Counters for one switch."""

    forwarded: int = 0
    trimmed: int = 0
    dropped: int = 0
    trimmed_bytes_saved: int = 0
    drops_by_kind: Dict[str, int] = field(default_factory=dict)

    def note_drop(self, kind: str) -> None:
        self.dropped += 1
        self.drops_by_kind[kind] = self.drops_by_kind.get(kind, 0) + 1

    @property
    def enqueues(self) -> int:
        """Every packet that reached an egress decision."""
        return self.forwarded + self.trimmed + self.dropped

    @property
    def trim_fraction(self) -> float:
        """Trimmed share of all egress decisions (the paper's headline rate)."""
        total = self.enqueues
        return self.trimmed / total if total else 0.0

    @property
    def drop_fraction(self) -> float:
        """Dropped share of all egress decisions."""
        total = self.enqueues
        return self.dropped / total if total else 0.0


class Switch(Device):
    """A store-and-forward switch with shallow per-port buffers.

    Args:
        name: switch id.
        sim: the event loop.
        buffer_bytes: data-band capacity per egress port (the shallow
            buffer; the paper's switches trim precisely because this is
            small).
        header_band_bytes: express-band capacity for trimmed headers,
            ACKs and metadata (small packets, so a modest reserve).
        ecn_threshold_bytes: DCTCP-style marking threshold on the data
            band (None disables ECN).
        trim_policy: what to do on overflow; defaults to drop-tail.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        buffer_bytes: int = 60_000,
        header_band_bytes: int = 30_000,
        ecn_threshold_bytes: Optional[int] = None,
        trim_policy: Optional[TrimPolicy] = None,
    ) -> None:
        super().__init__(name, sim)
        self.buffer_bytes = buffer_bytes
        self.header_band_bytes = header_band_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.trim_policy = trim_policy or NeverTrim()
        self.ports: Dict[str, Link] = {}
        # Ports currently blacked out by fault injection: packets routed
        # toward them are dropped (kind "port-blackout") until the port
        # comes back, modelling a dead transceiver / unplugged cable.
        self.ports_down: set = set()
        # dst host -> equal-cost next hops; flows are hashed across them
        # (ECMP).  A single-element list is plain shortest-path routing.
        self.routes: Dict[str, list] = {}
        self.stats = SwitchStats()
        # Stable small-integer id this switch stamps into INT records.
        self._int_hop = hop_id(name)
        # Registry-backed twins of the SwitchStats counters (bound once:
        # the forwarding path runs per packet).
        registry = get_registry()
        self._m_forwarded = registry.counter(
            "repro_switch_forwarded_total", "packets forwarded intact", ("switch",)
        ).bind(switch=name)
        self._m_trimmed = registry.counter(
            "repro_switch_trimmed_total", "packets trimmed on overflow", ("switch",)
        ).bind(switch=name)
        self._m_bytes_saved = registry.counter(
            "repro_switch_trim_bytes_saved_total",
            "wire bytes removed by trimming",
            ("switch",),
        ).bind(switch=name)
        self._m_dropped = registry.counter(
            "repro_switch_dropped_total", "packets dropped", ("switch", "kind")
        )

    # -- wiring -------------------------------------------------------------

    def make_queue(self) -> PriorityQueue:
        """Egress queue template: express band over a shallow data band."""
        return PriorityQueue(
            band_capacities=[self.header_band_bytes, self.buffer_bytes],
            ecn_threshold_bytes=self.ecn_threshold_bytes,
        )

    def attach(self, neighbor: str, link: Link) -> None:
        """Register the egress link toward ``neighbor``."""
        self.ports[neighbor] = link

    def set_route(self, dst_host: str, next_hop) -> None:
        """Static route toward ``dst_host``.

        ``next_hop`` may be one neighbor name or a list of equal-cost
        neighbors; flows are spread across a list by hashing the flow id
        (per-flow ECMP, so a flow's packets stay in order).
        """
        hops = [next_hop] if isinstance(next_hop, str) else sorted(next_hop)
        for hop in hops:
            if hop not in self.ports:
                raise ValueError(f"{self.name}: no port toward {hop}")
        if not hops:
            raise ValueError("next_hop list is empty")
        self.routes[dst_host] = hops

    def set_port_down(self, neighbor: str, down: bool = True) -> None:
        """Black out (or restore) the egress port toward ``neighbor``."""
        if neighbor not in self.ports:
            raise ValueError(f"{self.name}: no port toward {neighbor}")
        if down:
            self.ports_down.add(neighbor)
        else:
            self.ports_down.discard(neighbor)

    def _pick_next_hop(self, packet: Packet) -> Optional[str]:
        hops = self.routes.get(packet.dst)
        if not hops:
            return None
        if len(hops) == 1:
            return hops[0]
        # Deterministic per-flow hash (crc32 is stable across runs,
        # unlike builtin hash): same flow, same path.
        key = (packet.flow_id * 1_000_003 + zlib.crc32(packet.dst.encode())) & 0x7FFFFFFF
        return hops[key % len(hops)]

    # -- forwarding -----------------------------------------------------------

    def receive(self, packet: Packet, ingress: Optional[Link] = None) -> None:
        next_hop = self._pick_next_hop(packet)
        if next_hop is None:
            self._drop(packet, "no-route")
            return
        if next_hop in self.ports_down:
            self._drop(packet, "port-blackout")
            return
        self.forward(packet, self.ports[next_hop])

    def _drop(self, packet: Packet, kind: str) -> None:
        if packet.int_ext is not None:
            # The record rides the dropped packet into oblivion, but a
            # retransmitted clone will carry this hop's next verdict.
            packet.int_ext.stamp(
                self._int_hop,
                DECISION_DROP,
                _DROP_REASONS.get(kind, 255),
                self.sim.now,
            )
        self.stats.note_drop(kind)
        self._m_dropped.inc(switch=self.name, kind=kind)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "switch.drop",
                sim_time=self.sim.now,
                switch=self.name,
                kind=kind,
                dst=packet.dst,
                flow_id=packet.flow_id,
                seq=packet.seq,
                bytes=packet.wire_size,
            )

    def forward(self, packet: Packet, link: Link) -> None:
        """Enqueue on ``link``, trimming or dropping on overflow."""
        queue: PriorityQueue = link.queue  # type: ignore[assignment]
        fill_before = queue.data_band().fill
        if link.enqueue(packet):
            if packet.int_ext is not None:
                packet.int_ext.stamp(
                    self._int_hop,
                    DECISION_FORWARD,
                    0,
                    self.sim.now,
                    queue_depth_bytes=queue.bytes_queued,
                    fill_permille=int(fill_before * 1000),
                )
            self.stats.forwarded += 1
            self._m_forwarded.inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "switch.forward",
                    sim_time=self.sim.now,
                    switch=self.name,
                    dst=packet.dst,
                    flow_id=packet.flow_id,
                    seq=packet.seq,
                    bytes=packet.wire_size,
                    queue_bytes=queue.bytes_queued,
                )
            return
        # Overflow.  Express-band packets (already tiny) are just dropped;
        # data packets go through the trim policy.
        if queue.band_for(packet) != len(queue.bands) - 1:
            self._drop(packet, "header-band-overflow")
            return
        decision = self.trim_policy.decide(packet, fill_before)
        remnant = (
            self.trim_policy.apply(packet, decision)
            if decision.action == "trim"
            else None
        )
        if remnant is None:
            self._drop(packet, "buffer-overflow")
            return
        if remnant.wire_size >= packet.wire_size:
            # Trimming did not shrink the packet; treat as overflow.
            self._drop(packet, "buffer-overflow")
            return
        if link.enqueue(remnant):
            saved = packet.wire_size - remnant.wire_size
            if remnant.int_ext is not None:
                remnant.int_ext.stamp(
                    self._int_hop,
                    DECISION_TRIM,
                    REASON_BUFFER_OVERFLOW,
                    self.sim.now,
                    queue_depth_bytes=queue.bytes_queued,
                    fill_permille=int(fill_before * 1000),
                    aux=decision.level or 0,
                )
            self.stats.trimmed += 1
            self.stats.trimmed_bytes_saved += saved
            self._m_trimmed.inc()
            self._m_bytes_saved.inc(saved)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "switch.trim",
                    sim_time=self.sim.now,
                    switch=self.name,
                    dst=packet.dst,
                    flow_id=packet.flow_id,
                    seq=packet.seq,
                    bytes_saved=saved,
                    remnant_bytes=remnant.wire_size,
                    fill_before=fill_before,
                )
        else:
            self._drop(packet, "header-band-overflow")

    # -- introspection ----------------------------------------------------------

    def queue_depth(self, neighbor: str) -> int:
        """Bytes queued toward ``neighbor``."""
        return self.ports[neighbor].queue.bytes_queued
