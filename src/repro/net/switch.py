"""Shallow-buffer switch with trim-on-overflow.

The paper's enabling mechanism: when an egress queue fills, the switch —
instead of dropping — *trims* a gradient packet down to its decodable
head and forwards the remnant in a strict-priority express band, like
NDP/EODS and the packet-trimming features of Tofino, Trident 4 and
Spectrum 2.  The trim depth is delegated to a
:class:`~repro.packet.trim.TrimPolicy`, so the same switch runs drop-tail
(``NeverTrim``), classic single-level trimming, or the Section 5.1
multi-level policy.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable, Dict, Optional, Tuple

from ..obs.int_telemetry import (
    AUX_PATH_CHANGED,
    DECISION_DROP,
    DECISION_FORWARD,
    DECISION_TRIM,
    REASON_BLACKHOLE,
    REASON_BUFFER_OVERFLOW,
    REASON_HEADER_BAND_OVERFLOW,
    REASON_NO_ROUTE,
    REASON_PORT_BLACKOUT,
    REASON_SWITCH_DOWN,
    hop_id,
)
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..obs import trace as _obs_trace
from ..packet import arena as _arena
from ..packet.packet import Packet
from ..packet.trim import NeverTrim, TrimPolicy
from .link import Device, Link
from .queues import PriorityQueue
from .simulator import Simulator

__all__ = ["Switch", "SwitchStats"]

#: Drop kinds → INT reason codes stamped into the telemetry band.
_DROP_REASONS = {
    "no-route": REASON_NO_ROUTE,
    "port-blackout": REASON_PORT_BLACKOUT,
    "header-band-overflow": REASON_HEADER_BAND_OVERFLOW,
    "buffer-overflow": REASON_BUFFER_OVERFLOW,
    "blackhole": REASON_BLACKHOLE,
    "switch-down": REASON_SWITCH_DOWN,
}


@dataclass
class SwitchStats:
    """Counters for one switch."""

    forwarded: int = 0
    trimmed: int = 0
    dropped: int = 0
    trimmed_bytes_saved: int = 0
    drops_by_kind: Dict[str, int] = field(default_factory=dict)
    # ECMP accounting: flows hashed onto an equal-cost port that already
    # carries other flows (the hash-collision hotspots that make one
    # core link congest while its siblings idle).
    ecmp_flows: int = 0
    ecmp_collisions: int = 0
    # Flows rehomed onto a surviving equal-cost leg after a port died.
    reroutes: int = 0

    def note_drop(self, kind: str) -> None:
        self.dropped += 1
        self.drops_by_kind[kind] = self.drops_by_kind.get(kind, 0) + 1

    @property
    def blackhole(self) -> int:
        """Packets lost to a stale FIB during reroute convergence."""
        return self.drops_by_kind.get("blackhole", 0)

    @property
    def enqueues(self) -> int:
        """Every packet that reached an egress decision."""
        return self.forwarded + self.trimmed + self.dropped

    @property
    def trim_fraction(self) -> float:
        """Trimmed share of all egress decisions (the paper's headline rate)."""
        total = self.enqueues
        return self.trimmed / total if total else 0.0

    @property
    def drop_fraction(self) -> float:
        """Dropped share of all egress decisions."""
        total = self.enqueues
        return self.dropped / total if total else 0.0


class Switch(Device):
    """A store-and-forward switch with shallow per-port buffers.

    Args:
        name: switch id.
        sim: the event loop.
        buffer_bytes: data-band capacity per egress port (the shallow
            buffer; the paper's switches trim precisely because this is
            small).
        header_band_bytes: express-band capacity for trimmed headers,
            ACKs and metadata (small packets, so a modest reserve).
        ecn_threshold_bytes: DCTCP-style marking threshold on the data
            band (None disables ECN).
        trim_policy: what to do on overflow; defaults to drop-tail.
        reroute_delay_s: FIB convergence delay after a port goes down.
            Packets hashed onto the dead leg blackhole for this long
            (the stale-FIB window every real fabric has), then the
            switch evicts exactly those flows from its flow table and
            rehashes them across the surviving equal-cost legs.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        buffer_bytes: int = 60_000,
        header_band_bytes: int = 30_000,
        ecn_threshold_bytes: Optional[int] = None,
        trim_policy: Optional[TrimPolicy] = None,
        reroute_delay_s: float = 50e-6,
    ) -> None:
        super().__init__(name, sim)
        self.buffer_bytes = buffer_bytes
        self.header_band_bytes = header_band_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.trim_policy = trim_policy or NeverTrim()
        self.ports: Dict[str, Link] = {}
        # Ports currently blacked out by fault injection: packets routed
        # toward them are dropped until the port comes back, modelling a
        # dead transceiver / unplugged cable.  Before the FIB converges
        # the drops are "blackhole" (stale flow table); afterwards flows
        # rehome onto surviving legs, and only routes with no live
        # alternative keep dropping (legacy kind "port-blackout").
        self.ports_down: set = set()
        self.reroute_delay_s = reroute_delay_s
        # Whole-device failure: every received packet drops as
        # "switch-down" and the egress serializers go dark.
        self.failed = False
        # Down ports whose reroute-convergence delay has elapsed:
        # route_lookup steers new placements around these.
        self._converged_down: set = set()
        # Flow keys evicted by a convergence event, mapped to the dead
        # leg they sat on — the next packet of such a flow either counts
        # a reroute (new leg differs) or re-pins to the dead leg when no
        # alternative exists.
        self._reroute_pending: Dict[Tuple[str, str, int], str] = {}
        # Flow keys whose next INT forward record gets AUX_PATH_CHANGED
        # OR-ed into aux, so traces show exactly where a failover landed.
        self._path_changed: set = set()
        # dst host -> equal-cost next hops; flows are hashed across them
        # (ECMP).  A single-element list is plain shortest-path routing.
        self.routes: Dict[str, list] = {}
        # ECMP hash salt, set for the whole fabric by
        # Network.build_routes(ecmp=True, ecmp_seed=...) via the shared
        # "ecmp" PRNG purpose; 0 keeps the legacy unseeded placement.
        self.ecmp_salt = 0
        # (src, dst, flow_id) -> (next hop, path index, egress link).
        # Per-flow state, like a real switch's flow table: the 5-tuple
        # hash runs once per flow, not per packet, the cached index
        # feeds INT aux, and the resolved Link rides along so the
        # forwarding path skips the ports lookup.
        self._ecmp_cache: Dict[Tuple[str, str, int], Tuple[str, int, Link]] = {}
        # True while ``forward`` is the plain class method.  PacketTracer
        # clears this when it wraps ``forward`` as an instance attribute,
        # so the fused fast path below can gate on one attribute load
        # instead of probing ``self.__dict__`` per packet.
        self._forward_plain = True
        # Port -> number of distinct ECMP flows hashed onto it (collision
        # accounting for the fairness reports).
        self._ecmp_load: Dict[str, int] = {}
        # Cluster seam: maps a flow id to a tenant/job label on the cold
        # paths (trim/drop) so multi-tenant runs can attribute damage.
        self.flow_classifier: Optional[Callable[[int, str, str], None]] = None
        self.stats = SwitchStats()
        # Stable small-integer id this switch stamps into INT records.
        self._int_hop = hop_id(name)
        # Registry-backed twins of the SwitchStats counters (bound once:
        # the forwarding path runs per packet).
        registry = get_registry()
        self._m_forwarded = registry.counter(
            "repro_switch_forwarded_total", "packets forwarded intact", ("switch",)
        ).bind(switch=name)
        self._m_trimmed = registry.counter(
            "repro_switch_trimmed_total", "packets trimmed on overflow", ("switch",)
        ).bind(switch=name)
        self._m_bytes_saved = registry.counter(
            "repro_switch_trim_bytes_saved_total",
            "wire bytes removed by trimming",
            ("switch",),
        ).bind(switch=name)
        self._m_dropped = registry.counter(
            "repro_switch_dropped_total", "packets dropped", ("switch", "kind")
        )
        self._m_ecmp_collisions = registry.counter(
            "repro_switch_ecmp_collisions_total",
            "new flows hashed onto an equal-cost port already carrying flows",
            ("switch",),
        ).bind(switch=name)
        self._m_reroutes = registry.counter(
            "repro_switch_reroutes_total",
            "flows rehomed onto a surviving equal-cost leg after a port died",
            ("switch",),
        ).bind(switch=name)
        self._m_blackhole = registry.counter(
            "repro_switch_blackhole_drops_total",
            "packets lost to a stale FIB during reroute convergence",
            ("switch",),
        ).bind(switch=name)
        self._m_ports_down = registry.gauge(
            "repro_switch_ports_down",
            "egress ports currently down on this switch",
            ("switch",),
        ).bind(switch=name)
        # A live gauge publishes its state from birth (and a fresh
        # switch reusing a prior run's name must not inherit its value).
        self._m_ports_down.set(0.0)
        # The per-packet forwarded twin is deferred: the forwarding path
        # keeps stats.forwarded and the registry pulls it on read.
        registry.add_flush_hook(self._flush_metrics)

    def _flush_metrics(self) -> None:
        """Publish deferred per-packet counters into the registry."""
        self._m_forwarded.set(self.stats.forwarded)

    # -- wiring -------------------------------------------------------------

    def make_queue(self) -> PriorityQueue:
        """Egress queue template: express band over a shallow data band."""
        return PriorityQueue(
            band_capacities=[self.header_band_bytes, self.buffer_bytes],
            ecn_threshold_bytes=self.ecn_threshold_bytes,
        )

    def attach(self, neighbor: str, link: Link) -> None:
        """Register the egress link toward ``neighbor``."""
        self.ports[neighbor] = link

    def set_route(self, dst_host: str, next_hop) -> None:
        """Static route toward ``dst_host``.

        ``next_hop`` may be one neighbor name or a list of equal-cost
        neighbors; flows are spread across a list by hashing the flow id
        (per-flow ECMP, so a flow's packets stay in order).
        """
        hops = [next_hop] if isinstance(next_hop, str) else sorted(next_hop)
        for hop in hops:
            if hop not in self.ports:
                raise ValueError(f"{self.name}: no port toward {hop}")
        if not hops:
            raise ValueError("next_hop list is empty")
        self.routes[dst_host] = hops
        # Route changes invalidate the per-flow placement (and its load
        # accounting): flows re-hash against the new equal-cost set.
        if self._ecmp_cache:
            self._ecmp_cache.clear()
            self._ecmp_load.clear()
            self._reroute_pending.clear()
            self._path_changed.clear()

    def set_port_down(self, neighbor: str, down: bool = True) -> None:
        """Black out (or restore) the egress port toward ``neighbor``.

        Going down starts a :attr:`reroute_delay_s` stale-FIB window:
        flows pinned to the dead leg blackhole until the scheduled
        convergence callback evicts exactly those flows, after which
        they rehash across the surviving equal-cost legs.  Flows on
        other legs keep their cached placement throughout (selective
        invalidation — intra-flow ordering on survivors is untouched).
        Restoring the port does not move rerouted flows back: like a
        real fabric, placements are sticky until the flow table ages
        out or the route set changes.
        """
        if neighbor not in self.ports:
            raise ValueError(f"{self.name}: no port toward {neighbor}")
        if down:
            if neighbor in self.ports_down:
                return
            self.ports_down.add(neighbor)
            self.sim.schedule_call(self.reroute_delay_s, self._converge, neighbor)
        else:
            self.ports_down.discard(neighbor)
            self._converged_down.discard(neighbor)
        self._m_ports_down.set(len(self.ports_down))

    def _converge(self, neighbor: str) -> None:
        """FIB convergence: route around ``neighbor``, evict its flows.

        Only entries pinned to the dead leg are evicted (with exact
        ``_ecmp_load`` decrements); every other flow keeps its cached
        placement.  Evicted keys go to ``_reroute_pending`` so the next
        packet of each flow counts a reroute when it lands on a
        different leg.
        """
        if neighbor not in self.ports_down:
            return  # restored before the FIB caught up
        self._converged_down.add(neighbor)
        if not self._ecmp_cache:
            return
        victims = [
            key for key, entry in self._ecmp_cache.items() if entry[0] == neighbor
        ]
        for key in victims:
            hop, aux, _link = self._ecmp_cache.pop(key)
            if aux:
                carried = self._ecmp_load.get(hop, 0) - 1
                if carried > 0:
                    self._ecmp_load[hop] = carried
                else:
                    self._ecmp_load.pop(hop, None)
            self._reroute_pending[key] = hop

    def set_failed(self, failed: bool = True) -> None:
        """Kill (or revive) the whole device.

        A failed switch drops everything it receives as "switch-down"
        and its egress serializers go dark (``link.up = False``), so
        in-flight packets toward *and* through it are lost.  Neighbor
        FIB reaction is the fault injector's job: it calls
        :meth:`set_port_down` on every adjacent switch so their flows
        reroute around the corpse.
        """
        self.failed = failed
        for link in self.ports.values():
            link.up = not failed

    def _pick_next_hop(self, packet: Packet) -> Optional[str]:
        hop_and_index = self._pick_ecmp(packet)
        return hop_and_index[0] if hop_and_index is not None else None

    def route_lookup(self, src: str, dst: str, flow_id: int) -> Optional[Tuple[str, int]]:
        """Pure ECMP resolution: (next hop, INT aux code), or None.

        Multi-path groups hash the flow's 5-tuple stand-in — ``(src,
        dst, flow_id)`` plus the switch name and the fabric-wide
        ``ecmp_salt`` — with crc32 (stable across runs, unlike builtin
        ``hash``) pushed through a splitmix64-style finalizer.  The aux
        code is ``path index + 1`` for multi-path groups and 0 on a
        single-path route, so INT records show which equal-cost leg a
        packet took.  No state is touched: tests and
        :meth:`Network.flow_path` call this to predict placements
        without perturbing flow tables.
        """
        cached = self._ecmp_cache.get((src, dst, flow_id))
        if cached is not None:
            # Flow-table entries win: survivors of a failover keep their
            # placement, so prediction must read the same state the
            # forwarding path does.
            return cached[0], cached[1]
        hops = self.routes.get(dst)
        if not hops:
            return None
        if len(hops) == 1:
            return hops[0], 0
        if self._converged_down:
            # Post-convergence FIB: hash only across live legs, but keep
            # aux as the leg's index in the *full* group so INT traces
            # name the same leg before and after a failover.  With no
            # live leg left we fall back to the full set — the flow
            # pins to a dead port and drops as legacy "port-blackout".
            live = [h for h in hops if h not in self._converged_down]
            if live:
                if len(live) == 1:
                    return live[0], hops.index(live[0]) + 1
                digest = zlib.crc32(f"{self.name}|{src}|{dst}|{flow_id}".encode())
                x = (digest | (self.ecmp_salt << 32)) & 0xFFFFFFFFFFFFFFFF
                x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
                x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
                x ^= x >> 31
                hop = live[x % len(live)]
                return hop, hops.index(hop) + 1
        # CRC32 alone is linear over GF(2): two salts hashed into the
        # digest differ by a constant XOR per message length, which mod
        # a small hop count collapses to a handful of parity bits — a
        # polarization that both correlates the choice across tiers
        # (every switch resolving a flow the same way) and makes many
        # salts placement-equivalent.  The multiply/xor-shift avalanche
        # below breaks that linearity, so distinct salts give
        # uncorrelated placements.
        digest = zlib.crc32(f"{self.name}|{src}|{dst}|{flow_id}".encode())
        x = (digest | (self.ecmp_salt << 32)) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
        index = x % len(hops)
        return hops[index], index + 1

    def _pick_ecmp(self, packet: Packet) -> Optional[Tuple[str, int, Link]]:
        """:meth:`route_lookup` plus the per-flow cache and accounting.

        The hash runs once per flow, like a real switch's flow table;
        the cached placement keeps a flow's packets in order and new
        cache entries feed the ECMP load/collision counters.
        """
        key = (packet.src, packet.dst, packet.flow_id)
        cached = self._ecmp_cache.get(key)
        if cached is not None:
            return cached
        resolved = self.route_lookup(packet.src, packet.dst, packet.flow_id)
        if resolved is None:
            return None
        hop, aux = resolved
        entry = (hop, aux, self.ports[hop])
        if aux == 0:
            # Single-path routes skip the flow table; a key evicted by a
            # convergence event just re-pins (nothing to reroute onto).
            if self._reroute_pending:
                self._reroute_pending.pop(key, None)
            return entry
        self._ecmp_cache[key] = entry
        carried = self._ecmp_load.get(hop, 0)
        if self._reroute_pending:
            old_hop = self._reroute_pending.pop(key, None)
            if old_hop is not None:
                self._ecmp_load[hop] = carried + 1
                if old_hop == hop:
                    # No live alternative: the flow re-pinned to the
                    # dead leg.  Not a reroute — it will keep dropping
                    # as "port-blackout" until the port comes back.
                    return entry
                self.stats.reroutes += 1
                self._m_reroutes.inc()
                self._path_changed.add(key)
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "switch.reroute",
                        sim_time=self.sim.now,
                        switch=self.name,
                        src=packet.src,
                        dst=packet.dst,
                        flow_id=packet.flow_id,
                        old_hop=old_hop,
                        new_hop=hop,
                    )
                return entry
        self.stats.ecmp_flows += 1
        if carried:
            self.stats.ecmp_collisions += 1
            self._m_ecmp_collisions.inc()
        self._ecmp_load[hop] = carried + 1
        return entry

    # -- forwarding -----------------------------------------------------------

    def receive(self, packet: Packet, ingress: Optional[Link] = None) -> None:
        if self.failed:
            self._drop(packet, "switch-down")
            return
        # Flow-table hit first: per packet this is one dict probe; the
        # full _pick_ecmp resolution only runs on a miss.  Single-path
        # routes skip _pick_ecmp's flow accounting but still cache here
        # so repeat packets of the flow take the one-probe path.
        key = (packet.src, packet.dst, packet.flow_id)
        cached = self._ecmp_cache.get(key)
        if cached is None:
            cached = self._pick_ecmp(packet)
            if cached is None:
                self._drop(packet, "no-route")
                return
            if cached[1] == 0:
                self._ecmp_cache[key] = cached
        next_hop, ecmp_aux, link = cached
        if self.ports_down and next_hop in self.ports_down:
            if next_hop in self._converged_down:
                # FIB converged but this flow had nowhere to go (no
                # live equal-cost alternative): legacy blackout drop.
                self._drop(packet, "port-blackout")
            else:
                # Stale-FIB window: the port is dead but the flow table
                # still points at it, so the packet silently vanishes.
                self._m_blackhole.inc()
                self._drop(packet, "blackhole")
            return
        if self._path_changed and key in self._path_changed:
            self._path_changed.discard(key)
            if packet.int_ext is not None:
                ecmp_aux = ecmp_aux | AUX_PATH_CHANGED
        # Fused fast path: replicate forward -> enqueue -> push inline
        # for the common case (no INT band to stamp, forward not wrapped
        # by a PacketTracer).  Counter and ECN side effects are exactly
        # ByteQueue.push's; any overflow falls back to the full method.
        if packet.int_ext is None and self._forward_plain:
            queue = link.queue
            bands = queue.bands
            last = queue._last_band
            priority = packet.priority
            band = bands[last - (priority if priority < last else last)]
            wire = packet.wire_size
            new_bytes = band._bytes + wire
            if new_bytes <= band.capacity_bytes:
                threshold = band.ecn_threshold_bytes
                if threshold is not None and new_bytes > threshold:
                    packet.ecn = True
                    band.ecn_marked += 1
                if (
                    not link._busy
                    and link.burst == 1
                    and not band._items
                    and (band is bands[0] or not bands[0]._items)
                ):
                    # Idle serializer, empty queue: the push/pop pair is
                    # a pass-through, so hand the packet straight to the
                    # serializer.  Counters still see the enqueue and
                    # the immediate dequeue; occupancy is untouched.
                    band.enqueued += 1
                    band.dequeued += 1
                    if new_bytes > band.peak_bytes:
                        band.peak_bytes = new_bytes
                    link._busy = True
                    # Inlined Simulator.schedule_call (same entry tuple,
                    # same sequence stream, same bucket placement — keep
                    # in sync with simulator.py): the serializer-finish
                    # post runs once per forwarded packet.
                    sim = self.sim
                    when = sim.now + wire * 8.0 / link.rate_bps
                    entry = (when, next(sim._sequence), link._finish_cb, packet)
                    idx = int(when * sim._inv)
                    offset = idx - sim._cur
                    if offset <= 0:
                        heappush(sim._curb, entry)
                    elif offset < sim._nb:
                        heappush(sim._buckets[idx & sim._mask], entry)
                    else:
                        heappush(sim._far, entry)
                    sim._live += 1
                else:
                    band._items.append(packet)
                    band._bytes = new_bytes
                    band.enqueued += 1
                    if new_bytes > band.peak_bytes:
                        band.peak_bytes = new_bytes
                    if not link._busy:
                        link._try_transmit()
                self.stats.forwarded += 1
                tracer = _obs_trace._TRACER
                if tracer.enabled:
                    tracer.event(
                        "switch.forward",
                        sim_time=self.sim.now,
                        switch=self.name,
                        dst=packet.dst,
                        flow_id=packet.flow_id,
                        seq=packet.seq,
                        bytes=wire,
                        queue_bytes=queue.bytes_queued,
                    )
                return
        self.forward(packet, link, ecmp_aux=ecmp_aux)

    def _drop(self, packet: Packet, kind: str) -> None:
        if packet.int_ext is not None:
            # The record rides the dropped packet into oblivion, but a
            # retransmitted clone will carry this hop's next verdict.
            packet.int_ext.stamp(
                self._int_hop,
                DECISION_DROP,
                _DROP_REASONS.get(kind, 255),
                self.sim.now,
            )
        self.stats.note_drop(kind)
        self._m_dropped.inc(switch=self.name, kind=kind)
        if self.flow_classifier is not None:
            self.flow_classifier(packet.flow_id, "drop", kind)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "switch.drop",
                sim_time=self.sim.now,
                switch=self.name,
                kind=kind,
                dst=packet.dst,
                flow_id=packet.flow_id,
                seq=packet.seq,
                bytes=packet.wire_size,
            )
        # The switch is a sink for whatever it drops: recycle pooled
        # transient packets (crosstraffic filler, controls); message
        # packets stay with their retaining sender.
        _arena._ARENA.release_transient(packet)

    def forward(self, packet: Packet, link: Link, ecmp_aux: int = 0) -> None:
        """Enqueue on ``link``, trimming or dropping on overflow.

        ``ecmp_aux`` (path index + 1 when the route had equal-cost
        alternatives) is stamped into the INT forward record so traces
        show which leg of an ECMP group the packet rode.
        """
        queue: PriorityQueue = link.queue  # type: ignore[assignment]
        if packet.int_ext is None:
            # Hot path: no INT band to stamp, so the pre-push fill is
            # only needed if the push is rejected — and a rejected push
            # leaves the band's occupancy untouched, so computing it
            # after the attempt reads the same value.
            if link.enqueue(packet):
                self.stats.forwarded += 1
                tracer = _obs_trace._TRACER
                if tracer.enabled:
                    tracer.event(
                        "switch.forward",
                        sim_time=self.sim.now,
                        switch=self.name,
                        dst=packet.dst,
                        flow_id=packet.flow_id,
                        seq=packet.seq,
                        bytes=packet.wire_size,
                        queue_bytes=queue.bytes_queued,
                    )
                return
            fill_before = queue.data_band().fill
        else:
            fill_before = queue.data_band().fill
            if link.enqueue(packet):
                packet.int_ext.stamp(
                    self._int_hop,
                    DECISION_FORWARD,
                    0,
                    self.sim.now,
                    queue_depth_bytes=queue.bytes_queued,
                    fill_permille=int(fill_before * 1000),
                    aux=ecmp_aux,
                )
                self.stats.forwarded += 1
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "switch.forward",
                        sim_time=self.sim.now,
                        switch=self.name,
                        dst=packet.dst,
                        flow_id=packet.flow_id,
                        seq=packet.seq,
                        bytes=packet.wire_size,
                        queue_bytes=queue.bytes_queued,
                    )
                return
        # Overflow.  Express-band packets (already tiny) are just dropped;
        # data packets go through the trim policy.
        if queue.band_for(packet) != len(queue.bands) - 1:
            self._drop(packet, "header-band-overflow")
            return
        decision = self.trim_policy.decide(packet, fill_before)
        remnant = (
            self.trim_policy.apply(packet, decision)
            if decision.action == "trim"
            else None
        )
        if remnant is None:
            self._drop(packet, "buffer-overflow")
            return
        if remnant.wire_size >= packet.wire_size:
            # Trimming did not shrink the packet; treat as overflow.
            self._drop(packet, "buffer-overflow")
            return
        if link.enqueue(remnant):
            saved = packet.wire_size - remnant.wire_size
            if remnant.int_ext is not None:
                remnant.int_ext.stamp(
                    self._int_hop,
                    DECISION_TRIM,
                    REASON_BUFFER_OVERFLOW,
                    self.sim.now,
                    queue_depth_bytes=queue.bytes_queued,
                    fill_permille=int(fill_before * 1000),
                    aux=decision.level or 0,
                )
            self.stats.trimmed += 1
            self.stats.trimmed_bytes_saved += saved
            self._m_trimmed.inc()
            self._m_bytes_saved.inc(saved)
            if self.flow_classifier is not None:
                self.flow_classifier(packet.flow_id, "trim", "buffer-overflow")
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "switch.trim",
                    sim_time=self.sim.now,
                    switch=self.name,
                    dst=packet.dst,
                    flow_id=packet.flow_id,
                    seq=packet.seq,
                    bytes_saved=saved,
                    remnant_bytes=remnant.wire_size,
                    fill_before=fill_before,
                )
            # The un-pooled remnant twin replaced the original on the
            # wire; a transient original (filler/control) is now dead.
            _arena._ARENA.release_transient(packet)
        else:
            self._drop(packet, "header-band-overflow")

    # -- introspection ----------------------------------------------------------

    def queue_depth(self, neighbor: str) -> int:
        """Bytes queued toward ``neighbor``."""
        return self.ports[neighbor].queue.bytes_queued
