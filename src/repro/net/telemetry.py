"""Queue telemetry: sampled depth time series for congestion studies.

The §5.1 closed-loop questions ("how do trim depth, queueing and the
resulting trim fraction interact?") need visibility into queue dynamics
over time, not just end-of-run counters.  :class:`QueueMonitor` samples
one or more egress queues at a fixed period and produces summary
statistics and ASCII-plottable series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .link import Link
from .queues import PriorityQueue
from .simulator import Simulator

__all__ = ["QueueSample", "QueueMonitor", "impairment_summary", "fabric_health"]


def fabric_health(network) -> Dict[str, Dict[str, int]]:
    """Per-switch self-healing state: failures, reroutes, blackholes.

    The fabric-failure twin of :func:`impairment_summary`: one row per
    switch with its device/port failure state and the failover work it
    has done.  The faults CLI and the chaos campaign fold this into
    their artifacts; tests use it to assert *which* device healed.
    """
    return {
        name: {
            "failed": int(switch.failed),
            "ports_down": len(switch.ports_down),
            "reroutes": switch.stats.reroutes,
            "blackhole_drops": switch.stats.blackhole,
            "switch_down_drops": switch.stats.drops_by_kind.get("switch-down", 0),
            "port_blackout_drops": switch.stats.drops_by_kind.get("port-blackout", 0),
        }
        for name, switch in sorted(network.switches.items())
    }


def impairment_summary(network) -> Dict[str, Dict[str, int]]:
    """Per-link impairment counters for every link in ``network``.

    Walks host uplinks and switch ports and reports, per ``src->dst``
    label, the packets sent, probabilistically dropped/trimmed, and lost
    to fault-injected link flaps, plus whether the link is currently up.
    The faults CLI folds this into its run summary; tests use it to
    assert where a scenario actually bit.
    """
    links: Dict[str, Link] = {}
    for host in network.hosts.values():
        if host.uplink is not None:
            links[f"{host.name}->{host.uplink.dst.name}"] = host.uplink
    for switch in network.switches.values():
        for neighbor, link in switch.ports.items():
            links[f"{switch.name}->{neighbor}"] = link
    return {
        label: {
            "packets_sent": link.packets_sent,
            "packets_dropped": link.packets_dropped,
            "packets_trimmed": link.packets_trimmed,
            "packets_lost_down": link.packets_lost_down,
            "up": int(link.up),
        }
        for label, link in sorted(links.items())
    }


@dataclass
class QueueSample:
    """One observation of a queue."""

    time: float
    bytes_queued: int
    packets: int


class QueueMonitor:
    """Periodic sampler of link egress queues.

    Args:
        sim: the event loop.
        period_s: sampling period.
        stop_at: stop sampling at this simulation time (None = sample
            while any event remains; the monitor reschedules itself only
            while other work is pending, so it never keeps an otherwise
            finished simulation alive).
    """

    def __init__(
        self, sim: Simulator, period_s: float = 1e-5, stop_at: Optional[float] = None
    ):
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.period_s = period_s
        self.stop_at = stop_at
        self._watched: Dict[str, Link] = {}
        self.samples: Dict[str, List[QueueSample]] = {}
        self._running = False
        registry = get_registry()
        self._m_depth = registry.gauge(
            "repro_queue_depth_bytes", "sampled egress queue depth", ("queue",)
        )
        self._m_depth_hist = registry.histogram(
            "repro_queue_depth_bytes_hist",
            "distribution of sampled egress queue depth",
            ("queue",),
            start=1.0,
            factor=4.0,
            num_buckets=20,
        )
        # Live occupancy gauges: before these, occupancy was only
        # available post-hoc via summary().  fill_ratio is the data
        # band's fill in [0, 1] (the band trim decisions key on);
        # band_bytes breaks a PriorityQueue's depth out per band.
        self._m_fill = registry.gauge(
            "repro_queue_fill_ratio",
            "live data-band occupancy of a watched egress queue (0-1)",
            ("queue",),
        )
        self._m_band = registry.gauge(
            "repro_queue_band_bytes",
            "live bytes queued per priority band of a watched egress queue",
            ("queue", "band"),
        )

    def watch(self, label: str, link: Link) -> None:
        """Start recording the egress queue feeding ``link``."""
        if label in self._watched:
            raise ValueError(f"already watching {label!r}")
        self._watched[label] = link
        self.samples[label] = []
        if not self._running:
            self._running = True
            self.sim.schedule(0.0, self._tick)

    def watch_network(self, network) -> List[str]:
        """Watch every switch egress port in ``network``.

        Ports are registered in sorted order so the label set (and every
        downstream sample/trace/JSONL ordering) is deterministic.
        Returns the labels watched.
        """
        labels: List[str] = []
        for name in sorted(network.switches):
            switch = network.switches[name]
            for neighbor, link in sorted(switch.ports.items()):
                label = f"{name}->{neighbor}"
                if label not in self._watched:
                    self.watch(label, link)
                    labels.append(label)
        return labels

    def _tick(self) -> None:
        tracer = get_tracer()
        for label, link in self._watched.items():
            queue = link.queue
            depth = queue.bytes_queued
            self.samples[label].append(
                QueueSample(
                    time=self.sim.now,
                    bytes_queued=depth,
                    packets=len(queue),
                )
            )
            self._m_depth.set(depth, queue=label)
            self._m_depth_hist.observe(depth, queue=label)
            if isinstance(queue, PriorityQueue):
                self._m_fill.set(queue.data_band().fill, queue=label)
                for band_idx, band in enumerate(queue.bands):
                    self._m_band.set(
                        band.bytes_queued, queue=label, band=str(band_idx)
                    )
            else:
                self._m_fill.set(queue.fill, queue=label)
            if tracer.enabled:
                tracer.event(
                    "queue.sample",
                    sim_time=self.sim.now,
                    queue=label,
                    bytes_queued=depth,
                    packets=len(queue),
                )
        past_deadline = self.stop_at is not None and self.sim.now >= self.stop_at
        # Only reschedule while the simulation has other live work: a
        # monitor must observe, not prolong, the run.
        if not past_deadline and self.sim.pending() > 0:
            self.sim.schedule(self.period_s, self._tick)
        else:
            self._running = False

    # -- analysis ---------------------------------------------------------------

    def series(self, label: str) -> List[Tuple[float, float]]:
        """(time, bytes) pairs, ready for the harness ASCII chart."""
        return [(s.time, float(s.bytes_queued)) for s in self.samples[label]]

    def peak_bytes(self, label: str) -> int:
        samples = self.samples[label]
        return max((s.bytes_queued for s in samples), default=0)

    def mean_bytes(self, label: str) -> float:
        samples = self.samples[label]
        if not samples:
            return 0.0
        return float(np.mean([s.bytes_queued for s in samples]))

    def time_above(self, label: str, threshold_bytes: int) -> float:
        """Fraction of samples with queue depth above ``threshold_bytes``."""
        samples = self.samples[label]
        if not samples:
            return 0.0
        above = sum(1 for s in samples if s.bytes_queued > threshold_bytes)
        return above / len(samples)

    def percentile(self, label: str, q: float) -> float:
        """q-th percentile (q in [0, 100]) of the sampled depth in bytes."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        samples = self.samples[label]
        if not samples:
            return 0.0
        return float(np.percentile([s.bytes_queued for s in samples], q))

    def summary(self, label: str) -> Dict[str, float]:
        """The report-ready stats bundle for one watched queue."""
        samples = self.samples[label]
        return {
            "samples": float(len(samples)),
            "mean": self.mean_bytes(label),
            "p50": self.percentile(label, 50),
            "p90": self.percentile(label, 90),
            "p99": self.percentile(label, 99),
            "peak": float(self.peak_bytes(label)),
        }
