"""Queue telemetry: sampled depth time series for congestion studies.

The §5.1 closed-loop questions ("how do trim depth, queueing and the
resulting trim fraction interact?") need visibility into queue dynamics
over time, not just end-of-run counters.  :class:`QueueMonitor` samples
one or more egress queues at a fixed period and produces summary
statistics and ASCII-plottable series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .link import Link
from .simulator import Simulator

__all__ = ["QueueSample", "QueueMonitor"]


@dataclass
class QueueSample:
    """One observation of a queue."""

    time: float
    bytes_queued: int
    packets: int


class QueueMonitor:
    """Periodic sampler of link egress queues.

    Args:
        sim: the event loop.
        period_s: sampling period.
        stop_at: stop sampling at this simulation time (None = sample
            while any event remains; the monitor reschedules itself only
            while other work is pending, so it never keeps an otherwise
            finished simulation alive).
    """

    def __init__(
        self, sim: Simulator, period_s: float = 1e-5, stop_at: Optional[float] = None
    ):
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.period_s = period_s
        self.stop_at = stop_at
        self._watched: Dict[str, Link] = {}
        self.samples: Dict[str, List[QueueSample]] = {}
        self._running = False

    def watch(self, label: str, link: Link) -> None:
        """Start recording the egress queue feeding ``link``."""
        if label in self._watched:
            raise ValueError(f"already watching {label!r}")
        self._watched[label] = link
        self.samples[label] = []
        if not self._running:
            self._running = True
            self.sim.schedule(0.0, self._tick)

    def _tick(self) -> None:
        for label, link in self._watched.items():
            queue = link.queue
            self.samples[label].append(
                QueueSample(
                    time=self.sim.now,
                    bytes_queued=queue.bytes_queued,
                    packets=len(queue),
                )
            )
        past_deadline = self.stop_at is not None and self.sim.now >= self.stop_at
        # Only reschedule while the simulation has other live work: a
        # monitor must observe, not prolong, the run.
        if not past_deadline and self.sim.pending() > 0:
            self.sim.schedule(self.period_s, self._tick)
        else:
            self._running = False

    # -- analysis ---------------------------------------------------------------

    def series(self, label: str) -> List[Tuple[float, float]]:
        """(time, bytes) pairs, ready for the harness ASCII chart."""
        return [(s.time, float(s.bytes_queued)) for s in self.samples[label]]

    def peak_bytes(self, label: str) -> int:
        samples = self.samples[label]
        return max((s.bytes_queued for s in samples), default=0)

    def mean_bytes(self, label: str) -> float:
        samples = self.samples[label]
        if not samples:
            return 0.0
        return float(np.mean([s.bytes_queued for s in samples]))

    def time_above(self, label: str, threshold_bytes: int) -> float:
        """Fraction of samples with queue depth above ``threshold_bytes``."""
        samples = self.samples[label]
        if not samples:
            return 0.0
        above = sum(1 for s in samples if s.bytes_queued > threshold_bytes)
        return above / len(samples)
