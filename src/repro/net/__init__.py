"""Discrete-event network simulator: engine, queues, links, switches, topologies."""

from .crosstraffic import CROSS_TRAFFIC_FLOW_BASE, IncastBurst, OnOffFlow
from .flow import FlowLog, FlowRecord
from .host import Host
from .link import Device, DeliveryHook, Link
from .queues import ByteQueue, PriorityQueue
from .simulator import Event, Simulator
from .switch import Switch, SwitchStats
from .telemetry import QueueMonitor, QueueSample, fabric_health, impairment_summary
from .topology import GBPS, Network, dumbbell, fat_tree, leaf_spine
from .trace import PacketTracer, TraceEvent

__all__ = [
    "CROSS_TRAFFIC_FLOW_BASE",
    "IncastBurst",
    "OnOffFlow",
    "FlowLog",
    "FlowRecord",
    "Host",
    "Device",
    "DeliveryHook",
    "Link",
    "ByteQueue",
    "PriorityQueue",
    "Event",
    "Simulator",
    "Switch",
    "SwitchStats",
    "QueueMonitor",
    "QueueSample",
    "fabric_health",
    "impairment_summary",
    "PacketTracer",
    "TraceEvent",
    "GBPS",
    "Network",
    "dumbbell",
    "fat_tree",
    "leaf_spine",
]
