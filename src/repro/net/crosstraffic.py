"""Background traffic generators.

The paper's setting is a *shared* fabric: training flows collide with
"other bursty traffic".  Two standard generators create that pressure:

* :class:`OnOffFlow` — exponential on/off UDP-like traffic at a target
  rate during bursts (web/storage background load).
* :class:`IncastBurst` — ``fan_in`` senders each fire a burst at one
  receiver simultaneously (the partition/aggregate pattern that causes
  the sudden queue overflow trimming is designed to absorb).
"""

from __future__ import annotations

import zlib
from heapq import heappush
from typing import Optional

from ..packet import arena as _arena
from ..packet.packet import Packet
from ..transforms.prng import shared_generator
from .host import Host
from .simulator import Simulator

__all__ = ["OnOffFlow", "IncastBurst", "CROSS_TRAFFIC_FLOW_BASE"]

#: Flow-id space reserved for background traffic, away from transports.
CROSS_TRAFFIC_FLOW_BASE = 1_000_000


def _derived_flow_id(src: str, dst: str) -> int:
    """Stable flow id for a (src, dst) pair.

    ``hash()`` on strings varies with ``PYTHONHASHSEED``, which would
    give background flows different ids (and different trace logs) on
    every run; CRC32 is stable across processes and platforms.
    """
    return CROSS_TRAFFIC_FLOW_BASE + zlib.crc32(f"{src}->{dst}".encode()) % 100_000


class OnOffFlow:
    """Exponential on/off constant-bit-rate background flow.

    During an "on" period (mean ``burst_s``) it emits ``packet_bytes``
    packets back-to-back at ``rate_bps``; "off" periods have mean
    ``idle_s``.  Average offered load is ``rate * burst/(burst+idle)``.
    """

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: str,
        rate_bps: float,
        burst_s: float = 100e-6,
        idle_s: float = 100e-6,
        packet_bytes: int = 1458,
        seed: int = 0,
        flow_id: Optional[int] = None,
        stop_at: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.burst_s = burst_s
        self.idle_s = idle_s
        self.packet_bytes = packet_bytes
        self.stop_at = stop_at
        self.flow_id = flow_id if flow_id is not None else _derived_flow_id(src.name, dst)
        self._rng = shared_generator(seed, purpose="crosstraffic")
        self.packets_emitted = 0
        self._active = False
        # Hot-path state: one shared payload object for every filler
        # packet (the bytes are never mutated in flight) and the end of
        # the burst in progress, so the pacing callback needs no closure.
        self._payload = b"\x00" * (packet_bytes - 42)
        self._burst_until = 0.0

    def start(self, delay: float = 0.0) -> None:
        """Begin the on/off cycle ``delay`` seconds from now."""
        self._active = True
        self.sim.schedule(delay, self._begin_burst)

    def stop(self) -> None:
        """Cease after the current packet."""
        self._active = False

    def _stopped(self) -> bool:
        return not self._active or (
            self.stop_at is not None and self.sim.now >= self.stop_at
        )

    def _begin_burst(self) -> None:
        if self._stopped():
            return
        duration = self._rng.exponential(self.burst_s)
        self._burst_until = self.sim.now + duration
        self._emit()

    def _emit(self) -> None:
        if self._stopped():
            return
        sim = self.sim
        if sim.now >= self._burst_until:
            sim.schedule(self._rng.exponential(self.idle_s), self._begin_burst)
            return
        packet = _arena._ARENA.acquire_filler(
            self.src.name, self.dst, self._payload, self.flow_id
        )
        accepted = self.src.send(packet)
        self.packets_emitted += 1
        gap = packet.wire_size * 8.0 / self.rate_bps
        # Unbound method + self: zero-allocation pacing tick, posted as
        # Simulator.schedule_call inlined (keep in sync with simulator.py).
        when = sim.now + gap
        entry = (when, next(sim._sequence), OnOffFlow._emit, self)
        idx = int(when * sim._inv)
        offset = idx - sim._cur
        if offset <= 0:
            heappush(sim._curb, entry)
        elif offset < sim._nb:
            heappush(sim._buckets[idx & sim._mask], entry)
        else:
            heappush(sim._far, entry)
        sim._live += 1
        if not accepted:
            # The NIC queue rejected it; nothing downstream will ever
            # see this object again.
            _arena._ARENA.release_transient(packet)


class IncastBurst:
    """Synchronized incast: many senders, one receiver, one instant.

    Each sender transmits ``burst_bytes`` in MTU packets starting at
    ``at`` (plus optional per-sender jitter), producing the transient
    buffer overflow that motivates trimming.
    """

    def __init__(
        self,
        sim: Simulator,
        senders: list[Host],
        dst: str,
        burst_bytes: int = 100_000,
        packet_bytes: int = 1458,
        jitter_s: float = 0.0,
        seed: int = 0,
        flow_id_base: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.senders = senders
        self.dst = dst
        self.burst_bytes = burst_bytes
        self.packet_bytes = packet_bytes
        self.jitter_s = jitter_s
        self._rng = shared_generator(seed, purpose="crosstraffic")
        self.flow_id_base = (
            flow_id_base if flow_id_base is not None else CROSS_TRAFFIC_FLOW_BASE + 500_000
        )
        self.packets_emitted = 0

    def fire(self, at: float = 0.0) -> None:
        """Schedule the burst to start ``at`` seconds from now."""
        for rank, sender in enumerate(self.senders):
            jitter = self._rng.uniform(0, self.jitter_s) if self.jitter_s else 0.0
            self.sim.schedule(at + jitter, lambda s=sender, r=rank: self._blast(s, r))

    def _blast(self, sender: Host, rank: int) -> None:
        remaining = self.burst_bytes
        full = b"\x00" * (self.packet_bytes - 42)
        flow_id = self.flow_id_base + rank
        src = sender.name
        while remaining > 0:
            size = min(self.packet_bytes, remaining + 42)
            payload = full if size == self.packet_bytes else b"\x00" * max(0, size - 42)
            packet = _arena._ARENA.acquire_filler(src, self.dst, payload, flow_id)
            accepted = sender.send(packet)
            self.packets_emitted += 1
            remaining -= size - 42
            if not accepted:
                _arena._ARENA.release_transient(packet)
