"""Per-packet event tracing (a tcpdump for the simulator).

Attach a :class:`PacketTracer` to devices and links to record every
significant event — send, forward, trim, drop, deliver — with
timestamps.  Used to debug transports and to answer §5.1-style questions
("which packets did the switch choose to trim, and when?") that
aggregate counters cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..packet.packet import Packet
from .host import Host
from .link import Link
from .simulator import Simulator
from .switch import Switch

__all__ = ["TraceEvent", "PacketTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One observed packet event."""

    time: float
    kind: str  # "send" | "forward" | "trim" | "drop" | "deliver"
    node: str
    packet_id: int
    flow_id: int
    seq: int
    wire_size: int
    is_trimmed: bool

    def __str__(self) -> str:
        trimmed = " (trimmed)" if self.is_trimmed else ""
        return (
            f"{self.time*1e6:10.2f}us {self.kind:>8} @{self.node:<8} "
            f"flow={self.flow_id} seq={self.seq} {self.wire_size}B{trimmed}"
        )


class PacketTracer:
    """Wrap devices so their packet events land in one ordered log.

    Wrapping is by delegation: the tracer monkey-patches the instance's
    ``receive``/``send``/``forward`` with recording versions.  Only the
    given instances are affected; wrapping is idempotent per instance.
    """

    def __init__(self, sim: Simulator, max_events: int = 100_000) -> None:
        self.sim = sim
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self._wrapped: set[int] = set()

    def _record(self, kind: str, node: str, packet: Packet) -> None:
        if len(self.events) >= self.max_events:
            return
        self.events.append(
            TraceEvent(
                time=self.sim.now,
                kind=kind,
                node=node,
                packet_id=packet.packet_id,
                flow_id=packet.flow_id,
                seq=packet.seq,
                wire_size=packet.wire_size,
                is_trimmed=packet.is_trimmed,
            )
        )

    # -- wrapping -------------------------------------------------------------

    def attach_host(self, host: Host) -> None:
        """Record sends and deliveries at a host."""
        if id(host) in self._wrapped:
            return
        self._wrapped.add(id(host))
        original_send = host.send
        original_receive = host.receive

        def send(packet: Packet) -> bool:
            self._record("send", host.name, packet)
            return original_send(packet)

        def receive(packet: Packet, ingress=None) -> None:
            self._record("deliver", host.name, packet)
            original_receive(packet, ingress)

        host.send = send  # type: ignore[method-assign]
        host.receive = receive  # type: ignore[method-assign]

    def attach_switch(self, switch: Switch) -> None:
        """Record forwards, trims, and drops at a switch."""
        if id(switch) in self._wrapped:
            return
        self._wrapped.add(id(switch))
        original_forward = switch.forward

        def forward(packet: Packet, link: Link, ecmp_aux: int = 0) -> None:
            before = (switch.stats.forwarded, switch.stats.trimmed, switch.stats.dropped)
            original_forward(packet, link, ecmp_aux=ecmp_aux)
            after = (switch.stats.forwarded, switch.stats.trimmed, switch.stats.dropped)
            if after[0] > before[0]:
                self._record("forward", switch.name, packet)
            elif after[1] > before[1]:
                self._record("trim", switch.name, packet)
            elif after[2] > before[2]:
                self._record("drop", switch.name, packet)

        switch.forward = forward  # type: ignore[method-assign]
        # Tell the fused fast path its inline forward is now observed:
        # Switch.receive falls back to calling ``forward`` (this wrapper)
        # whenever the flag is cleared.
        switch._forward_plain = False

    # -- queries ----------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def of_flow(self, flow_id: int) -> List[TraceEvent]:
        return [e for e in self.events if e.flow_id == flow_id]

    def packet_history(self, packet_id: int) -> List[TraceEvent]:
        """Every recorded event of one packet, in time order."""
        return [e for e in self.events if e.packet_id == packet_id]

    def render(self, limit: Optional[int] = 50) -> str:
        """Human-readable log (first ``limit`` events)."""
        shown = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in shown]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
