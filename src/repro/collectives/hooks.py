"""DDP-style communication hooks.

The paper implements its codecs as "customized communication hooks in
the Pytorch Distributed Data-Parallel framework".  A
:class:`CommHook` is the same seam here: the trainer hands it the list
of per-worker flat gradients each round and receives the aggregated
gradient back.  Hooks own their channel, so swapping
baseline/sign/SQ/SD/RHT aggregation is a one-line change in experiments.

Hooks optionally *bucket* the gradient the way PyTorch DDP does (the
paper cites the 25 MB default): each bucket becomes its own collective
message with its own codec state — in particular its own σ / clip range
/ row scales, which localizes the sign codec's global-σ damage and is
therefore visible in the experiments.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..obs.metrics import get_registry
from ..obs.spans import get_span_tracer
from ..obs.trace import get_tracer
from .channel import ChannelStats, GradientChannel, PerfectChannel
from .ring import allreduce_mean, ring_allreduce

if TYPE_CHECKING:  # avoid a runtime collectives -> resilience cycle
    from ..resilience.deadline import RoundDeadline

__all__ = ["CommHook", "AllReduceHook", "RingAllReduceHook", "bucket_bounds"]


def bucket_bounds(length: int, bucket_coords: Optional[int]) -> List[tuple]:
    """(start, end) spans splitting ``length`` coords into DDP buckets."""
    if bucket_coords is None or bucket_coords >= length:
        return [(0, length)]
    if bucket_coords <= 0:
        raise ValueError(f"bucket_coords must be positive, got {bucket_coords}")
    return [
        (start, min(start + bucket_coords, length))
        for start in range(0, length, bucket_coords)
    ]


class CommHook:
    """Aggregates per-worker gradients into one mean gradient.

    Args:
        channel: the gradient channel every message crosses.
        bucket_coords: DDP-style bucketing — split each gradient into
            buckets of this many coordinates, aggregated as independent
            messages (None = one message for the whole gradient).
        deadline: optional :class:`~repro.resilience.RoundDeadline`
            enabling partial aggregation over the round's responders
            (the trainer also assigns this after construction).
    """

    def __init__(
        self,
        channel: Optional[GradientChannel] = None,
        bucket_coords: Optional[int] = None,
        deadline: Optional["RoundDeadline"] = None,
    ) -> None:
        self.channel = channel or PerfectChannel()
        self.bucket_coords = bucket_coords
        self.deadline = deadline
        self._message_counter = 0
        hook = type(self).__name__
        self._m_agg_seconds = get_registry().histogram(
            "repro_collective_aggregate_seconds",
            "wall time of one gradient aggregation",
            ("hook",),
        ).bind(hook=hook)

    @property
    def stats(self) -> ChannelStats:
        """Channel accounting accumulated over the whole run."""
        return self.channel.stats

    def next_message_id(self) -> int:
        self._message_counter += 1
        return self._message_counter

    def aggregate(self, grads: List[np.ndarray], epoch: int) -> np.ndarray:
        """Aggregate per-worker gradients (instrumented template method)."""
        start = time.perf_counter()
        # The hook has no modeled clock of its own (each transfer builds
        # a fresh network), so the span carries no times — it exists to
        # parent the channel.transfer spans begun inside _aggregate.
        st = get_span_tracer()
        span = st.begin(
            "collective.aggregate",
            hook=type(self).__name__,
            epoch=epoch,
            workers=len(grads),
        )
        with st.context(span):
            out = self._aggregate(grads, epoch)
        st.end(span)
        # Error-feedback channels key residuals by in-round slot; tell
        # them the round is over so the next one starts back at slot 0.
        end_round = getattr(self.channel, "end_round", None)
        if callable(end_round):
            end_round()
        duration = time.perf_counter() - start
        self._m_agg_seconds.observe(duration)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "collective.aggregate",
                duration_s=duration,
                hook=type(self).__name__,
                epoch=epoch,
                workers=len(grads),
                coords=int(grads[0].size),
            )
        return out

    def _aggregate(self, grads: List[np.ndarray], epoch: int) -> np.ndarray:
        raise NotImplementedError


class AllReduceHook(CommHook):
    """Direct aggregation: every worker's message crosses the channel once.

    This matches the paper's evaluation: trimming hits each worker's
    gradient stream independently, then the receiver averages.  With
    ``bucket_coords`` set, each bucket is its own message (own metadata,
    own trim pattern), like DDP's 25 MB buckets.
    """

    def _aggregate(self, grads: List[np.ndarray], epoch: int) -> np.ndarray:
        spans = bucket_bounds(grads[0].size, self.bucket_coords)
        if len(spans) == 1:
            return allreduce_mean(
                grads,
                self.channel,
                epoch=epoch,
                message_id=self.next_message_id(),
                deadline=self.deadline,
            )
        out = np.empty(grads[0].size)
        for start, end in spans:
            out[start:end] = allreduce_mean(
                [g[start:end] for g in grads],
                self.channel,
                epoch=epoch,
                message_id=self.next_message_id(),
                deadline=self.deadline,
            )
        return out


class RingAllReduceHook(CommHook):
    """Ring aggregation: compression error compounds per chunk hop.

    Returns rank 0's copy (all ranks agree when the channel is
    deterministic for a given (epoch, message, worker) key).
    """

    def _aggregate(self, grads: List[np.ndarray], epoch: int) -> np.ndarray:
        results = ring_allreduce(
            grads,
            self.channel,
            epoch=epoch,
            message_id=self.next_message_id(),
            deadline=self.deadline,
        )
        return results[0]
