"""Collective-communication substrate (the *ccl of the paper)."""

from .channel import ChannelStats, GradientChannel, PerfectChannel
from .hooks import AllReduceHook, CommHook, RingAllReduceHook, bucket_bounds
from .ring import all_gather, allreduce_mean, broadcast, reduce_scatter, ring_allreduce

__all__ = [
    "ChannelStats",
    "GradientChannel",
    "PerfectChannel",
    "AllReduceHook",
    "CommHook",
    "RingAllReduceHook",
    "bucket_bounds",
    "all_gather",
    "allreduce_mean",
    "broadcast",
    "reduce_scatter",
    "ring_allreduce",
]
