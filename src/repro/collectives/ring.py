"""Collective operations over gradient channels.

Two aggregation strategies, both returning the element-wise mean:

* :func:`allreduce_mean` — every worker's full gradient crosses the
  channel once and the receiver averages.  This is exactly the paper's
  evaluation methodology (trimming applied to each worker's message).
* :func:`ring_allreduce` — the classic bandwidth-optimal ring: a
  reduce-scatter pass followed by an all-gather pass, each of the
  ``2·(N-1)·N`` chunk hops crossing the channel independently.  Useful
  for studying how compression error compounds along the ring.

Plus :func:`all_gather` and :func:`reduce_scatter` (FSDP's primitives)
and :func:`broadcast`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from .channel import GradientChannel, PerfectChannel

if TYPE_CHECKING:  # avoid a runtime collectives -> resilience cycle
    from ..resilience.deadline import RoundDeadline

__all__ = [
    "allreduce_mean",
    "ring_allreduce",
    "all_gather",
    "reduce_scatter",
    "broadcast",
]


def _check_same_shape(tensors: List[np.ndarray]) -> int:
    if not tensors:
        raise ValueError("collective needs at least one tensor")
    length = tensors[0].size
    for i, t in enumerate(tensors):
        if t.ndim != 1:
            raise ValueError(f"worker {i}: collectives operate on flat vectors")
        if t.size != length:
            raise ValueError(f"worker {i}: length {t.size} != {length}")
    return length


def allreduce_mean(
    tensors: List[np.ndarray],
    channel: Optional[GradientChannel] = None,
    epoch: int = 0,
    message_id: int = 0,
    deadline: Optional["RoundDeadline"] = None,
) -> np.ndarray:
    """Mean of all workers' vectors, each crossing the channel once.

    With a ``deadline``, only the responders' vectors cross the channel
    and the mean is rescaled over them — an unbiased estimator of the
    responder mean; stragglers neither transfer nor stall the round.
    An empty responder set surrenders the round (zero gradient).
    """
    channel = channel or PerfectChannel()
    _check_same_shape(tensors)
    ranks: Sequence[int] = range(len(tensors))
    if deadline is not None:
        ranks, _stragglers = deadline.split(list(ranks))
        if not ranks:
            channel.count_surrender()
            return np.zeros(tensors[0].size)
    received = [
        channel.transfer(
            tensors[rank], epoch=epoch, message_id=message_id, worker=rank
        )
        for rank in ranks
    ]
    return np.mean(received, axis=0)


def ring_allreduce(
    tensors: List[np.ndarray],
    channel: Optional[GradientChannel] = None,
    epoch: int = 0,
    message_id: int = 0,
    deadline: Optional["RoundDeadline"] = None,
    _ranks: Optional[Sequence[int]] = None,
) -> List[np.ndarray]:
    """Bandwidth-optimal ring all-reduce returning each rank's mean copy.

    The vector is split into N chunks.  In reduce-scatter step ``s``,
    rank ``r`` sends chunk ``(r - s) mod N`` to rank ``r+1``, which adds
    it to its local accumulator; after N-1 steps each rank owns the full
    sum of one chunk.  The all-gather phase circulates the finished
    chunks.  Every hop crosses the channel (and may be compressed).

    With a ``deadline``, the ring is rebuilt over the responders only
    (the sub-ring's hops keep the original rank labels for the channel's
    shared randomness) and every straggler slot receives the sub-ring's
    consensus copy, so the returned list always has one entry per input.
    """
    channel = channel or PerfectChannel()
    length = _check_same_shape(tensors)
    world = len(tensors)
    if deadline is not None:
        responders, stragglers = deadline.split(list(range(world)))
        if not responders:
            channel.count_surrender()
            return [np.zeros(length) for _ in range(world)]
        if stragglers:
            sub = ring_allreduce(
                [tensors[r] for r in responders],
                channel,
                epoch=epoch,
                message_id=message_id,
                _ranks=responders,
            )
            outputs: List[np.ndarray] = []
            by_rank = dict(zip(responders, sub))
            for rank in range(world):
                outputs.append(
                    by_rank[rank] if rank in by_rank else sub[0].copy()
                )
            return outputs
    labels = list(_ranks) if _ranks is not None else list(range(world))
    if world == 1:
        return [tensors[0].astype(np.float64)]
    bounds = np.linspace(0, length, world + 1).astype(int)
    chunks = [
        [t[bounds[c] : bounds[c + 1]].astype(np.float64) for c in range(world)]
        for t in tensors
    ]  # chunks[rank][chunk_index]
    hop = 0
    # Reduce-scatter: after this, chunks[r][(r+1) mod N] holds the full sum.
    for step in range(world - 1):
        sends = []
        for rank in range(world):
            c = (rank - step) % world
            sends.append((rank, c, chunks[rank][c]))
        for rank, c, payload in sends:
            peer = (rank + 1) % world
            delivered = channel.transfer(
                payload,
                epoch=epoch,
                message_id=message_id * 1000 + hop,
                worker=labels[rank],
            )
            chunks[peer][c] = chunks[peer][c] + delivered
            hop += 1
    # All-gather: circulate each finished chunk around the ring.
    for step in range(world - 1):
        sends = []
        for rank in range(world):
            c = (rank + 1 - step) % world
            sends.append((rank, c, chunks[rank][c]))
        for rank, c, payload in sends:
            peer = (rank + 1) % world
            delivered = channel.transfer(
                payload,
                epoch=epoch,
                message_id=message_id * 1000 + hop,
                worker=labels[rank],
            )
            chunks[peer][c] = delivered
            hop += 1
    return [np.concatenate(chunks[rank]) / world for rank in range(world)]


def all_gather(
    shards: List[np.ndarray],
    channel: Optional[GradientChannel] = None,
    epoch: int = 0,
    message_id: int = 0,
) -> List[np.ndarray]:
    """Each rank receives the concatenation of every rank's shard.

    FSDP's weight-gather step: shard ``r`` crosses the channel once per
    receiving peer (rank ``r`` keeps its own shard exact).
    """
    channel = channel or PerfectChannel()
    world = len(shards)
    gathered: List[np.ndarray] = []
    for receiver in range(world):
        parts = []
        for sender, shard in enumerate(shards):
            if sender == receiver:
                parts.append(np.asarray(shard, dtype=np.float64))
            else:
                parts.append(
                    channel.transfer(
                        shard,
                        epoch=epoch,
                        message_id=message_id * 1000 + sender,
                        worker=sender * world + receiver,
                    )
                )
        gathered.append(np.concatenate(parts))
    return gathered


def reduce_scatter(
    tensors: List[np.ndarray],
    channel: Optional[GradientChannel] = None,
    epoch: int = 0,
    message_id: int = 0,
) -> List[np.ndarray]:
    """Rank ``r`` receives the mean of everyone's r-th chunk."""
    channel = channel or PerfectChannel()
    length = _check_same_shape(tensors)
    world = len(tensors)
    bounds = np.linspace(0, length, world + 1).astype(int)
    outputs: List[np.ndarray] = []
    for receiver in range(world):
        lo, hi = bounds[receiver], bounds[receiver + 1]
        acc = np.zeros(hi - lo)
        for sender, tensor in enumerate(tensors):
            chunk = tensor[lo:hi]
            if sender == receiver:
                acc += chunk
            else:
                acc += channel.transfer(
                    chunk,
                    epoch=epoch,
                    message_id=message_id * 1000 + sender,
                    worker=sender * world + receiver,
                )
        outputs.append(acc / world)
    return outputs


def broadcast(
    tensor: np.ndarray,
    world: int,
    channel: Optional[GradientChannel] = None,
    epoch: int = 0,
    message_id: int = 0,
) -> List[np.ndarray]:
    """Rank 0's vector delivered to every rank (rank 0 keeps it exact)."""
    channel = channel or PerfectChannel()
    outputs = [np.asarray(tensor, dtype=np.float64)]
    for receiver in range(1, world):
        outputs.append(
            channel.transfer(tensor, epoch=epoch, message_id=message_id, worker=receiver)
        )
    return outputs
