"""Gradient channels: how one worker's message crosses the network.

The paper's prototype hooks PyTorch DDP's gradient-aggregation step and
simulates congestion by probabilistically trimming the gradient stream.
A :class:`GradientChannel` is exactly that pluggable seam: collectives
push each flat float vector through a channel, and the channel decides what
the far side receives — unchanged (:class:`PerfectChannel`), or
compressed by a codec + Bernoulli packet trimming
(:class:`repro.train.TrimChannel`), or routed through the full
discrete-event network.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

__all__ = ["ChannelStats", "GradientChannel", "PerfectChannel"]


@dataclass
class ChannelStats:
    """Byte and packet accounting for everything a channel carried."""

    messages: int = 0
    coordinates: int = 0
    packets_total: int = 0
    packets_trimmed: int = 0
    packets_dropped: int = 0
    bytes_sent: int = 0
    bytes_saved_by_trim: int = 0
    encode_seconds: float = 0.0
    decode_seconds: float = 0.0
    # Rounds where the transport surrendered (or the whole message was
    # lost) and the trainer took a degraded step instead of hanging.
    rounds_surrendered: int = 0

    @property
    def trim_fraction(self) -> float:
        """Fraction of data packets that were trimmed."""
        if self.packets_total == 0:
            return 0.0
        return self.packets_trimmed / self.packets_total

    def merge(self, other: "ChannelStats") -> None:
        self.messages += other.messages
        self.coordinates += other.coordinates
        self.packets_total += other.packets_total
        self.packets_trimmed += other.packets_trimmed
        self.packets_dropped += other.packets_dropped
        self.bytes_sent += other.bytes_sent
        self.bytes_saved_by_trim += other.bytes_saved_by_trim
        self.encode_seconds += other.encode_seconds
        self.decode_seconds += other.decode_seconds
        self.rounds_surrendered += other.rounds_surrendered

    def as_dict(self) -> dict:
        return {
            "messages": self.messages,
            "coordinates": self.coordinates,
            "packets_total": self.packets_total,
            "packets_trimmed": self.packets_trimmed,
            "packets_dropped": self.packets_dropped,
            "bytes_sent": self.bytes_sent,
            "bytes_saved_by_trim": self.bytes_saved_by_trim,
            "encode_seconds": self.encode_seconds,
            "decode_seconds": self.decode_seconds,
            "rounds_surrendered": self.rounds_surrendered,
            "trim_fraction": self.trim_fraction,
        }

    def publish(self, label: str) -> None:
        """Mirror the current totals into the metrics registry as gauges.

        Channels mutate these fields directly on the hot path, so the
        registry copy is refreshed on demand (e.g. once per epoch by the
        trainer) instead of per message.
        """
        from ..obs.metrics import get_registry

        registry = get_registry()
        for name, value in self.as_dict().items():
            registry.gauge(
                f"repro_channel_{name}",
                f"ChannelStats.{name}, refreshed by publish()",
                ("channel",),
            ).set(float(value), channel=label)


class GradientChannel:
    """Interface: transfer one flat vector from a worker to its peer."""

    def __init__(self) -> None:
        self.stats = ChannelStats()
        # Live counters: surrender/drop events are rare but operationally
        # critical, so they stream to the registry as they happen instead
        # of waiting for the per-epoch publish().
        from ..obs.metrics import get_registry

        registry = get_registry()
        label = type(self).__name__
        self._m_surrendered = registry.counter(
            "repro_channel_rounds_surrendered_total",
            "rounds the channel gave up on (zero-gradient degraded step)",
            ("channel",),
        ).bind(channel=label)
        self._m_dropped = registry.counter(
            "repro_channel_packets_dropped_total",
            "data packets lost outright on the channel",
            ("channel",),
        ).bind(channel=label)

    def count_surrender(self) -> None:
        """Record one surrendered round (stats + live counter)."""
        self.stats.rounds_surrendered += 1
        self._m_surrendered.inc()

    def count_dropped(self, packets: int) -> None:
        """Record ``packets`` lost data packets (stats + live counter)."""
        if packets:
            self.stats.packets_dropped += packets
            self._m_dropped.inc(packets)

    def transfer(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0, worker: int = 0
    ) -> np.ndarray:
        """Deliver ``flat``; returns what the receiver decodes.

        ``epoch``/``message_id`` derive shared randomness (rotation seeds,
        dither); ``worker`` separates the trim pattern of different
        senders in the same round.
        """
        raise NotImplementedError

    def reset_stats(self) -> None:
        self.stats = ChannelStats()


class PerfectChannel(GradientChannel):
    """Lossless, compression-free delivery (the NCCL-quality baseline)."""

    def transfer(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0, worker: int = 0
    ) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.float64)
        self.stats.messages += 1
        self.stats.coordinates += flat.size
        self.stats.bytes_sent += flat.size * 4  # fp32 on the wire
        return flat.copy()
