"""One entry point per paper figure/table (see DESIGN.md experiment index).

All experiments share the scaled-down training setting calibrated in
EXPERIMENTS.md: a BN-free VGG-style CNN (matching VGG-19's heterogeneous
layer gradient scales, the mechanism behind the sign codec's failure) on
a 50-class synthetic CIFAR-100 stand-in, 2 workers, the paper's SGD
recipe.  Training runs are cached per (codec, trim rate) so Figure 3 and
Figure 4 reuse one sweep.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional

import numpy as np

from ..collectives import AllReduceHook
from ..core import RHTCodec, codec_by_name, nmse
from ..nn import make_dataset, make_vgg
from ..train import (
    DDPTrainer,
    RoundTimeModel,
    TimingConfig,
    TrainConfig,
    TrimChannel,
    measure_codec_throughput,
)
from .harness import ExperimentResult, bench_scale

__all__ = [
    "CODEC_NAMES",
    "trim_rates",
    "train_epochs",
    "training_dataset",
    "run_training",
    "time_model",
    "fig3_tta",
    "fig4_time_to_baseline",
    "fig5_breakdown",
    "t1_transport_drops",
    "t2_codec_nmse",
    "f2_layout",
]

CODEC_NAMES = ("sign", "sq", "sd", "rht")

#: RHT row size for the scaled-down models (the paper's 2^15 exceeds the
#: model size here; see the A3 ablation for the row-size sweep).
RHT_ROW_SIZE = 4096


def trim_rates(scale: Optional[str] = None) -> List[float]:
    """Trim-rate grid: the paper sweeps 0.1 % .. 50 %."""
    scale = scale or bench_scale()
    if scale == "full":
        return [0.001, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5]
    return [0.01, 0.1, 0.5]


def train_epochs(scale: Optional[str] = None) -> int:
    """Scaled-down stand-in for the paper's 150 epochs."""
    scale = scale or bench_scale()
    return 16 if scale == "full" else 8


@lru_cache(maxsize=1)
def training_dataset():
    """The synthetic CIFAR-100 stand-in (see DESIGN.md substitutions)."""
    return make_dataset(
        num_classes=50,
        train_per_class=40,
        test_per_class=10,
        image_size=12,
        noise=2.5,
        seed=0,
    )


def _make_model():
    """BN-free VGG (heterogeneous layer gradient scales, like VGG-19)."""
    return make_vgg(
        "vgg-mini",
        num_classes=50,
        image_size=12,
        batch_norm=False,
        classifier_width=64,
        seed=1,
    )


@lru_cache(maxsize=1)
def time_model() -> RoundTimeModel:
    """Cost model fed with this machine's measured codec throughput."""
    measured = measure_codec_throughput(num_coords=2**16, repeats=2)
    return RoundTimeModel(TimingConfig(), measured)


@lru_cache(maxsize=64)
def run_training(codec_name: Optional[str], trim_rate: float, epochs: int):
    """One cached training run; returns a TrainingHistory."""
    train, test = training_dataset()
    model = _make_model()
    if codec_name is None:
        hook = AllReduceHook()
    else:
        kwargs = {"row_size": RHT_ROW_SIZE} if codec_name == "rht" else {}
        codec = codec_by_name(codec_name, root_seed=3, **kwargs)
        hook = AllReduceHook(TrimChannel(codec, trim_rate, seed=5))
    config = TrainConfig(
        epochs=epochs,
        batch_size=16,
        lr=0.05,
        momentum=0.9,
        step_size=max(2, epochs * 5 // 8),
        gamma=0.2,
        seed=0,
        augment=False,
    )
    trainer = DDPTrainer(
        model,
        train,
        test,
        world_size=2,
        hook=hook,
        config=config,
        time_model=time_model(),
        codec_name=codec_name,
        trim_rate=trim_rate,
    )
    return trainer.train()


# -- Figure 3: TTA curves ------------------------------------------------------


def fig3_tta(scale: Optional[str] = None) -> Dict[float, Dict[str, list]]:
    """Top-1 accuracy vs modeled wall-clock per codec, per trim rate.

    Returns ``{trim_rate: {label: [(seconds, top1), ...]}}`` — one panel
    per trim rate, exactly Figure 3's layout.
    """
    epochs = train_epochs(scale)
    baseline = run_training(None, 0.0, epochs)
    panels: Dict[float, Dict[str, list]] = {}
    for rate in trim_rates(scale):
        panel = {"baseline": baseline.accuracy_curve()}
        for name in CODEC_NAMES:
            panel[name] = run_training(name, rate, epochs).accuracy_curve()
        panels[rate] = panel
    return panels


# -- Figure 4: time-to-baseline-accuracy -----------------------------------------


def fig4_time_to_baseline(scale: Optional[str] = None) -> ExperimentResult:
    """Seconds to reach the baseline's accuracy band, per codec & rate.

    The paper's Figure 4: each codec's time to reach the no-congestion
    NCCL baseline accuracy, as a function of trim rate; "n/a" marks runs
    that never get there (the sign codec at high rates).
    """
    epochs = train_epochs(scale)
    baseline = run_training(None, 0.0, epochs)
    target = 0.9 * baseline.best_top1  # accuracy band, robust to noise
    rows = []
    for rate in trim_rates(scale):
        for name in CODEC_NAMES:
            history = run_training(name, rate, epochs)
            tta = history.time_to_accuracy(target)
            rows.append(
                [
                    f"{rate:.1%}",
                    name,
                    f"{tta:.1f}" if tta is not None else "n/a (never reaches)",
                    f"{history.final_top1:.3f}",
                    f"{history.final_top5:.3f}",
                    "yes" if history.diverged or history.final_top1 < 0.1 else "no",
                ]
            )
    baseline_time = baseline.time_to_accuracy(target)
    notes = (
        f"baseline best top-1 {baseline.best_top1:.3f}; target band "
        f"{target:.3f}; baseline reaches it in {baseline_time:.1f}s "
        f"(modeled wall-clock, {epochs} epochs)"
    )
    return ExperimentResult(
        experiment_id="F4 time-to-baseline-accuracy",
        headers=["trim rate", "codec", "time-to-target (s)", "final top1", "final top5", "failed"],
        rows=rows,
        notes=notes,
    )


# -- Figure 5: per-round time breakdown -------------------------------------------


def fig5_breakdown(num_coords: int = 20_000_000) -> ExperimentResult:
    """Compute / encode / comm breakdown per training round, per codec.

    Paper facts to match in shape: trimmable encoding adds ~42-68 % per
    round; RHT is ~18 % slower than the scalar codecs.
    """
    tm = time_model()
    rows = []
    base = tm.round_time(num_coords, codec_name=None)
    rows.append(
        ["baseline", f"{base.compute_s*1e3:.1f}", "0.0",
         f"{base.comm_s*1e3:.2f}", f"{base.total_s*1e3:.1f}", "1.00"]
    )
    sq_total = None
    for name in CODEC_NAMES:
        rt = tm.round_time(num_coords, codec_name=name)
        if name == "sq":
            sq_total = rt.total_s
        rows.append(
            [
                name,
                f"{rt.compute_s*1e3:.1f}",
                f"{rt.encode_s*1e3:.1f}",
                f"{rt.comm_s*1e3:.2f}",
                f"{rt.total_s*1e3:.1f}",
                f"{rt.total_s / base.total_s:.2f}",
            ]
        )
    rht_total = tm.round_time(num_coords, codec_name="rht").total_s
    notes = (
        f"encode overhead vs baseline: sq {sq_total / base.total_s - 1:.0%}, "
        f"rht {rht_total / base.total_s - 1:.0%} "
        f"(paper: +42-68%); rht vs scalar: {rht_total / sq_total - 1:+.0%} "
        f"(paper: ~+18%); measured ns/coord: "
        + ", ".join(f"{k}={v:.1f}" for k, v in tm.codec_ns_per_coord.items())
    )
    return ExperimentResult(
        experiment_id="F5 per-round time breakdown",
        headers=["codec", "compute ms", "encode ms", "comm ms", "total ms", "vs baseline"],
        rows=rows,
        notes=notes,
    )


# -- T1: transport drop tolerance (Section 4.4 in-text claims) -----------------------


def t1_transport_drops(scale: Optional[str] = None) -> ExperimentResult:
    """Go-back-N FCT blow-up vs drop rate; trimming transport stays flat.

    Reproduces the Section 4.4 in-text numbers on the discrete-event
    simulator: the baseline tolerates ~0.2 % drops, collapses at 1-2 %;
    the trimming transport completes with zero retransmissions even when
    half its packets are trimmed.
    """
    from ..net import FlowLog, dumbbell
    from ..transport import (
        AIMD,
        FixedWindow,
        GoBackNReceiver,
        GoBackNSender,
        TrimmingReceiver,
        TrimmingSender,
        segment_bytes,
    )
    from ..core import packetize

    scale = scale or bench_scale()
    message_bytes = 2_000_000 if scale == "quick" else 8_000_000
    drop_grid = [0.0, 0.002, 0.01, 0.02] if scale == "quick" else [
        0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
    ]
    rows = []
    base_fct = None
    for drop in drop_grid:
        net = dumbbell(pairs=1)
        net.set_impairment("s0", "s1", drop_prob=drop)
        log = FlowLog()
        sender = GoBackNSender(
            net.hosts["tx0"], flow_id=1, cc=AIMD(initial_window=32),
            log=log, rto_min=1e-3,
        )
        GoBackNReceiver(net.hosts["rx0"], flow_id=1)
        sender.send_message(segment_bytes("tx0", "rx0", message_bytes, flow_id=1))
        net.sim.run(until=30.0)
        fct = log.max_fct()
        if drop <= 0.0:
            base_fct = fct
        rows.append(
            [
                "go-back-N",
                f"{drop:.2%}",
                f"{fct*1e3:.2f}",
                f"{fct / base_fct:.1f}x",
                log.total_retransmissions(),
                "-",
            ]
        )
    # Trimming transport under heavy trimming.
    for trim in [0.0, 0.2, 0.5]:
        net = dumbbell(pairs=1)
        net.set_impairment("s0", "s1", trim_prob=trim)
        log = FlowLog()
        x = np.random.default_rng(0).standard_normal(message_bytes // 4)
        codec = RHTCodec(root_seed=1, row_size=RHT_ROW_SIZE)
        sender = TrimmingSender(net.hosts["tx0"], flow_id=2, cc=FixedWindow(64), log=log)
        TrimmingReceiver(net.hosts["rx0"], flow_id=2)
        sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=2))
        net.sim.run(until=30.0)
        rows.append(
            [
                "trimming",
                f"trim {trim:.0%}",
                f"{log.max_fct()*1e3:.2f}",
                f"{log.max_fct() / base_fct:.1f}x",
                log.total_retransmissions(),
                log.total_trimmed(),
            ]
        )
    return ExperimentResult(
        experiment_id="T1 transport drop tolerance (Section 4.4)",
        headers=["transport", "impairment", "FCT ms", "vs clean GBN", "retransmissions", "trimmed"],
        rows=rows,
        notes="paper: baseline tolerates 0.15-0.25% drops; 1-2% -> 5-10x or timeouts",
    )


# -- T2: codec reconstruction quality ---------------------------------------------


def t2_codec_nmse(num_coords: int = 2**16) -> ExperimentResult:
    """NMSE vs trim rate per codec, Gaussian and heavy-tailed inputs.

    The quality mechanism behind Figure 3: RHT's rotation makes its
    1-bit decode distribution-independent, while the scalar codecs
    degrade badly on heavy-tailed gradients (which real training has).
    """
    rng = np.random.default_rng(0)
    inputs = {
        "gaussian": rng.standard_normal(num_coords),
        "heavy-tail": rng.standard_t(df=2, size=num_coords),
    }
    rows = []
    for input_name, x in inputs.items():
        for rate in [0.02, 0.1, 0.5, 1.0]:
            row = [input_name, f"{rate:.0%}"]
            for name in CODEC_NAMES:
                kwargs = {"row_size": RHT_ROW_SIZE} if name == "rht" else {}
                codec = codec_by_name(name, root_seed=1, **kwargs)
                enc = codec.encode(x, epoch=0, message_id=1)
                mask = np.random.default_rng(2).random(enc.length) < rate
                row.append(f"{nmse(x, codec.decode(enc, trimmed=mask)):.3f}")
            rows.append(row)
    return ExperimentResult(
        experiment_id="T2 codec NMSE vs trim rate",
        headers=["input", "trim rate", *CODEC_NAMES],
        rows=rows,
        notes="lower is better; rht should dominate at high rates on heavy tails",
    )


# -- F2: Section 2 worked layout example -------------------------------------------


def f2_layout() -> ExperimentResult:
    """The Section 2 arithmetic: n≈365 coords, trim at 87 B, 94.2 %."""
    from ..core import TrimmableLayout, paper_worked_example

    paper = paper_worked_example()
    ours = TrimmableLayout()
    jumbo = TrimmableLayout(mtu=9000)
    rows = [
        ["paper (42 B hdr only)", paper.mtu, paper.coords, paper.trim_threshold,
         f"{paper.compression_ratio:.1%}"],
        ["self-describing hdr", ours.mtu, ours.coords, ours.trim_threshold,
         f"{ours.compression_ratio:.1%}"],
        ["jumbo frames", jumbo.mtu, jumbo.coords, jumbo.trim_threshold,
         f"{jumbo.compression_ratio:.1%}"],
    ]
    return ExperimentResult(
        experiment_id="F2 packet layout worked example (Section 2)",
        headers=["layout", "MTU", "coords/pkt", "trim at (B)", "compression"],
        rows=rows,
        notes="paper's numbers: n=365, trim at 87 B, 94.2% compression",
    )
