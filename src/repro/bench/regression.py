"""Benchmark-regression comparison against a checked-in baseline.

The benchmarks conftest archives every machine-readable
:func:`repro.bench.record_result` record to
``benchmarks/results_latest.json``; this module compares such a run
against the committed baseline (``benchmarks/BENCH_results.json``) and
flags throughput regressions.  ``repro-bench --compare`` (and the CI
``perf-smoke`` job) is a thin wrapper around :func:`compare_files`.

Only *throughput-style* metrics gate: a numeric metric whose key ends in
``_per_s`` regresses when the current value drops more than ``threshold``
(default 30 %) below the baseline.  Everything else in the records is
informational.  Comparison covers the experiments present in both files;
a run that shares no experiment with the baseline fails loudly rather
than passing vacuously.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

__all__ = [
    "DEFAULT_THRESHOLD",
    "THROUGHPUT_SUFFIX",
    "MetricComparison",
    "load_results",
    "compare_results",
    "compare_files",
    "format_comparisons",
    "update_baseline",
]

#: Maximum tolerated fractional throughput drop before a metric regresses.
DEFAULT_THRESHOLD = 0.30

#: Metric-key suffix marking higher-is-better throughput numbers.
THROUGHPUT_SUFFIX = "_per_s"

Record = Dict[str, object]
PathLike = Union[str, Path]


@dataclass(frozen=True)
class MetricComparison:
    """One throughput metric measured against its baseline."""

    experiment_id: str
    metric: str
    baseline: float
    current: float
    regressed: bool

    @property
    def ratio(self) -> float:
        """current / baseline (inf when the baseline is zero)."""
        return self.current / self.baseline if self.baseline else float("inf")


def load_results(path: PathLike) -> Dict[str, Record]:
    """Load a ``BENCH_results.json``-style file keyed by experiment id."""
    records = json.loads(Path(path).read_text())
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a JSON list of result records")
    by_id: Dict[str, Record] = {}
    for record in records:
        if not isinstance(record, dict) or "experiment_id" not in record:
            raise ValueError(f"{path}: record without experiment_id: {record!r}")
        by_id[str(record["experiment_id"])] = record
    return by_id


def _throughput_metrics(record: Mapping[str, object]) -> Dict[str, float]:
    return {
        key: float(value)  # type: ignore[arg-type]
        for key, value in record.items()
        if key.endswith(THROUGHPUT_SUFFIX) and isinstance(value, (int, float))
    }


def compare_results(
    current: Mapping[str, Record],
    baseline: Mapping[str, Record],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[MetricComparison]:
    """Compare throughput metrics of the experiments present in both runs.

    Returns one :class:`MetricComparison` per shared ``*_per_s`` metric,
    sorted by (experiment, metric).  Raises ``ValueError`` when the runs
    share no experiment — comparing nothing must not look like a pass.
    """
    if not 0.0 <= threshold < 1.0:
        raise ValueError(f"threshold must be in [0, 1), got {threshold}")
    shared = sorted(set(current) & set(baseline))
    if not shared:
        raise ValueError(
            "no experiments in common between current results and baseline; "
            f"current={sorted(current)} baseline={sorted(baseline)}"
        )
    comparisons: List[MetricComparison] = []
    for experiment_id in shared:
        base_metrics = _throughput_metrics(baseline[experiment_id])
        cur_metrics = _throughput_metrics(current[experiment_id])
        for metric in sorted(set(base_metrics) & set(cur_metrics)):
            base, cur = base_metrics[metric], cur_metrics[metric]
            regressed = base > 0 and cur < base * (1.0 - threshold)
            comparisons.append(
                MetricComparison(
                    experiment_id=experiment_id,
                    metric=metric,
                    baseline=base,
                    current=cur,
                    regressed=regressed,
                )
            )
    return comparisons


def compare_files(
    current_path: PathLike,
    baseline_path: PathLike,
    threshold: float = DEFAULT_THRESHOLD,
) -> List[MetricComparison]:
    """File-level convenience wrapper around :func:`compare_results`."""
    return compare_results(
        load_results(current_path), load_results(baseline_path), threshold
    )


def format_comparisons(comparisons: Sequence[MetricComparison]) -> str:
    """Render comparisons as the harness's fixed-width ASCII table."""
    from .harness import format_table

    rows = [
        [
            comp.experiment_id,
            comp.metric,
            f"{comp.baseline:,.0f}",
            f"{comp.current:,.0f}",
            f"{comp.ratio:.2f}x",
            "REGRESSED" if comp.regressed else "ok",
        ]
        for comp in comparisons
    ]
    return format_table(
        ["experiment", "metric", "baseline", "current", "ratio", "verdict"],
        rows,
        title="benchmark regression check",
    )


def update_baseline(baseline_path: PathLike, current: Mapping[str, Record]) -> None:
    """Merge ``current`` records into the baseline file.

    Records replace same-id baseline entries and new experiments are
    appended; baseline experiments absent from the current run (e.g. the
    figure reproductions, when only the perf smoke ran) are preserved.
    """
    path = Path(baseline_path)
    merged = load_results(path) if path.exists() else {}
    merged.update(current)
    ordered = [merged[key] for key in sorted(merged)]
    path.write_text(json.dumps(ordered, indent=2, sort_keys=True) + "\n")
