"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Regenerates any paper figure/table without pytest::

    python -m repro.bench f2            # Section 2 layout example
    python -m repro.bench t2            # codec NMSE vs trim rate
    python -m repro.bench fig5          # per-round time breakdown
    python -m repro.bench t1            # transport drop tolerance
    python -m repro.bench fig3 --scale full
    python -m repro.bench fig4
    python -m repro.bench all           # everything (slow)

Pass ``--trace run.jsonl`` (or set ``REPRO_OBS_TRACE``) to record the
gradient-path trace and append the observability report.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

from .harness import ascii_chart, emit_obs_report, format_table, obs_from_env

_log = logging.getLogger("repro.bench.cli")


def _print_fig3(scale: str) -> None:
    from .experiments import fig3_tta

    panels = fig3_tta(scale)
    for rate, series in sorted(panels.items()):
        _log.info("\n[F3] top-1 accuracy vs modeled wall-clock, trim rate %.1f%%", rate * 100)
        _log.info("%s", ascii_chart(series, x_label="seconds", y_label="top-1"))
        rows = [
            [label, f"{pts[-1][0]:.1f}", f"{pts[-1][1]:.3f}"]
            for label, pts in series.items()
        ]
        _log.info("%s", format_table(["codec", "end time (s)", "final top-1"], rows))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=["f2", "t2", "fig5", "t1", "fig3", "fig4", "all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full"],
        default=None,
        help="sweep size (default: REPRO_BENCH_SCALE or 'quick')",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a gradient-path JSONL trace here and append the run report",
    )
    args = parser.parse_args(argv)
    if args.scale:
        os.environ["REPRO_BENCH_SCALE"] = args.scale
    scale = args.scale or os.environ.get("REPRO_BENCH_SCALE", "quick")

    from .. import configure_logging

    configure_logging()
    if args.trace:
        os.environ["REPRO_OBS_TRACE"] = args.trace
    tracer = obs_from_env()

    from .experiments import (
        f2_layout,
        fig4_time_to_baseline,
        fig5_breakdown,
        t1_transport_drops,
        t2_codec_nmse,
    )

    simple = {
        "f2": f2_layout,
        "t2": t2_codec_nmse,
        "fig5": fig5_breakdown,
        "t1": lambda: t1_transport_drops(scale),
        "fig4": lambda: fig4_time_to_baseline(scale),
    }
    wanted = (
        ["f2", "t2", "fig5", "t1", "fig3", "fig4"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in wanted:
        if name == "fig3":
            _print_fig3(scale)
        else:
            _log.info("\n%s", simple[name]().render())
    if tracer is not None:
        emit_obs_report(tracer, title=f"bench {args.experiment}")
        tracer.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
