"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Regenerates any paper figure/table without pytest::

    python -m repro.bench f2            # Section 2 layout example
    python -m repro.bench t2            # codec NMSE vs trim rate
    python -m repro.bench fig5          # per-round time breakdown
    python -m repro.bench t1            # transport drop tolerance
    python -m repro.bench fig3 --scale full
    python -m repro.bench fig4
    python -m repro.bench all           # everything (slow)

Pass ``--trace run.jsonl`` (or set ``REPRO_OBS_TRACE``) to record the
gradient-path trace and append the observability report.

``--compare`` switches to benchmark-regression mode: the latest archived
results (``benchmarks/results_latest.json``, written by any benchmarks
pytest run) are checked against the committed baseline
(``benchmarks/BENCH_results.json``); any throughput metric more than
``--threshold`` (default 30 %) below baseline fails with exit code 1::

    python -m repro.bench --compare
    python -m repro.bench --compare --threshold 0.5
    python -m repro.bench --compare --update-baseline   # bless current run

``--profile-sim`` runs the k=4 fat-tree cluster benchmark under
:class:`~repro.obs.profile.SimProfiler` and prints the per-stage
wall/modeled time table — the first stop when the simulator gets slow::

    python -m repro.bench --profile-sim
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

from .harness import ascii_chart, emit_obs_report, format_table, obs_from_env
from .regression import (
    DEFAULT_THRESHOLD,
    compare_results,
    format_comparisons,
    load_results,
    update_baseline,
)

_log = logging.getLogger("repro.bench.cli")


def _print_fig3(scale: str) -> None:
    from .experiments import fig3_tta

    panels = fig3_tta(scale)
    for rate, series in sorted(panels.items()):
        _log.info("\n[F3] top-1 accuracy vs modeled wall-clock, trim rate %.1f%%", rate * 100)
        _log.info("%s", ascii_chart(series, x_label="seconds", y_label="top-1"))
        rows = [
            [label, f"{pts[-1][0]:.1f}", f"{pts[-1][1]:.3f}"]
            for label, pts in series.items()
        ]
        _log.info("%s", format_table(["codec", "end time (s)", "final top-1"], rows))


def _run_compare(args: argparse.Namespace) -> int:
    """--compare mode: gate the latest benchmark run against the baseline."""
    from .. import configure_logging

    configure_logging()
    try:
        current = load_results(args.current)
        baseline = load_results(args.baseline)
        comparisons = compare_results(current, baseline, threshold=args.threshold)
    except (OSError, ValueError) as exc:
        _log.error("benchmark comparison failed: %s", exc)
        return 2
    _log.info("\n%s", format_comparisons(comparisons))
    regressions = [comp for comp in comparisons if comp.regressed]
    if args.update_baseline:
        update_baseline(args.baseline, current)
        _log.info("baseline %s updated with %d record(s)", args.baseline, len(current))
        return 0
    if regressions:
        _log.error(
            "%d metric(s) regressed more than %.0f%% below baseline",
            len(regressions),
            args.threshold * 100,
        )
        return 1
    _log.info(
        "all %d throughput metric(s) within %.0f%% of baseline",
        len(comparisons),
        args.threshold * 100,
    )
    return 0


def _run_profile_sim(args: argparse.Namespace) -> int:
    """--profile-sim: the fat-tree benchmark fabric under SimProfiler."""
    from time import perf_counter

    from .. import configure_logging
    from ..net.crosstraffic import CROSS_TRAFFIC_FLOW_BASE, OnOffFlow
    from ..net.topology import fat_tree
    from ..obs.profile import SimProfiler

    configure_logging()
    # Mirrors benchmarks/test_fattree_sim.py: a k=4 fat-tree with eight
    # on/off tenants crossing pods, drained for a fixed simulated window.
    pairs = [
        ("h0_0_0", "h2_1_1"), ("h0_0_1", "h3_0_0"),
        ("h0_1_0", "h2_0_1"), ("h1_0_0", "h3_1_1"),
        ("h1_1_1", "h2_0_0"), ("h2_1_0", "h0_0_1"),
        ("h3_0_1", "h1_1_0"), ("h3_1_0", "h0_1_1"),
    ]
    net = fat_tree(k=4, rate_bps=10e9, ecmp=True, ecmp_seed=3, host_burst=8)
    for index, (src, dst) in enumerate(pairs):
        OnOffFlow(
            net.sim,
            net.hosts[src],
            dst,
            rate_bps=2.5e9,
            burst_s=200e-6,
            idle_s=50e-6,
            seed=index,
            flow_id=CROSS_TRAFFIC_FLOW_BASE + 900_000 + index,
            stop_at=args.window_s,
        ).start()
    profiler = SimProfiler()
    profiler.install(net.sim)
    start = perf_counter()
    net.sim.run(until=args.window_s)
    wall_s = perf_counter() - start
    profiler.uninstall(net.sim)
    rows = [
        [
            row["stage"],
            f"{row['events']:,}",
            f"{row['wall_s'] * 1e3:.2f}",
            f"{row['wall_share'] * 100:.1f}%",
            f"{row['modeled_s'] * 1e6:.1f}",
            f"{row['modeled_share'] * 100:.1f}%",
        ]
        for row in profiler.report()
    ]
    _log.info(
        "\nfat-tree k=4 (ecmp, host_burst=8, 8 tenants): %d events in "
        "%.4fs wall (%.3fms simulated, %.0f events/s)",
        net.sim.events_processed,
        wall_s,
        net.sim.now * 1e3,
        net.sim.events_processed / wall_s if wall_s else 0.0,
    )
    _log.info(
        "%s",
        format_table(
            ["stage", "events", "wall (ms)", "wall %", "modeled (us)", "modeled %"],
            rows,
        ),
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=["f2", "t2", "fig5", "t1", "fig3", "fig4", "all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full"],
        default=None,
        help="sweep size (default: REPRO_BENCH_SCALE or 'quick')",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a gradient-path JSONL trace here and append the run report",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare benchmarks/results_latest.json against the checked-in baseline",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_results.json",
        metavar="PATH",
        help="baseline results file (default: %(default)s)",
    )
    parser.add_argument(
        "--current",
        default="benchmarks/results_latest.json",
        metavar="PATH",
        help="current results file to compare (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        metavar="FRACTION",
        help="tolerated throughput drop before failing (default: %(default)s)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --compare: merge the current results into the baseline file",
    )
    parser.add_argument(
        "--profile-sim",
        action="store_true",
        help="profile the fat-tree cluster benchmark per pipeline stage",
    )
    parser.add_argument(
        "--window-s",
        type=float,
        default=5e-3,
        metavar="SECONDS",
        help="with --profile-sim: simulated window to drain (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.compare:
        return _run_compare(args)
    if args.profile_sim:
        return _run_profile_sim(args)
    if args.experiment is None:
        parser.error("an experiment is required unless --compare or --profile-sim is given")
    if args.scale:
        os.environ["REPRO_BENCH_SCALE"] = args.scale
    scale = args.scale or os.environ.get("REPRO_BENCH_SCALE", "quick")

    from .. import configure_logging

    configure_logging()
    if args.trace:
        os.environ["REPRO_OBS_TRACE"] = args.trace
    tracer = obs_from_env()

    from .experiments import (
        f2_layout,
        fig4_time_to_baseline,
        fig5_breakdown,
        t1_transport_drops,
        t2_codec_nmse,
    )

    simple = {
        "f2": f2_layout,
        "t2": t2_codec_nmse,
        "fig5": fig5_breakdown,
        "t1": lambda: t1_transport_drops(scale),
        "fig4": lambda: fig4_time_to_baseline(scale),
    }
    wanted = (
        ["f2", "t2", "fig5", "t1", "fig3", "fig4"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in wanted:
        if name == "fig3":
            _print_fig3(scale)
        else:
            _log.info("\n%s", simple[name]().render())
    if tracer is not None:
        emit_obs_report(tracer, title=f"bench {args.experiment}")
        tracer.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
