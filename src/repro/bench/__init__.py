"""Benchmark harness and per-figure experiment entry points."""

from .experiments import (
    CODEC_NAMES,
    f2_layout,
    fig3_tta,
    fig4_time_to_baseline,
    fig5_breakdown,
    run_training,
    t1_transport_drops,
    t2_codec_nmse,
    time_model,
    train_epochs,
    training_dataset,
    trim_rates,
)
from .harness import (
    ExperimentResult,
    ascii_chart,
    bench_scale,
    emit,
    format_table,
    record_result,
)

__all__ = [
    "CODEC_NAMES",
    "f2_layout",
    "fig3_tta",
    "fig4_time_to_baseline",
    "fig5_breakdown",
    "run_training",
    "t1_transport_drops",
    "t2_codec_nmse",
    "time_model",
    "train_epochs",
    "training_dataset",
    "trim_rates",
    "ExperimentResult",
    "ascii_chart",
    "bench_scale",
    "emit",
    "format_table",
    "record_result",
]
