"""Benchmark harness utilities: scale control, tables, ASCII series.

Every benchmark prints the same rows/series the paper's figures report,
through :func:`emit` (which bypasses pytest's capture so the output
lands in the terminal / tee file).  ``REPRO_BENCH_SCALE=full`` widens
sweeps and lengthens training to paper-like grids; the default ``quick``
profile keeps the whole suite to a few minutes while preserving every
qualitative shape.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.export import build_report
from ..obs.metrics import get_registry
from ..obs.trace import Tracer, get_tracer, trace_to

__all__ = [
    "bench_scale",
    "emit",
    "format_table",
    "ascii_chart",
    "ExperimentResult",
    "obs_from_env",
    "emit_obs_report",
    "record_result",
]


def bench_scale() -> str:
    """``quick`` (default) or ``full``, from REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if scale not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be 'quick' or 'full', got {scale!r}")
    return scale


#: Every emitted line, in order — the benchmarks' conftest replays this
#: buffer in the terminal summary (pytest captures stdout at the fd
#: level, so direct writes from inside a test would be swallowed).
EMITTED: List[str] = []


#: Machine-readable companion to EMITTED: every rendered
#: :class:`ExperimentResult` plus any ad-hoc :func:`record_result` call,
#: archived by the benchmarks conftest as ``BENCH_results.json`` next to
#: ``results_latest.txt``.
RESULTS: List[Dict] = []


def record_result(experiment_id: str, metrics: Dict) -> None:
    """Record one machine-readable result record for ``BENCH_results.json``.

    ``metrics`` is any JSON-able mapping (numpy scalars are coerced).
    :meth:`ExperimentResult.render` calls this automatically, so
    table-based benchmarks need no extra plumbing; free-form benchmarks
    can call it directly alongside :func:`emit`.
    """
    record = {"experiment_id": experiment_id}
    for key, value in metrics.items():
        record[str(key)] = _json_safe_tree(value)
    RESULTS.append(record)


def _json_safe_tree(value):
    if isinstance(value, dict):
        return {str(k): _json_safe_tree(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe_tree(v) for v in value]
    return _json_safe(value)


def emit(text: str) -> None:
    """Record a result block and best-effort print it immediately."""
    EMITTED.append(text)
    try:
        sys.__stdout__.write(text + "\n")
        sys.__stdout__.flush()
    except (OSError, ValueError):  # no real stdout (rare CI setups)
        pass


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: Optional[str] = None
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def obs_from_env() -> Optional[Tracer]:
    """Enable gradient-path tracing when ``REPRO_OBS_TRACE`` names a file.

    Benchmarks call this once at startup; it returns the tracer (so the
    caller can close/report it) or None when the variable is unset.
    """
    path = os.environ.get("REPRO_OBS_TRACE")
    if not path:
        return None
    return trace_to(path)


def emit_obs_report(tracer: Optional[Tracer] = None, title: str = "bench run") -> None:
    """Emit the observability report for ``tracer`` (default: the global one).

    A disabled or empty tracer emits nothing, so benchmarks can call
    this unconditionally.
    """
    tracer = tracer or get_tracer()
    if not tracer.enabled or not tracer.events:
        return
    events = [e.to_json() for e in tracer.events]
    emit("\n" + build_report(events, registry=get_registry(), title=title))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def ascii_chart(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 72,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot several (x, y) series as an ASCII chart (one glyph each)."""
    glyphs = "ox+*#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs, ys = zip(*points)
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (label, pts) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph
    lines = [f"{y_label} ({y_lo:.3g} .. {y_hi:.3g})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:.3g} .. {x_hi:.3g}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={label}" for i, label in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """A labelled bundle of table rows, for EXPERIMENTS.md extraction."""

    experiment_id: str
    headers: List[str]
    rows: List[List]
    notes: str = ""

    def render(self) -> str:
        record_result(
            self.experiment_id,
            {"headers": list(self.headers), "rows": self.rows, "notes": self.notes},
        )
        table = format_table(self.headers, self.rows, title=f"[{self.experiment_id}]")
        return table + (f"\n{self.notes}" if self.notes else "")

    def to_json(self) -> str:
        """Machine-readable form (archived next to the text tables)."""
        import json

        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "headers": list(self.headers),
                "rows": [[_json_safe(c) for c in row] for row in self.rows],
                "notes": self.notes,
            }
        )


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:
        return value.item()  # numpy scalars
    except AttributeError:
        return str(value)
