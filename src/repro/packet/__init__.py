"""Wire substrate: bit packing, headers, packets, and trim policies."""

from .bitpack import (
    PackedSegments,
    pack_bits,
    pack_segments,
    pack_signs,
    packed_size,
    unpack_batch,
    unpack_bits,
    unpack_signs,
)
from .header import (
    ETHERNET_HEADER_BYTES,
    FLAG_INT,
    FLAG_METADATA,
    FLAG_TRIMMED,
    GRADIENT_HEADER_BYTES,
    IPV4_HEADER_BYTES,
    UDP_HEADER_BYTES,
    WIRE_HEADER_BYTES,
    GradientHeader,
)
from .packet import DEFAULT_MTU_BYTES, MAX_MTU_BYTES, Packet
from .trim import (
    MultiLevelTrim,
    NeverTrim,
    SingleLevelTrim,
    TrimDecision,
    TrimPolicy,
    trim_to_bits,
)

__all__ = [
    "PackedSegments",
    "pack_bits",
    "pack_segments",
    "pack_signs",
    "packed_size",
    "unpack_batch",
    "unpack_bits",
    "unpack_signs",
    "ETHERNET_HEADER_BYTES",
    "FLAG_INT",
    "FLAG_METADATA",
    "FLAG_TRIMMED",
    "GRADIENT_HEADER_BYTES",
    "IPV4_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "WIRE_HEADER_BYTES",
    "GradientHeader",
    "DEFAULT_MTU_BYTES",
    "MAX_MTU_BYTES",
    "Packet",
    "MultiLevelTrim",
    "NeverTrim",
    "SingleLevelTrim",
    "TrimDecision",
    "TrimPolicy",
    "trim_to_bits",
]
