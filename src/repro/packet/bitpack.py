"""Bit-level packing for P-bit gradient heads.

The trimmable layout (paper Section 2) stores one ``P``-bit head per
coordinate densely at the front of the payload.  This module packs and
unpacks arrays of small unsigned integers to/from bytes, MSB-first within
each byte (network order), for any ``1 <= bits <= 32``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "packed_size",
    "pack_bits",
    "unpack_bits",
    "pack_signs",
    "unpack_signs",
]


def packed_size(count: int, bits: int) -> int:
    """Bytes needed to store ``count`` values of ``bits`` bits each."""
    _check_bits(bits)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return -(-count * bits // 8)  # ceil(count*bits / 8)


def _check_bits(bits: int) -> None:
    if not 1 <= bits <= 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")


def pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Pack unsigned integers of width ``bits`` into bytes, MSB-first.

    Values must already be in ``[0, 2**bits)``; out-of-range input raises.
    """
    _check_bits(bits)
    values = np.asarray(values, dtype=np.uint64).reshape(-1)
    if values.size and int(values.max()) >= (1 << bits):
        raise ValueError(f"value {int(values.max())} does not fit in {bits} bits")
    if values.size == 0:
        return b""
    # Expand each value into its `bits` bits (MSB first), then let numpy
    # pack the flat bit-stream into bytes.
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    bitstream = ((values[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bitstream.reshape(-1)).tobytes()


def unpack_bits(data: bytes, count: int, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns ``count`` values as uint32."""
    _check_bits(bits)
    need = packed_size(count, bits)
    if len(data) < need:
        raise ValueError(f"need {need} bytes to unpack {count}x{bits}-bit, got {len(data)}")
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    bitstream = np.unpackbits(np.frombuffer(data[:need], dtype=np.uint8))
    bitstream = bitstream[: count * bits].reshape(count, bits).astype(np.uint64)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    values = (bitstream << shifts).sum(axis=1)
    return values.astype(np.uint32)


def pack_signs(signs: np.ndarray) -> bytes:
    """Pack a ±1 (or boolean) array as 1 bit per entry (+1 -> 1, -1 -> 0)."""
    arr = np.asarray(signs).reshape(-1)
    bits = (arr > 0).astype(np.uint8)
    return pack_bits(bits, 1)


def unpack_signs(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_signs`; returns a float64 ±1 array."""
    bits = unpack_bits(data, count, 1)
    return bits.astype(np.float64) * 2.0 - 1.0
