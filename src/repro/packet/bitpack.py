"""Bit-level packing for P-bit gradient heads.

The trimmable layout (paper Section 2) stores one ``P``-bit head per
coordinate densely at the front of the payload.  This module packs and
unpacks arrays of small unsigned integers to/from bytes, MSB-first within
each byte (network order), for any ``1 <= bits <= 32``.

Two layers are exposed:

* the scalar-plane API (:func:`pack_bits` / :func:`unpack_bits`) packs one
  flat array.  Widths ``1``, ``8``, ``16`` and ``32`` take dedicated fast
  paths (``np.packbits`` on the raw values, or big-endian byte/word views)
  instead of the generic per-bit expansion, which costs an 8–64×
  intermediate blowup.
* the whole-message API (:func:`pack_segments` / :func:`unpack_batch`)
  packs or unpacks *every packet of a message in one numpy call*.
  :func:`pack_segments` splits a plane into byte-aligned per-packet
  segments inside one contiguous buffer so the packetizer can slice
  zero-copy payload views; :func:`unpack_batch` inverts a batch of
  same-geometry packet bodies at once.

The generic per-bit path is kept (``_pack_bits_generic`` /
``_unpack_bits_generic``) both as the fallback for odd widths and as the
reference implementation the property tests compare the fast paths
against, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

__all__ = [
    "packed_size",
    "pack_bits",
    "unpack_bits",
    "pack_signs",
    "unpack_signs",
    "PackedSegments",
    "pack_segments",
    "unpack_batch",
]

#: Bit widths with a dedicated vectorized fast path.
FAST_WIDTHS = (1, 8, 16, 32)

ByteLike = Union[bytes, bytearray, memoryview]


def packed_size(count: int, bits: int) -> int:
    """Bytes needed to store ``count`` values of ``bits`` bits each."""
    _check_bits(bits)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return -(-count * bits // 8)  # ceil(count*bits / 8)


def _check_bits(bits: int) -> None:
    if not 1 <= bits <= 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")


def _check_range(values: np.ndarray, bits: int) -> None:
    if values.size and int(values.max()) >= (1 << bits):
        raise ValueError(f"value {int(values.max())} does not fit in {bits} bits")


# -- batched row kernels ------------------------------------------------------
#
# Everything below funnels through these two: pack/unpack a (rows, count)
# matrix where every row is packed independently to a byte boundary.  A
# single flat array is the rows=1 case; a message's packets are the rows.


def _pack_rows(values: np.ndarray, bits: int) -> np.ndarray:
    """Pack a ``(rows, count)`` uint matrix row-by-row into packed bytes.

    Returns a ``(rows, packed_size(count, bits))`` uint8 matrix; each row
    is byte-aligned independently (trailing pad bits are zero).
    """
    rows, count = values.shape
    if count == 0:
        return np.zeros((rows, 0), dtype=np.uint8)
    if bits == 1:
        return np.packbits(values.astype(np.uint8), axis=1)
    if bits == 8:
        return values.astype(np.uint8)
    if bits == 16:
        return np.ascontiguousarray(values.astype(">u2")).view(np.uint8).reshape(rows, 2 * count)
    if bits == 32:
        return np.ascontiguousarray(values.astype(">u4")).view(np.uint8).reshape(rows, 4 * count)
    # Generic width: stay in the byte domain.  View each value as 4
    # big-endian bytes, explode to a (rows, count, 32) bit matrix with one
    # C-level unpackbits, keep each value's low `bits` bits (MSB-first),
    # and re-pack the concatenated stream.  Peak intermediate is 32 bits
    # per value — the uint64 shift-and-mask formulation costs 8x more and
    # falls out of cache for whole-message inputs.
    be = np.ascontiguousarray(values.astype(">u4")).view(np.uint8).reshape(rows, count, 4)
    slots = np.unpackbits(be, axis=2)
    stream = np.ascontiguousarray(slots[:, :, 32 - bits :])
    return np.packbits(stream.reshape(rows, count * bits), axis=1)


def _unpack_rows(data: np.ndarray, count: int, bits: int) -> np.ndarray:
    """Inverse of :func:`_pack_rows`: ``(rows, bytes)`` -> ``(rows, count)``.

    ``data`` may carry trailing bytes beyond the packed width; they are
    ignored.  Returns uint32 values.
    """
    rows = data.shape[0]
    if count == 0:
        return np.zeros((rows, 0), dtype=np.uint32)
    if bits == 1:
        return np.unpackbits(data, axis=1)[:, :count].astype(np.uint32)
    if bits == 8:
        return data[:, :count].astype(np.uint32)
    if bits == 16:
        raw = np.ascontiguousarray(data[:, : 2 * count])
        return raw.view(">u2").reshape(rows, count).astype(np.uint32)
    if bits == 32:
        raw = np.ascontiguousarray(data[:, : 4 * count])
        return raw.view(">u4").reshape(rows, count).astype(np.uint32)
    # Generic width, inverse of the byte-domain packer: left-pad each
    # value's bit run into a 32-bit slot, re-pack to 4 big-endian bytes
    # per value, and view as uint32 — no per-bit integer arithmetic.
    bitstream = np.unpackbits(np.ascontiguousarray(data[:, : packed_size(count, bits)]), axis=1)
    slots = np.zeros((rows, count, 32), dtype=np.uint8)
    slots[:, :, 32 - bits :] = bitstream[:, : count * bits].reshape(rows, count, bits)
    by = np.packbits(slots.reshape(rows, count * 32), axis=1)
    return by.view(">u4").reshape(rows, count).astype(np.uint32)


# -- scalar-plane API ---------------------------------------------------------


def pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Pack unsigned integers of width ``bits`` into bytes, MSB-first.

    Values must already be in ``[0, 2**bits)``; out-of-range input raises.
    """
    _check_bits(bits)
    values = np.asarray(values, dtype=np.uint64).reshape(-1)
    _check_range(values, bits)
    if values.size == 0:
        return b""
    return _pack_rows(values.reshape(1, -1), bits).tobytes()


def unpack_bits(data: ByteLike, count: int, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns ``count`` values as uint32."""
    _check_bits(bits)
    need = packed_size(count, bits)
    if len(data) < need:
        raise ValueError(f"need {need} bytes to unpack {count}x{bits}-bit, got {len(data)}")
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    raw = np.frombuffer(data, dtype=np.uint8, count=need).reshape(1, need)
    return _unpack_rows(raw, count, bits)[0]


def _pack_bits_generic(values: np.ndarray, bits: int) -> bytes:
    """Reference per-bit-expansion packer (any width; slow but simple)."""
    _check_bits(bits)
    values = np.asarray(values, dtype=np.uint64).reshape(-1)
    _check_range(values, bits)
    if values.size == 0:
        return b""
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    bitstream = ((values[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bitstream.reshape(-1)).tobytes()


def _unpack_bits_generic(data: ByteLike, count: int, bits: int) -> np.ndarray:
    """Reference per-bit-expansion unpacker (inverse of the generic packer)."""
    _check_bits(bits)
    need = packed_size(count, bits)
    if len(data) < need:
        raise ValueError(f"need {need} bytes to unpack {count}x{bits}-bit, got {len(data)}")
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    bitstream = np.unpackbits(np.frombuffer(data, dtype=np.uint8, count=need))
    stream = bitstream[: count * bits].reshape(count, bits).astype(np.uint64)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    values = (stream << shifts).sum(axis=1)
    return values.astype(np.uint32)


# -- whole-message API --------------------------------------------------------


@dataclass(frozen=True)
class PackedSegments:
    """One bit plane packed as byte-aligned per-packet segments.

    Attributes:
        buffer: the contiguous packed plane.  Segment ``i`` starts at byte
            ``i * seg_bytes``; the final (possibly partial) segment is
            shorter, and any bytes past it are zero padding.
        bits: value width the plane was packed with.
        segment_len: coordinates per full segment.
        total: total number of packed coordinates.
    """

    buffer: bytes
    bits: int
    segment_len: int
    total: int

    @property
    def seg_bytes(self) -> int:
        """Packed bytes of one full segment."""
        return packed_size(self.segment_len, self.bits)

    @property
    def num_segments(self) -> int:
        """Number of segments (the last one may be partial)."""
        if self.total == 0:
            return 0
        return -(-self.total // self.segment_len)

    def segment_count(self, i: int) -> int:
        """Coordinates carried by segment ``i``."""
        if not 0 <= i < self.num_segments:
            raise IndexError(f"segment {i} out of range [0, {self.num_segments})")
        return min(self.segment_len, self.total - i * self.segment_len)

    def segment(self, i: int) -> memoryview:
        """Zero-copy view of segment ``i``'s packed bytes."""
        start = i * self.seg_bytes
        return memoryview(self.buffer)[start : start + packed_size(self.segment_count(i), self.bits)]


def pack_segments(values: np.ndarray, bits: int, segment_len: int) -> PackedSegments:
    """Pack a whole plane into byte-aligned per-packet segments at once.

    Equivalent to calling :func:`pack_bits` on every ``segment_len`` slice
    of ``values`` but performed in a single batched numpy call: the values
    are padded to a whole number of segments (zero pad bits are invisible
    in the per-segment views) and packed as a matrix.
    """
    _check_bits(bits)
    if segment_len <= 0:
        raise ValueError(f"segment_len must be positive, got {segment_len}")
    values = np.asarray(values, dtype=np.uint64).reshape(-1)
    _check_range(values, bits)
    total = values.size
    if total == 0:
        return PackedSegments(buffer=b"", bits=bits, segment_len=segment_len, total=0)
    num_segments = -(-total // segment_len)
    if total < num_segments * segment_len:
        padded = np.zeros(num_segments * segment_len, dtype=np.uint64)
        padded[:total] = values
        values = padded
    packed = _pack_rows(values.reshape(num_segments, segment_len), bits)
    return PackedSegments(
        buffer=packed.tobytes(), bits=bits, segment_len=segment_len, total=total
    )


def unpack_batch(chunks: Sequence[ByteLike], count: int, bits: int) -> np.ndarray:
    """Unpack many same-geometry packed planes in one batched call.

    Every chunk must hold exactly ``packed_size(count, bits)`` bytes (the
    packed plane of one packet).  Returns a ``(len(chunks), count)``
    uint32 matrix.  This is the receive-side twin of
    :func:`pack_segments`: ``depacketize`` groups arrived packets by
    geometry and inverts each group here instead of per packet.
    """
    _check_bits(bits)
    need = packed_size(count, bits)
    for chunk in chunks:
        if len(chunk) != need:
            raise ValueError(
                f"need exactly {need} bytes per chunk to unpack {count}x{bits}-bit, "
                f"got {len(chunk)}"
            )
    if not chunks:
        return np.zeros((0, count), dtype=np.uint32)
    if count == 0:
        return np.zeros((len(chunks), 0), dtype=np.uint32)
    data = b"".join(chunks)  # bytes.join accepts any buffer, memoryviews included
    raw = np.frombuffer(data, dtype=np.uint8).reshape(len(chunks), need)
    return _unpack_rows(raw, count, bits)


# -- sign helpers -------------------------------------------------------------


def pack_signs(signs: np.ndarray) -> bytes:
    """Pack a ±1 (or boolean) array as 1 bit per entry (+1 -> 1, -1 -> 0)."""
    arr = np.asarray(signs).reshape(-1)
    bits = (arr > 0).astype(np.uint8)
    return pack_bits(bits, 1)


def unpack_signs(data: ByteLike, count: int) -> np.ndarray:
    """Inverse of :func:`pack_signs`; returns a float64 ±1 array."""
    bits = unpack_bits(data, count, 1)
    return bits.astype(np.float64) * 2.0 - 1.0
