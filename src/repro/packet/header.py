"""Packet headers for trimmable gradient traffic.

The paper's worked example (Section 2) accounts for a 42-byte standard
header — Ethernet (14 B) + IPv4 (20 B) + UDP (8 B) — followed by the
payload.  For trimmable gradients the payload itself begins with a small
*gradient header* that must survive trimming: it tells the receiver which
message/chunk this is, how many coordinates it carries, the head/tail bit
widths, the codec, and the rotation seed, so a trimmed packet remains
self-describing.

Byte layout of :class:`GradientHeader` (big-endian, 32 bytes):

====== ===== =========================================================
offset bytes field
====== ===== =========================================================
0      2     magic ``0x7A6D`` ("trim")
2      1     version
3      1     flags (bit 0: TRIMMED, bit 1: METADATA, bit 2: INT)
4      1     codec id (see :mod:`repro.core.codec`)
5      1     head bits ``P``
6      2     tail bits ``Q`` (16-bit to allow multi-level codes)
8      4     message id
12     2     epoch
14     2     chunk index (packet index within the message)
16     4     coordinate offset (index of first coordinate in the blob)
20     4     coordinate count ``n`` in this packet
24     8     rotation / dither seed
====== ===== =========================================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

__all__ = [
    "ETHERNET_HEADER_BYTES",
    "IPV4_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "WIRE_HEADER_BYTES",
    "GRADIENT_HEADER_BYTES",
    "MAGIC",
    "FLAG_TRIMMED",
    "FLAG_METADATA",
    "FLAG_INT",
    "GradientHeader",
]

ETHERNET_HEADER_BYTES = 14
IPV4_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
#: Standard Ethernet + IP + UDP overhead, 42 bytes as in the paper.
WIRE_HEADER_BYTES = ETHERNET_HEADER_BYTES + IPV4_HEADER_BYTES + UDP_HEADER_BYTES

MAGIC = 0x7A6D
FLAG_TRIMMED = 0x01
FLAG_METADATA = 0x02
#: The packet carries an in-band telemetry band (a versioned, fixed-size
#: extension riding *outside* the payload — see repro.obs.int_telemetry).
#: Like the gradient header itself, the band is protected metadata:
#: switches stamp it but never trim it.
FLAG_INT = 0x04

_STRUCT = struct.Struct(">HBBBBHIHHIIQ")
GRADIENT_HEADER_BYTES = _STRUCT.size
assert GRADIENT_HEADER_BYTES == 32


@dataclass(frozen=True)
class GradientHeader:
    """Self-describing header carried at the front of every gradient packet."""

    codec_id: int
    head_bits: int
    tail_bits: int
    message_id: int
    epoch: int
    chunk_index: int
    coord_offset: int
    coord_count: int
    seed: int
    version: int = 1
    flags: int = 0

    @property
    def trimmed(self) -> bool:
        """True when a switch trimmed this packet's tails away."""
        return bool(self.flags & FLAG_TRIMMED)

    @property
    def is_metadata(self) -> bool:
        """True for the small, reliable metadata packets (never trimmed)."""
        return bool(self.flags & FLAG_METADATA)

    @property
    def has_int(self) -> bool:
        """True when the packet was emitted with an INT telemetry band."""
        return bool(self.flags & FLAG_INT)

    def with_flags(self, flags: int) -> "GradientHeader":
        """Copy of this header with ``flags`` OR-ed in."""
        return replace(self, flags=self.flags | flags)

    def to_bytes(self) -> bytes:
        """Serialize (big-endian, 32 bytes)."""
        return _STRUCT.pack(
            MAGIC,
            self.version,
            self.flags,
            self.codec_id,
            self.head_bits,
            self.tail_bits,
            self.message_id,
            self.epoch,
            self.chunk_index,
            self.coord_offset,
            self.coord_count,
            self.seed,
        )

    def pack_into(self, buffer: "bytearray | memoryview", offset: int = 0) -> None:
        """Serialize directly into ``buffer`` at ``offset`` (no allocation).

        Uses the module's precompiled :class:`struct.Struct`; the hot
        packetizer path writes every header straight into the message's
        single wire buffer instead of concatenating 32-byte strings.
        """
        _STRUCT.pack_into(
            buffer,
            offset,
            MAGIC,
            self.version,
            self.flags,
            self.codec_id,
            self.head_bits,
            self.tail_bits,
            self.message_id,
            self.epoch,
            self.chunk_index,
            self.coord_offset,
            self.coord_count,
            self.seed,
        )

    @classmethod
    def from_bytes(cls, data: "bytes | bytearray | memoryview") -> "GradientHeader":
        """Parse a header; raises ``ValueError`` on bad magic or short input."""
        if len(data) < GRADIENT_HEADER_BYTES:
            raise ValueError(
                f"gradient header needs {GRADIENT_HEADER_BYTES} bytes, got {len(data)}"
            )
        (
            magic,
            version,
            flags,
            codec_id,
            head_bits,
            tail_bits,
            message_id,
            epoch,
            chunk_index,
            coord_offset,
            coord_count,
            seed,
        ) = _STRUCT.unpack_from(data)
        if magic != MAGIC:
            raise ValueError(f"bad magic 0x{magic:04x}; not a gradient packet")
        return cls(
            codec_id=codec_id,
            head_bits=head_bits,
            tail_bits=tail_bits,
            message_id=message_id,
            epoch=epoch,
            chunk_index=chunk_index,
            coord_offset=coord_offset,
            coord_count=coord_count,
            seed=seed,
            version=version,
            flags=flags,
        )
