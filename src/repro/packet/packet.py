"""The on-the-wire packet object used throughout the simulator.

A :class:`Packet` models one datagram: addressing, the 42-byte standard
wire header (sized but not serialized — the simulator does not route real
Ethernet frames), an optional :class:`~repro.packet.header.GradientHeader`
and an opaque payload.  ``wire_size`` is what queues and links account
for; ``trim()`` produces the trimmed twin the switch forwards instead of
dropping.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field, replace
from typing import Optional

from ..obs.int_telemetry import INTExtension
from .header import FLAG_TRIMMED, GRADIENT_HEADER_BYTES, WIRE_HEADER_BYTES, GradientHeader

__all__ = ["Packet", "MAX_MTU_BYTES", "DEFAULT_MTU_BYTES"]

DEFAULT_MTU_BYTES = 1500
MAX_MTU_BYTES = 9000

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One datagram in flight.

    Attributes:
        src: source host name.
        dst: destination host name.
        payload: application payload (starts with the gradient header
            when ``grad_header`` is set).  Either owned ``bytes`` or a
            read-only ``memoryview`` into a shared message buffer — the
            packetizer emits zero-copy views; :meth:`trim` always
            produces owned bytes (see docs/performance.md for the
            ownership invariants).
        grad_header: parsed gradient header, if this is gradient traffic.
        priority: queueing priority; 0 = normal, higher = more urgent
            (trimmed headers travel at priority 1, like NDP).
        flow_id: transport flow this packet belongs to.
        seq: transport sequence number.
        seq_total: number of packets in this transport message (0 when
            the packet is not part of a framed message).
        is_ack: transport-level ACK/NACK/pull control packet.
        nack: for control packets, True marks a negative acknowledgement
            (NDP-style: the receiver saw a trimmed/lost packet it needs
            retransmitted).
        pull: for control packets, True grants the sender one more
            transmission credit (NDP's receiver-driven pacing).
        trimmed_echo: for ACKs, True tells the sender the acknowledged
            packet arrived trimmed (congestion feedback + stats).
        ecn: ECN-CE mark applied by a congested switch (echoed back on
            ACKs for DCTCP-style control).
        created_at: simulator time the packet entered the network.
        packet_id: unique id (for traces and trim transcripts).
        trimmed_from: original wire size if this packet was trimmed.
        checksum: CRC32 of ``payload`` at :meth:`seal` time, or None when
            the sender did not seal the packet.  Receivers call
            :meth:`verify` to detect in-flight payload corruption; an
            unsealed packet always verifies (no checksum, no detection).
        int_ext: in-band telemetry band, if the packetizer attached one.
            Deliberately *outside* the payload and the checksum: switches
            stamp hop records after the sender seals (mutating sealed
            payload bytes would read as corruption), exactly why real INT
            shims sit outside the L4 checksum.  Its fixed wire cost is
            still charged to ``wire_size`` so queues and links account
            for it, and like the gradient header it is never trimmed.
    """

    src: str
    dst: str
    payload: "bytes | memoryview" = b""
    grad_header: Optional[GradientHeader] = None
    priority: int = 0
    flow_id: int = 0
    seq: int = 0
    seq_total: int = 0
    is_ack: bool = False
    nack: bool = False
    pull: bool = False
    trimmed_echo: bool = False
    ecn: bool = False
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    trimmed_from: Optional[int] = None
    checksum: Optional[int] = None
    int_ext: Optional[INTExtension] = None
    #: Total bytes this packet occupies on a link / in a queue.  Cached
    #: at construction (queues and links read it several times per hop);
    #: the payload and INT band are fixed-size once built, so the cache
    #: only goes stale on direct payload surgery — call
    #: :meth:`recompute_wire_size` after mutating ``payload`` in place.
    wire_size: int = field(init=False, compare=False, repr=False, default=0)
    # Arena bookkeeping (see repro.packet.arena).  Deliberately
    # init=False: ``dataclasses.replace`` twins — trimmed remnants,
    # retransmit clones, corrupted fault copies — start un-pooled, so a
    # release of the original can never free an object something else
    # still aliases.
    _pool: Optional[object] = field(init=False, compare=False, repr=False, default=None)
    _pool_kind: int = field(init=False, compare=False, repr=False, default=0)
    _pool_free: bool = field(init=False, compare=False, repr=False, default=False)

    def __post_init__(self) -> None:
        size = WIRE_HEADER_BYTES + len(self.payload)
        if self.int_ext is not None:
            size += self.int_ext.wire_bytes
        self.wire_size = size

    def recompute_wire_size(self) -> int:
        """Refresh the cached ``wire_size`` after in-place payload surgery."""
        self.__post_init__()
        return self.wire_size

    @property
    def is_trimmed(self) -> bool:
        """True when a switch trimmed this packet."""
        return self.trimmed_from is not None

    @property
    def is_gradient(self) -> bool:
        """True for trimmable gradient data packets."""
        return self.grad_header is not None and not self.is_ack

    def trimmable_bytes(self) -> Optional[int]:
        """Payload bytes a switch must keep when trimming, or None.

        For gradient packets this is the gradient header plus the packed
        heads (``ceil(P*n/8)`` bytes); anything else is not trimmable and
        must be dropped instead when the buffer is full.
        """
        if self.grad_header is None or self.is_ack or self.grad_header.is_metadata:
            return None
        hdr = self.grad_header
        heads = -(-hdr.head_bits * hdr.coord_count // 8)
        keep = GRADIENT_HEADER_BYTES + heads
        if keep >= len(self.payload):
            return None  # nothing to cut
        return keep

    def seal(self) -> "Packet":
        """Stamp ``checksum`` with the CRC32 of the current payload.

        Returns self so senders can seal in-line while framing.
        """
        self.checksum = zlib.crc32(self.payload)
        return self

    def verify(self) -> bool:
        """True when the payload matches its checksum (or was never sealed)."""
        return self.checksum is None or zlib.crc32(self.payload) == self.checksum

    def trim(self) -> "Packet":
        """Return the trimmed twin of this packet (original is untouched).

        A sealed packet is re-sealed over the remnant payload — trimming
        switches recompute the frame check sequence, exactly as real
        store-and-forward ASICs do when they rewrite a frame.

        Raises ``ValueError`` when the packet is not trimmable.
        """
        keep = self.trimmable_bytes()
        if keep is None:
            raise ValueError(f"packet {self.packet_id} is not trimmable")
        assert self.grad_header is not None
        new_header = self.grad_header.with_flags(FLAG_TRIMMED)
        # join (not +) so a zero-copy memoryview payload concatenates too;
        # the trimmed twin always owns its (small) remnant payload.
        new_payload = b"".join(
            (new_header.to_bytes(), self.payload[GRADIENT_HEADER_BYTES:keep])
        )
        return replace(
            self,
            payload=new_payload,
            grad_header=new_header,
            priority=max(self.priority, 1),
            trimmed_from=self.wire_size,
            checksum=zlib.crc32(new_payload) if self.checksum is not None else None,
        )

    def clone(self) -> "Packet":
        """Copy with a fresh packet id (for retransmission accounting).

        A retransmitted clone gets a *fresh* (empty) INT band: its hop
        records describe the clone's own journey, not the lost
        original's.
        """
        fresh_ext = self.int_ext.fresh() if self.int_ext is not None else None
        return replace(self, packet_id=next(_packet_ids), int_ext=fresh_ext)
