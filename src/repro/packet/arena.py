"""Arena-style packet pool: explicit acquire/release, no per-packet GC.

The cluster-scale hot path creates and discards one :class:`Packet`
object per datagram — crosstraffic filler, ACKs, retransmit clones —
and at hundreds of thousands of events per second the allocator churn
shows up directly in events/s.  The arena recycles dead packet objects
instead: ``acquire`` re-initializes a previously released object
(drawing a **fresh id from the same global stream**, so traces are
byte-identical with pooling on or off) and falls back to a normal
construction when the freelist is empty.

Ownership protocol (see docs/performance.md, "Simulator fast path"):

* ``KIND_TRANSIENT`` — the network owns the packet outright once it is
  sent (crosstraffic filler, control/ACK packets).  Sinks that prove a
  transient packet dead — a host with no handler for it, a switch drop,
  a link that lost it — call :meth:`PacketArena.release_transient`.
* ``KIND_MESSAGE`` — packets built by ``packetize`` and retained by a
  transport sender for retransmission.  **Network sinks must never
  release these** (``release_transient`` refuses); the single release
  point is the channel/driver that owns the transfer, after decode,
  via :meth:`release_all`.
* ``dataclasses.replace`` twins (trim remnants, retransmit clones,
  corrupted fault copies) start un-pooled — ``Packet._pool`` is an
  ``init=False`` field — so aliasing can never free a live object.
* A packet handed to a fault-injection ``delivery_hook`` is detached
  from its pool first (duplication delivers the *same object* twice).

Missed releases are deliberately harmless: an un-released pooled packet
is simply garbage-collected like any other object — the arena is an
optimization, never a correctness dependency.  ``REPRO_PACKET_ARENA=0``
(or :func:`set_arena_enabled`) turns pooling off entirely for A/B
byte-identity checks.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional

from .header import WIRE_HEADER_BYTES
from .packet import Packet, _packet_ids

__all__ = [
    "KIND_TRANSIENT",
    "KIND_MESSAGE",
    "PacketArena",
    "get_arena",
    "set_arena",
    "arena_enabled",
    "set_arena_enabled",
]

#: The network owns the packet; sinks may release it on drop/delivery.
KIND_TRANSIENT = 0
#: A transport sender retains the packet; only the transfer owner releases.
KIND_MESSAGE = 1


class PacketArena:
    """A bounded freelist of recyclable :class:`Packet` objects.

    Args:
        capacity: freelist bound; releases beyond it fall through to the
            garbage collector (bounded memory under bursty churn).
        debug: poison released packets (empty payload, sentinel fields)
            so use-after-release reads fail loudly in tests.
    """

    def __init__(self, capacity: int = 8192, debug: bool = False) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.debug = debug
        self._free: List[Packet] = []
        # Stats (plain attributes: the acquire path is hot).
        self.acquired = 0
        self.reused = 0
        self.released = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, kind: int = KIND_TRANSIENT, **fields) -> Packet:
        """A fresh-looking packet: recycled when possible, new otherwise.

        ``fields`` are exactly the :class:`Packet` constructor fields.
        The returned packet always carries a newly drawn ``packet_id``
        (same global counter as direct construction) and a reset INT
        band/checksum — indistinguishable from ``Packet(**fields)``.
        """
        self.acquired += 1
        free = self._free
        if free and _ENABLED:
            packet = free.pop()
            self.reused += 1
            # Re-run the generated __init__: resets every field
            # (including the init=False pool markers) and re-derives
            # wire_size; packet_id default_factory draws the next id.
            Packet.__init__(packet, **fields)
        else:
            packet = Packet(**fields)
        if _ENABLED:
            packet._pool = self
            packet._pool_kind = kind
        return packet

    def acquire_filler(
        self, src: str, dst: str, payload: bytes, flow_id: int
    ) -> Packet:
        """Positional fast path for transient filler traffic.

        Exactly ``acquire(src=..., dst=..., payload=..., flow_id=...)``
        — every other field at its :class:`Packet` default, a fresh
        ``packet_id`` from the global stream, ``wire_size`` re-derived —
        but the recycled case assigns slots directly instead of paying
        the keyword-argument re-``__init__``.  Traffic generators emit
        one such packet per datagram, which makes this the arena's
        hottest entry point.  A property test pins field-for-field
        equivalence with plain construction.
        """
        self.acquired += 1
        free = self._free
        if free and _ENABLED:
            packet = free.pop()
            self.reused += 1
            packet.src = src
            packet.dst = dst
            packet.payload = payload
            packet.grad_header = None
            packet.priority = 0
            packet.flow_id = flow_id
            packet.seq = 0
            packet.seq_total = 0
            packet.is_ack = False
            packet.nack = False
            packet.pull = False
            packet.trimmed_echo = False
            packet.ecn = False
            packet.created_at = 0.0
            packet.packet_id = next(_packet_ids)
            packet.trimmed_from = None
            packet.checksum = None
            packet.int_ext = None
            packet.wire_size = WIRE_HEADER_BYTES + len(payload)
            packet._pool = self
            packet._pool_kind = KIND_TRANSIENT
            packet._pool_free = False
            return packet
        packet = Packet(src=src, dst=dst, payload=payload, flow_id=flow_id)
        if _ENABLED:
            packet._pool = self
            packet._pool_kind = KIND_TRANSIENT
        return packet

    def release(self, packet: Packet) -> bool:
        """Return ``packet`` to the freelist; True when it was pooled.

        Raises on double release — releasing twice means two owners
        believed they held the last reference, which is exactly the
        aliasing bug the ownership rules exist to prevent.  Un-pooled
        packets are ignored (False): sinks can release unconditionally.
        """
        if packet._pool is not self:
            return False
        if packet._pool_free:
            raise RuntimeError(
                f"packet {packet.packet_id} released twice (flow "
                f"{packet.flow_id}, seq {packet.seq})"
            )
        packet._pool_free = True
        self.released += 1
        if len(self._free) >= self.capacity:
            packet._pool = None  # overflow: let the GC have it
            self.dropped += 1
            return True
        if self.debug:
            # Poison: any later read of the payload or addressing sees
            # unmistakable garbage instead of stale-but-plausible data.
            packet.payload = b""
            packet.src = "<released>"
            packet.dst = "<released>"
            packet.wire_size = 0
        self._free.append(packet)
        return True

    def release_transient(self, packet: Packet) -> bool:
        """Sink-side release: only transient-kind pooled packets.

        Network sinks (switch drops, link losses, handler-less hosts)
        call this unconditionally; message-kind packets — still retained
        by their sender for retransmission — pass through untouched.
        """
        if packet._pool is self and packet._pool_kind == KIND_TRANSIENT:
            return self.release(packet)
        return False

    def release_all(self, packets: Iterable[Optional[Packet]]) -> int:
        """Transfer-owner release: every pooled packet, any kind.

        Deduplicates by object identity (a delivered wire list and the
        sender's retransmit list overlap), skips ``None`` and un-pooled
        entries, and returns the number actually recycled.  Only call
        this when the owning transfer is over and its network will never
        run again.
        """
        seen: set = set()
        count = 0
        for packet in packets:
            if packet is None or id(packet) in seen:
                continue
            seen.add(id(packet))
            if packet._pool is self and not packet._pool_free:
                self.release(packet)
                count += 1
        return count


_ENABLED = os.environ.get("REPRO_PACKET_ARENA", "1") != "0"
_ARENA = PacketArena()


def get_arena() -> PacketArena:
    """The process-wide default arena."""
    return _ARENA


def set_arena(arena: PacketArena) -> PacketArena:
    """Install ``arena`` as the default; returns the previous one."""
    global _ARENA
    previous = _ARENA
    _ARENA = arena
    return previous


def arena_enabled() -> bool:
    """Whether acquire() attaches packets to a pool at all."""
    return _ENABLED


def set_arena_enabled(enabled: bool) -> bool:
    """Toggle pooling process-wide; returns the previous setting.

    With pooling off, :meth:`PacketArena.acquire` degrades to plain
    ``Packet(**fields)`` and every release becomes a no-op — the A/B
    switch the byte-identity property tests flip.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = enabled
    return previous
