"""Trim policies: when and how far a switch cuts a packet.

The paper's switches trim at a fixed byte threshold (87 bytes in the
Section 2 example: 42 B wire header + 32 B gradient header + 13 B of
packed 1-bit heads would not fit — the worked example uses a minimal
application header; our self-describing header is 32 B, so the default
threshold adapts to ``trimmable_bytes``).  Multi-level trimming
(Section 5.1) lets the switch choose among several trim depths according
to how congested the queue is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .packet import Packet

__all__ = ["TrimDecision", "TrimPolicy", "SingleLevelTrim", "MultiLevelTrim", "NeverTrim"]


@dataclass(frozen=True)
class TrimDecision:
    """What the switch decided to do with an overflowing packet."""

    action: str  # "trim" | "drop"
    level: int = 0  # which trim level was applied (multi-level trimming)


class TrimPolicy:
    """Decides the fate of a packet that does not fit in the buffer."""

    def decide(self, packet: Packet, queue_fill: float) -> TrimDecision:
        """Choose an action for ``packet`` given queue fill in [0, 1]."""
        raise NotImplementedError

    def apply(self, packet: Packet, decision: TrimDecision) -> Optional[Packet]:
        """Produce the packet to enqueue instead, or None to drop."""
        if decision.action == "drop":
            return None
        return packet.trim()


class NeverTrim(TrimPolicy):
    """Drop-tail baseline: congested packets are simply dropped."""

    def decide(self, packet: Packet, queue_fill: float) -> TrimDecision:
        return TrimDecision(action="drop")


class SingleLevelTrim(TrimPolicy):
    """NDP-style: trim every trimmable packet to its head-only size."""

    def decide(self, packet: Packet, queue_fill: float) -> TrimDecision:
        if packet.trimmable_bytes() is None:
            return TrimDecision(action="drop")
        return TrimDecision(action="trim")


class MultiLevelTrim(TrimPolicy):
    """Section 5.1 multi-level trimming.

    The packet carries a tiered encoding (see
    :mod:`repro.core.multilevel`) whose prefix of ``level_bits[i]`` bits
    per coordinate is decodable on its own.  The switch picks a deeper
    trim level the fuller its queue is: with levels ``[8, 1]`` and
    thresholds ``[0.7, 0.9]``, a queue under 70 % full does not trim,
    between 70 % and 90 % it keeps 8 bits per coordinate (~25 % size) and
    beyond 90 % it keeps only the sign bit (~3 % size).
    """

    def __init__(
        self,
        level_bits: list[int],
        thresholds: list[float],
        plane_bits: tuple[int, ...] = (1, 7, 24),
    ) -> None:
        if len(level_bits) != len(thresholds):
            raise ValueError("level_bits and thresholds must have the same length")
        if sorted(thresholds) != list(thresholds):
            raise ValueError("thresholds must be non-decreasing")
        if sorted(level_bits, reverse=True) != list(level_bits):
            raise ValueError("level_bits must be non-increasing (deeper trim = fewer bits)")
        self.level_bits = list(level_bits)
        self.thresholds = list(thresholds)
        self.plane_bits = tuple(plane_bits)

    def decide(self, packet: Packet, queue_fill: float) -> TrimDecision:
        if packet.trimmable_bytes() is None:
            return TrimDecision(action="drop")
        level = -1
        for i, threshold in enumerate(self.thresholds):
            if queue_fill >= threshold:
                level = i
        if level < 0:
            # Overflow while under every threshold (e.g. a single huge
            # packet): fall back to the shallowest trim level.
            level = 0
        return TrimDecision(action="trim", level=level)

    def apply(self, packet: Packet, decision: TrimDecision) -> Optional[Packet]:
        if decision.action == "drop":
            return None
        keep_bits = self.level_bits[decision.level]
        return trim_to_bits(packet, keep_bits, self.plane_bits)


def trim_to_bits(
    packet: Packet, keep_bits: int, plane_bits: tuple[int, ...] = (1, 7, 24)
) -> Packet:
    """Trim ``packet`` so that ``keep_bits`` bits per coordinate survive.

    The payload after the gradient header is a sequence of *bit planes*
    (``plane_bits`` wide per coordinate), each independently packed to a
    byte boundary; ``keep_bits`` must land on a plane boundary — the trim
    keeps the packed bytes of exactly those prefix planes.  The gradient
    header's ``head_bits``/``tail_bits`` are rewritten so the receiver
    knows the surviving depth.
    """
    from dataclasses import replace as _replace

    from .bitpack import packed_size
    from .header import FLAG_TRIMMED, GRADIENT_HEADER_BYTES

    hdr = packet.grad_header
    if hdr is None:
        raise ValueError("not a gradient packet")
    total_bits = hdr.head_bits + hdr.tail_bits
    if keep_bits > total_bits:
        raise ValueError(f"cannot keep {keep_bits} bits of a {total_bits}-bit code")
    keep_bytes = 0
    bits_so_far = 0
    for width in plane_bits:
        if bits_so_far == keep_bits:
            break
        keep_bytes += packed_size(hdr.coord_count, width)
        bits_so_far += width
    if bits_so_far != keep_bits:
        raise ValueError(
            f"keep_bits={keep_bits} is not a prefix-plane boundary of {plane_bits}"
        )
    keep_payload = GRADIENT_HEADER_BYTES + keep_bytes
    if keep_payload >= len(packet.payload):
        return packet
    new_header = _replace(
        hdr,
        head_bits=keep_bits,
        tail_bits=total_bits - keep_bits,
        flags=hdr.flags | FLAG_TRIMMED,
    )
    # join (not +) so zero-copy memoryview payloads concatenate; the
    # trimmed packet owns its remnant payload (see docs/performance.md).
    new_payload = b"".join(
        (new_header.to_bytes(), packet.payload[GRADIENT_HEADER_BYTES:keep_payload])
    )
    # Re-seal over the remnant payload, as Packet.trim does — a stale
    # checksum would make receivers mistake the trim for corruption.
    import zlib

    return _replace(
        packet,
        payload=new_payload,
        grad_header=new_header,
        priority=max(packet.priority, 1),
        trimmed_from=packet.wire_size,
        checksum=zlib.crc32(new_payload) if packet.checksum is not None else None,
    )
