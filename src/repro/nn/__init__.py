"""Numpy ML training substrate: autograd, layers, models, optimizers, data."""

from . import functional
from .data import DataLoader, SyntheticImages, make_dataset
from .functional import conv2d, cross_entropy, dropout, log_softmax, max_pool2d, softmax
from .layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from .metrics import AverageMeter, evaluate, topk_accuracy
from .models import VGG_CONFIGS, LogisticRegression, MLP, SmallConvNet, make_vgg
from .optim import SGD, StepLR
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "functional",
    "DataLoader",
    "SyntheticImages",
    "make_dataset",
    "conv2d",
    "cross_entropy",
    "dropout",
    "log_softmax",
    "max_pool2d",
    "softmax",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "Linear",
    "MaxPool2d",
    "Module",
    "Parameter",
    "ReLU",
    "Sequential",
    "AverageMeter",
    "evaluate",
    "topk_accuracy",
    "VGG_CONFIGS",
    "LogisticRegression",
    "MLP",
    "SmallConvNet",
    "make_vgg",
    "SGD",
    "StepLR",
    "Tensor",
    "is_grad_enabled",
    "no_grad",
]
