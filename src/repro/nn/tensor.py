"""Reverse-mode automatic differentiation on numpy arrays.

The substitute for PyTorch in this environment: a small, correct autograd
engine.  A :class:`Tensor` wraps an ``ndarray`` and records the backward
function of the op that produced it; :meth:`Tensor.backward` runs the
tape in reverse topological order.  Broadcasting is fully supported (the
gradient of a broadcast operand is summed back to its shape).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

Number = Union[int, float]


class _GradMode(threading.local):
    """Per-thread tape-recording switch.

    Thread-local, not a module global: the cluster driver trains
    concurrent jobs on their own threads, and one job evaluating under
    :class:`no_grad` must not stop another job's forward pass from
    recording its tape.
    """

    enabled = True


_GRAD_MODE = _GradMode()


class no_grad:
    """Context manager disabling tape recording (inference mode)."""

    def __enter__(self) -> None:
        self._prev = _GRAD_MODE.enabled
        _GRAD_MODE.enabled = False

    def __exit__(self, *exc) -> None:
        _GRAD_MODE.enabled = self._prev


def is_grad_enabled() -> bool:
    """Whether new ops are recorded on the tape (in this thread)."""
    return _GRAD_MODE.enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverses numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An array with a gradient tape.

    Attributes:
        data: the underlying float64 ndarray.
        grad: accumulated gradient (same shape), or None.
        requires_grad: participate in autodiff.
    """

    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _GRAD_MODE.enabled
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward

    # -- basics ----------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The raw array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """A view of the data cut off from the tape."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad})"

    # -- graph construction -------------------------------------------------------

    @staticmethod
    def _lift(value: Union["Tensor", np.ndarray, Number]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_MODE.enabled and any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # -- arithmetic ----------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(g)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * other.data)
            if other.requires_grad:
                other._accumulate(g * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / other.data)
            if other.requires_grad:
                other._accumulate(-g * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ g)

        return self._make(out_data, (self, other), backward)

    # -- elementwise functions ----------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return self._make(self.data * mask, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    # -- reductions -----------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=True)
        mask = self.data == out_data
        # Split ties evenly so the gradient stays well-defined.
        mask = mask / mask.sum(axis=axis, keepdims=True)
        result = out_data if keepdims else out_data.squeeze(axis)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            if not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(grad * mask)

        return self._make(result, (self,), backward)

    # -- shape ops ---------------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(g).reshape(self.data.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(np.asarray(g), inverse))

        return self._make(np.transpose(self.data, axes), (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.zeros_like(self.data)
            np.add.at(grad, key, np.asarray(g))
            self._accumulate(grad)

        return self._make(out_data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding)] * 2
        out_data = np.pad(self.data, pad_width)
        slices = tuple(
            [slice(None)] * (self.ndim - 2)
            + [slice(padding, -padding), slice(padding, -padding)]
        )

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(g)[slices])

        return self._make(out_data, (self,), backward)

    # -- backprop ------------------------------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so scalars need no argument).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        seed = np.ones_like(self.data) if grad is None else np.asarray(grad, dtype=np.float64)
        self._accumulate(seed)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
