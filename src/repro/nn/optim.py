"""Optimizers and LR schedulers.

The paper's training recipe (Section 4.1 footnote): SGD with momentum
0.9, initial learning rate 1e-3 with a StepLR schedule, cross-entropy
loss.  Adam and a cosine schedule are included for the optimizer-
sensitivity ablation (how each optimizer reacts to trimmed-gradient
noise), plus gradient-norm clipping.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .layers import Parameter

__all__ = ["SGD", "Adam", "StepLR", "CosineLR", "clip_grad_norm"]


class SGD:
    """Stochastic gradient descent with classical momentum.

    ``v <- mu*v + g;  p <- p - lr*(v + wd*p)``
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v

    def state_dict(self) -> dict:
        """Momentum buffers + current lr, JSON-ready (for checkpoints)."""
        return {
            "lr": self.lr,
            "velocity": [v.ravel().tolist() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        """Inverse of :meth:`state_dict` (shapes come from the params)."""
        buffers = state["velocity"]
        if len(buffers) != len(self._velocity):
            raise ValueError(
                f"state has {len(buffers)} velocity buffers, "
                f"optimizer has {len(self._velocity)}"
            )
        self.lr = float(state["lr"])
        for v, flat in zip(self._velocity, buffers):
            values = np.asarray(flat, dtype=v.dtype)
            if values.size != v.size:
                raise ValueError(
                    f"velocity buffer size {values.size} != {v.size}"
                )
            v[...] = values.reshape(v.shape)


class Adam:
    """Adam with bias correction (Kingma & Ba).

    Included for the trimming ablation: Adam's per-coordinate second-
    moment normalization reacts very differently to the sign codec's
    biased ±σ noise than momentum-SGD does.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """One Adam update from the accumulated gradients."""
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  A standard defense that interacts
    interestingly with trimming: the sign codec's inflated small
    coordinates raise the global norm and get everything scaled down.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float(np.sum(grad * grad))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for grad in grads:
            grad *= scale
    return norm


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int = 50, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's lr."""
        self.epoch += 1
        decays = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**decays)

    def set_epoch(self, epoch: int) -> None:
        """Jump to ``epoch`` completed steps (checkpoint restore)."""
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        self.epoch = epoch
        decays = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**decays)

    @property
    def lr(self) -> float:
        return self.optimizer.lr


class CosineLR:
    """Cosine annealing from the base lr to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer, t_max: int, min_lr: float = 0.0) -> None:
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.optimizer = optimizer
        self.t_max = t_max
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's lr."""
        self.epoch += 1
        progress = min(self.epoch, self.t_max) / self.t_max
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cosine

    def set_epoch(self, epoch: int) -> None:
        """Jump to ``epoch`` completed steps (checkpoint restore)."""
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        self.epoch = 0
        for _ in range(epoch):
            self.step()
        if epoch == 0:
            self.optimizer.lr = self.base_lr

    @property
    def lr(self) -> float:
        return self.optimizer.lr
