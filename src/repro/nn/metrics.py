"""Evaluation metrics: top-k accuracy and running averages."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .data import SyntheticImages
from .layers import Module
from .tensor import Tensor, no_grad

__all__ = ["topk_accuracy", "evaluate", "AverageMeter"]


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose true label is among the top-k scores."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    k = min(k, logits.shape[1])
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (topk == labels[:, None]).any(axis=1)
    return float(hits.mean())


def evaluate(
    model: Module,
    dataset: SyntheticImages,
    batch_size: int = 256,
    ks: Sequence[int] = (1, 5),
) -> Dict[int, float]:
    """Top-k accuracies of ``model`` over a dataset (eval mode, no grad)."""
    was_training = model.training
    model.eval()
    logits_chunks = []
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            batch = dataset.images[start : start + batch_size]
            logits_chunks.append(model(Tensor(batch)).numpy())
    logits = np.concatenate(logits_chunks)
    if was_training:
        model.train()
    return {k: topk_accuracy(logits, dataset.labels, k) for k in ks}


class AverageMeter:
    """Streaming mean of a scalar metric."""

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def update(self, value: float, n: int = 1) -> None:
        self.total += float(value) * n
        self.count += n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
