"""Model zoo: VGG-style CNNs (including the paper's VGG-19), MLPs, logreg.

The paper trains VGG-19 on CIFAR-100.  The full VGG-19 configuration is
available (for parity and for anyone with patience), but the benchmarks
default to scaled-down variants that converge in seconds on CPU while
exercising the identical code path: conv stacks + BN + ReLU + pooling +
classifier, gradients flattened into one collective message.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from .layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from .tensor import Tensor

__all__ = ["VGG_CONFIGS", "make_vgg", "MLP", "LogisticRegression", "SmallConvNet"]

# Standard VGG configurations ("M" = 2x2 max-pool).
VGG_CONFIGS = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
              512, 512, 512, "M", 512, 512, 512, "M"],
    "vgg19": [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
              512, 512, 512, 512, "M", 512, 512, 512, 512, "M"],
    # Scaled-down variants for CPU-speed experiments: same topology
    # pattern, narrower channels, fewer stages.
    "vgg-micro": [8, "M", 16, "M"],
    "vgg-mini": [16, 16, "M", 32, 32, "M"],
}


def make_vgg(
    config: Union[str, Sequence],
    num_classes: int = 100,
    in_channels: int = 3,
    image_size: int = 32,
    batch_norm: bool = True,
    classifier_width: int = 0,
    dropout: float = 0.0,
    seed: int = 0,
) -> Sequential:
    """Build a VGG-style network.

    Args:
        config: a name from :data:`VGG_CONFIGS` or an explicit layer list.
        num_classes: classifier output width (100 for CIFAR-100).
        in_channels: input channels (3 for RGB).
        image_size: square input resolution; must survive the pools.
        batch_norm: insert BatchNorm2d after each conv (VGG-BN variant).
        classifier_width: hidden width of the classifier head (0 = direct
            linear readout, the common CIFAR adaptation).
        dropout: classifier dropout probability.
        seed: weight init seed.
    """
    layers_cfg = VGG_CONFIGS[config] if isinstance(config, str) else list(config)
    rng = np.random.default_rng(seed)
    layers: List[Module] = []
    channels = in_channels
    resolution = image_size
    for item in layers_cfg:
        if item == "M":
            if resolution % 2:
                raise ValueError(f"cannot pool odd resolution {resolution}")
            layers.append(MaxPool2d(2))
            resolution //= 2
        else:
            layers.append(Conv2d(channels, int(item), kernel_size=3, rng=rng, padding=1))
            if batch_norm:
                layers.append(BatchNorm2d(int(item)))
            layers.append(ReLU())
            channels = int(item)
    layers.append(Flatten())
    flat = channels * resolution * resolution
    if classifier_width > 0:
        layers.append(Linear(flat, classifier_width, rng))
        layers.append(ReLU())
        if dropout > 0:
            layers.append(Dropout(dropout, seed=seed + 1))
        layers.append(Linear(classifier_width, num_classes, rng))
    else:
        layers.append(Linear(flat, num_classes, rng))
    return Sequential(*layers)


class MLP(Module):
    """Multi-layer perceptron on flat features."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        num_classes: int,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [in_features, *hidden, num_classes]
        self.blocks: List[Module] = []
        for i in range(len(dims) - 1):
            self.blocks.append(Linear(dims[i], dims[i + 1], rng))
            if i < len(dims) - 2:
                self.blocks.append(ReLU())

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        for block in self.blocks:
            x = block(x)
        return x


class LogisticRegression(Module):
    """Linear classifier — the convex sanity-check model."""

    def __init__(self, in_features: int, num_classes: int, seed: int = 0):
        super().__init__()
        self.linear = Linear(in_features, num_classes, np.random.default_rng(seed))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.linear(x)


class SmallConvNet(Module):
    """Two-conv CNN for fast integration tests (8x8 or 16x16 inputs)."""

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        image_size: int = 8,
        seed: int = 0,
    ):
        super().__init__()
        if image_size % 4:
            raise ValueError(f"image_size must be divisible by 4, got {image_size}")
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2d(in_channels, 8, kernel_size=3, rng=rng, padding=1)
        self.bn1 = BatchNorm2d(8)
        self.conv2 = Conv2d(8, 16, kernel_size=3, rng=rng, padding=1)
        self.bn2 = BatchNorm2d(16)
        self.pool = MaxPool2d(2)
        flat = 16 * (image_size // 4) ** 2
        self.head = Linear(flat, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool(self.bn1(self.conv1(x)).relu())
        x = self.pool(self.bn2(self.conv2(x)).relu())
        x = x.reshape(x.shape[0], -1)
        return self.head(x)
