"""Synthetic CIFAR-100-like dataset.

The environment has no CIFAR download, so we substitute a controllable
synthetic image-classification task with the same *shape*: ``num_classes``
classes of small RGB images, where each class is a smooth random
prototype pattern and samples are noisy, shifted, optionally flipped
instances of it.  Difficulty is tunable through the noise level, so the
learning curves have the gradual, non-trivial profile the time-to-
accuracy experiments need (classes overlap; top-1 accuracy climbs over
many epochs rather than jumping to 100%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = ["SyntheticImages", "DataLoader", "make_dataset"]


def _smooth_noise(rng: np.random.Generator, channels: int, size: int) -> np.ndarray:
    """Random pattern smoothed by repeated neighbor averaging."""
    img = rng.standard_normal((channels, size, size))
    for _ in range(2):
        img = (
            img
            + np.roll(img, 1, axis=1)
            + np.roll(img, -1, axis=1)
            + np.roll(img, 1, axis=2)
            + np.roll(img, -1, axis=2)
        ) / 5.0
    return img


@dataclass
class SyntheticImages:
    """A materialized split: ``images`` (N, C, H, W), ``labels`` (N,)."""

    images: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return self.images.shape[0]


def make_dataset(
    num_classes: int = 100,
    train_per_class: int = 20,
    test_per_class: int = 5,
    image_size: int = 8,
    channels: int = 3,
    noise: float = 1.0,
    seed: int = 0,
) -> Tuple[SyntheticImages, SyntheticImages]:
    """Generate train/test splits of the synthetic classification task.

    Each class has a smooth prototype; a sample is
    ``prototype + noise * smooth_noise`` with a random circular shift.
    ``noise`` around 1.0 gives CIFAR-like gradual learning curves for the
    small models used in the benchmarks.
    """
    rng = np.random.default_rng(seed)
    prototypes = np.stack(
        [_smooth_noise(rng, channels, image_size) for _ in range(num_classes)]
    )
    prototypes *= 2.0  # separate the classes from the noise floor

    def sample_split(per_class: int, split_rng: np.random.Generator) -> SyntheticImages:
        images = np.empty((num_classes * per_class, channels, image_size, image_size))
        labels = np.empty(num_classes * per_class, dtype=np.int64)
        for cls in range(num_classes):
            for k in range(per_class):
                img = prototypes[cls] + noise * _smooth_noise(
                    split_rng, channels, image_size
                )
                shift = split_rng.integers(-1, 2, size=2)
                img = np.roll(img, tuple(shift), axis=(1, 2))
                idx = cls * per_class + k
                images[idx] = img
                labels[idx] = cls
        # Normalize to zero mean / unit variance like standard pipelines.
        images -= images.mean()
        images /= images.std() + 1e-12
        return SyntheticImages(images, labels)

    train = sample_split(train_per_class, np.random.default_rng(seed + 1))
    test = sample_split(test_per_class, np.random.default_rng(seed + 2))
    return train, test


class DataLoader:
    """Mini-batch iterator with shuffling and optional augmentation.

    Augmentation follows the "standard training setup" spirit of the
    paper: random horizontal flips and 1-pixel circular shifts.
    """

    def __init__(
        self,
        dataset: SyntheticImages,
        batch_size: int = 64,
        shuffle: bool = True,
        augment: bool = False,
        seed: int = 0,
        drop_last: bool = True,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.augment = augment
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size)

    def state(self) -> dict:
        """Snapshot of the loader's PCG64 state (JSON-ready).

        Captured at an epoch boundary this pins the shuffle permutation
        *and* every augmentation draw of the epoch, so a restored loader
        replays the epoch's batches bit-identically.
        """
        return dict(self._rng.bit_generator.state)

    def set_state(self, state: dict) -> None:
        """Inverse of :meth:`state`."""
        self._rng.bit_generator.state = dict(state)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            images = self.dataset.images[idx]
            labels = self.dataset.labels[idx]
            if self.augment:
                images = self._augment(images)
            yield images, labels

    def _augment(self, images: np.ndarray) -> np.ndarray:
        images = images.copy()
        flips = self._rng.random(images.shape[0]) < 0.5
        images[flips] = images[flips, :, :, ::-1]
        shifts = self._rng.integers(-1, 2, size=(images.shape[0], 2))
        for i, (dy, dx) in enumerate(shifts):
            if dy or dx:
                images[i] = np.roll(images[i], (dy, dx), axis=(1, 2))
        return images
