"""Layers and the Module container.

A deliberately PyTorch-flavoured API (``Module``, ``parameters()``,
``train()``/``eval()``) so the distributed trainer reads naturally to
anyone coming from the paper's DDP prototype.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "Flatten",
    "Dropout",
    "Sequential",
]


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class: parameter discovery, train/eval mode, call syntax."""

    def __init__(self) -> None:
        self.training = True

    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def parameters(self) -> List[Parameter]:
        """All trainable parameters, depth-first, deterministic order."""
        found: List[Parameter] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            self._collect(value, found, seen)
        return found

    @staticmethod
    def _collect(value, found: List[Parameter], seen: set) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            for p in value.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    found.append(p)
        elif isinstance(value, (list, tuple)):
            for item in value:
                Module._collect(item, found, seen)

    def modules(self) -> Iterator["Module"]:
        """This module and all submodules, depth-first."""
        yield self
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # -- flat parameter/gradient views (what the network actually carries) --

    def flat_gradient(self) -> np.ndarray:
        """All gradients concatenated — the collective message payload."""
        chunks = []
        for p in self.parameters():
            grad = p.grad if p.grad is not None else np.zeros_like(p.data)
            chunks.append(grad.reshape(-1))
        return np.concatenate(chunks) if chunks else np.zeros(0)

    def load_flat_gradient(self, flat: np.ndarray) -> None:
        """Scatter a flat gradient vector back into per-parameter grads."""
        flat = np.asarray(flat, dtype=np.float64)
        offset = 0
        for p in self.parameters():
            p.grad = flat[offset : offset + p.size].reshape(p.shape).copy()
            offset += p.size
        if offset != flat.size:
            raise ValueError(f"flat gradient has {flat.size} entries, model needs {offset}")

    def flat_parameters(self) -> np.ndarray:
        """All parameter values concatenated (FSDP gather payload)."""
        params = self.parameters()
        if not params:
            return np.zeros(0)
        return np.concatenate([p.data.reshape(-1) for p in params])

    def load_flat_parameters(self, flat: np.ndarray) -> None:
        """Overwrite parameters from a flat vector."""
        flat = np.asarray(flat, dtype=np.float64)
        offset = 0
        for p in self.parameters():
            p.data[...] = flat[offset : offset + p.size].reshape(p.shape)
            offset += p.size
        if offset != flat.size:
            raise ValueError(f"flat parameters have {flat.size} entries, model needs {offset}")


class Linear(Module):
    """Fully connected layer with Kaiming-uniform init."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        bound = np.sqrt(6.0 / in_features)
        self.weight = Parameter(rng.uniform(-bound, bound, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class Conv2d(Module):
    """3x3-style convolution layer, NCHW."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ):
        super().__init__()
        fan_in = in_channels * kernel_size * kernel_size
        bound = np.sqrt(6.0 / fan_in)
        self.weight = Parameter(
            rng.uniform(-bound, bound, (out_channels, in_channels, kernel_size, kernel_size))
        )
        self.bias = Parameter(np.zeros(out_channels))
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel, with running stats."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    def forward(self, x: Tensor) -> Tensor:
        c = x.shape[1]
        shape = (1, c, 1, 1)
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.reshape(-1)
            )
            inv_std = (var + self.eps) ** -0.5
            normalized = centered * inv_std
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            inv_std = Tensor(1.0 / np.sqrt(self.running_var.reshape(shape) + self.eps))
            normalized = (x - mean) * inv_std
        return normalized * self.gamma.reshape(shape) + self.beta.reshape(shape)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaxPool2d(Module):
    def __init__(self, kernel: int = 2):
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        self.p = p
        self.rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
