"""Neural-network ops with custom backward passes.

Convolution (via im2col), max pooling, dropout, and a fused, numerically
stable softmax cross-entropy.  Everything integrates with the
:class:`~repro.nn.tensor.Tensor` tape.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["conv2d", "max_pool2d", "dropout", "softmax", "log_softmax", "cross_entropy"]


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """(N, C, H, W) -> (N, OH*OW, C*KH*KW) patch matrix."""
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]  # (N, C, OH, OW, KH, KW)
    n, c, oh, ow = windows.shape[:4]
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols)


def _col2im(
    dcols: np.ndarray,
    x_shape: Tuple[int, ...],
    kh: int,
    kw: int,
    stride: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Scatter-add the im2col gradient back to the input's shape."""
    n, c, h, w = x_shape
    dx = np.zeros(x_shape, dtype=np.float64)
    patches = dcols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += patches[
                :, :, :, :, i, j
            ]
    return dx


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation), NCHW layout.

    Args:
        x: input of shape (N, C, H, W).
        weight: filters of shape (F, C, KH, KW).
        bias: optional per-filter bias (F,).
        stride: spatial stride (same in both dimensions).
        padding: symmetric zero padding.
    """
    xp = x.pad2d(padding)
    n, c, h, w = xp.shape
    f, cw, kh, kw = weight.shape
    if cw != c:
        raise ValueError(f"channel mismatch: input {c}, weight {cw}")
    if h < kh or w < kw:
        raise ValueError(f"kernel {kh}x{kw} larger than padded input {h}x{w}")
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1

    cols = _im2col(xp.data, kh, kw, stride)  # (N, OH*OW, CKK)
    w2 = weight.data.reshape(f, -1)  # (F, CKK)
    out_data = (cols @ w2.T).transpose(0, 2, 1).reshape(n, f, oh, ow)

    def backward(g: np.ndarray) -> None:
        g2 = np.asarray(g).transpose(0, 2, 3, 1).reshape(n, oh * ow, f)
        if weight.requires_grad:
            dw = np.einsum("nof,noc->fc", g2, cols).reshape(weight.shape)
            weight._accumulate(dw)
        if xp.requires_grad:
            dcols = g2 @ w2  # (N, OH*OW, CKK)
            xp._accumulate(_col2im(dcols, xp.shape, kh, kw, stride, oh, ow))

    out = x._make(out_data, (xp, weight), backward)
    if bias is not None:
        out = out + bias.reshape(1, f, 1, 1)
    return out


def max_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping max pooling (stride == kernel), NCHW layout."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims ({h},{w}) not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    windows = x.data.reshape(n, c, oh, kernel, ow, kernel).transpose(0, 1, 2, 4, 3, 5)
    flat = windows.reshape(n, c, oh, ow, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1).squeeze(-1)

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dflat = np.zeros_like(flat)
        np.put_along_axis(dflat, arg[..., None], np.asarray(g)[..., None], axis=-1)
        dx = (
            dflat.reshape(n, c, oh, ow, kernel, kernel)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )
        x._accumulate(dx)

    return x._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p``, scale by 1/(1-p)."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p <= 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a raw array (inference utility)."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax of a raw array."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def cross_entropy(
    logits: Tensor, labels: np.ndarray, label_smoothing: float = 0.0
) -> Tensor:
    """Fused softmax cross-entropy, mean over the batch.

    Args:
        logits: (N, K) raw scores.
        labels: (N,) integer class ids.
        label_smoothing: mass spread uniformly over all classes.
    """
    labels = np.asarray(labels, dtype=np.int64)
    n, k = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} != ({n},)")
    if labels.size and (labels.min() < 0 or labels.max() >= k):
        raise ValueError("label id out of range")
    logp = log_softmax(logits.data)
    target = np.zeros((n, k))
    target[np.arange(n), labels] = 1.0
    if label_smoothing > 0.0:
        target = (1 - label_smoothing) * target + label_smoothing / k
    loss_value = -(target * logp).sum() / n

    def backward(g: np.ndarray) -> None:
        if logits.requires_grad:
            probs = np.exp(logp)
            logits._accumulate(np.asarray(g) * (probs - target) / n)

    return logits._make(np.asarray(loss_value), (logits,), backward)
