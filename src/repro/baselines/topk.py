"""Top-K magnitude sparsification (MLT-style, paper Sections 2 & 5.2).

Keep the K largest-magnitude coordinates, drop the rest — MLT's
observation is that training tolerates discarding the smallest ~20 %
outright.  Supports error feedback (the classic fix for sparsification
bias: dropped mass is carried into the next round).

Also provides :class:`SparsifiedTrimmableChannel`, the Section 5.3
combination: sparsify *ahead of time* according to the congestion-control
budget, then send the survivors through an RHT trimmable encoding so the
network can still compress *just in time*.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..collectives.channel import GradientChannel
from ..core.rht import RHTCodec
from ..train.trim_channel import TrimChannel

__all__ = ["topk_sparsify", "TopKChannel", "SparsifiedTrimmableChannel"]


def topk_sparsify(flat: np.ndarray, keep_fraction: float) -> Tuple[np.ndarray, np.ndarray]:
    """Return (indices, values) of the ``keep_fraction`` largest coords."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    flat = np.asarray(flat, dtype=np.float64).reshape(-1)
    k = max(1, int(round(flat.size * keep_fraction)))
    if k >= flat.size:
        return np.arange(flat.size), flat.copy()
    indices = np.argpartition(-np.abs(flat), kth=k - 1)[:k]
    indices = np.sort(indices)
    return indices, flat[indices]


class TopKChannel(GradientChannel):
    """Ahead-of-time sparsification channel with optional error feedback.

    Error feedback keeps a per-worker residual of the dropped mass and
    adds it back before the next round's selection — without it, Top-K is
    biased and stalls exactly like the sign codec does under trimming.
    """

    def __init__(self, keep_fraction: float = 0.2, error_feedback: bool = True) -> None:
        super().__init__()
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
        self.keep_fraction = keep_fraction
        self.error_feedback = error_feedback
        self._residuals: Dict[int, np.ndarray] = {}

    def transfer(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0, worker: int = 0
    ) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.float64).reshape(-1)
        if self.error_feedback:
            residual = self._residuals.get(worker)
            if residual is not None and residual.size == flat.size:
                flat = flat + residual
        indices, values = topk_sparsify(flat, self.keep_fraction)
        delivered = np.zeros_like(flat)
        delivered[indices] = values
        if self.error_feedback:
            self._residuals[worker] = flat - delivered
        self.stats.messages += 1
        self.stats.coordinates += flat.size
        # Wire cost: 4-byte index + 4-byte value per survivor.
        self.stats.bytes_sent += indices.size * 8
        return delivered


class SparsifiedTrimmableChannel(GradientChannel):
    """Section 5.3: ahead-of-time Top-K + just-in-time RHT trimming.

    The sender discards coordinates per the congestion-control budget
    (``keep_fraction``), then transmits the dense vector of survivors
    with the RHT trimmable encoding; unpredictable congestion can still
    trim any fraction of the remaining packets.
    """

    def __init__(
        self,
        keep_fraction: float = 0.2,
        trim_rate: float = 0.0,
        codec: Optional[RHTCodec] = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.topk = TopKChannel(keep_fraction, error_feedback=True)
        self.trim = TrimChannel(codec or RHTCodec(root_seed=seed), trim_rate, seed=seed)

    def transfer(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0, worker: int = 0
    ) -> np.ndarray:
        sparse = self.topk.transfer(
            flat, epoch=epoch, message_id=message_id, worker=worker
        )
        indices = np.flatnonzero(sparse)
        if indices.size == 0:
            return sparse
        values = sparse[indices]
        delivered_values = self.trim.transfer(
            values, epoch=epoch, message_id=message_id, worker=worker
        )
        out = np.zeros_like(sparse)
        out[indices] = delivered_values
        self.stats.messages += 1
        self.stats.coordinates += flat.size
        self.stats.bytes_sent = self.topk.stats.bytes_sent  # indices
        self.stats.packets_total = self.trim.stats.packets_total
        self.stats.packets_trimmed = self.trim.stats.packets_trimmed
        return out
