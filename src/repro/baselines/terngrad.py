"""TernGrad ternary gradient quantization (Wen et al., NeurIPS'17).

The ahead-of-time compression baseline the paper's SQ codec borrows its
clipping rule from (``L = 2.5σ``).  Each coordinate is quantized to
``{-L, 0, +L}``: zero with probability ``1 - |v|/L`` and ``sign(v)·L``
otherwise, which is unbiased for clipped inputs.  Unlike the trimmable
codecs, TernGrad fixes its compression ratio at the sender — it cannot
react to in-network congestion, which is exactly the gap the paper's
just-in-time design fills.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.channel import GradientChannel
from ..transforms.prng import shared_generator

__all__ = ["TernGradCompressor", "TernGradChannel"]


@dataclass
class TernGradEncoded:
    """Ternary codes plus the scale needed to decode."""

    codes: np.ndarray  # int8 in {-1, 0, +1}
    scale: float
    length: int

    @property
    def wire_bits(self) -> int:
        """Ternary codes cost ~1.58 bits; TernGrad ships 2 bits each."""
        return 2 * self.length + 32


class TernGradCompressor:
    """Encoder/decoder pair for ternary gradients."""

    def __init__(self, root_seed: int = 0, clip_multiplier: float = 2.5) -> None:
        self.root_seed = root_seed
        self.clip_multiplier = clip_multiplier

    def encode(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0
    ) -> TernGradEncoded:
        flat = np.asarray(flat, dtype=np.float64).reshape(-1)
        sigma = float(np.std(flat))
        scale = self.clip_multiplier * sigma
        if scale <= 0.0:
            return TernGradEncoded(
                codes=np.zeros(flat.size, dtype=np.int8), scale=0.0, length=flat.size
            )
        clipped = np.clip(flat, -scale, scale)
        keep_prob = np.abs(clipped) / scale
        gen = shared_generator(self.root_seed, epoch, message_id, purpose="quantize")
        keep = gen.random(flat.size) < keep_prob
        codes = (np.sign(clipped) * keep).astype(np.int8)
        return TernGradEncoded(codes=codes, scale=scale, length=flat.size)

    def decode(self, enc: TernGradEncoded) -> np.ndarray:
        return enc.codes.astype(np.float64) * enc.scale


class TernGradChannel(GradientChannel):
    """Gradient channel applying TernGrad end to end (no trimming)."""

    def __init__(self, root_seed: int = 0, clip_multiplier: float = 2.5) -> None:
        super().__init__()
        self.compressor = TernGradCompressor(root_seed, clip_multiplier)

    def transfer(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0, worker: int = 0
    ) -> np.ndarray:
        enc = self.compressor.encode(
            flat, epoch=epoch, message_id=message_id * 131 + worker
        )
        self.stats.messages += 1
        self.stats.coordinates += enc.length
        self.stats.bytes_sent += enc.wire_bits // 8
        return self.compressor.decode(enc)
