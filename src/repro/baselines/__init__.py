"""Comparison codecs: ahead-of-time compression baselines (Section 5.2)."""

from .powersgd import PowerSGDChannel, PowerSGDCompressor
from .terngrad import TernGradChannel, TernGradCompressor
from .topk import SparsifiedTrimmableChannel, TopKChannel, topk_sparsify

__all__ = [
    "PowerSGDChannel",
    "PowerSGDCompressor",
    "TernGradChannel",
    "TernGradCompressor",
    "SparsifiedTrimmableChannel",
    "TopKChannel",
    "topk_sparsify",
]
