"""PowerSGD low-rank gradient compression (Vogels et al., NeurIPS'19).

The low-rank decomposition family of Section 5.2: a parameter matrix's
gradient ``M (n×m)`` is approximated as ``P Qᵀ`` with rank ``r`` factors
obtained by one power-iteration step against a warm-started ``Q``.
Compression ratio is fixed ahead of time by the rank — the paper's
Section 5.3 asks how to lay ranks out in packets so that trimming always
cuts the least-important rank first; :meth:`PowerSGDCompressor.
rank_ordered_payload` produces exactly that layout (ranks sorted by
spectral energy, most important first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..collectives.channel import GradientChannel

__all__ = ["PowerSGDCompressor", "PowerSGDChannel"]


@dataclass
class LowRankEncoded:
    """Rank-r factors of one gradient matrix."""

    p: np.ndarray  # (n, r)
    q: np.ndarray  # (m, r)
    shape: Tuple[int, int]

    @property
    def wire_bytes(self) -> int:
        return 4 * (self.p.size + self.q.size)


def _orthonormalize(matrix: np.ndarray) -> np.ndarray:
    """Gram-Schmidt via QR; keeps shapes for rank > min(n, m)."""
    q, _ = np.linalg.qr(matrix)
    return q


class PowerSGDCompressor:
    """One-step power iteration with warm-started Q and error feedback."""

    def __init__(self, rank: int = 2, seed: int = 0, error_feedback: bool = True) -> None:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.error_feedback = error_feedback
        self._rng = np.random.default_rng(seed)
        self._warm_q: Dict[Tuple[int, ...], np.ndarray] = {}
        self._residual: Dict[Tuple[int, ...], np.ndarray] = {}

    def encode(self, matrix: np.ndarray, key: Optional[tuple] = None) -> LowRankEncoded:
        """Compress one 2-D gradient; ``key`` scopes warm-start/residual."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"PowerSGD compresses matrices, got shape {matrix.shape}")
        n, m = matrix.shape
        key = key if key is not None else (n, m)
        if self.error_feedback and key in self._residual:
            matrix = matrix + self._residual[key]
        r = min(self.rank, n, m)
        q = self._warm_q.get(key)
        if q is None or q.shape != (m, r):
            q = self._rng.standard_normal((m, r))
        p = matrix @ q  # (n, r)
        p = _orthonormalize(p)
        q = matrix.T @ p  # (m, r)
        self._warm_q[key] = q
        enc = LowRankEncoded(p=p, q=q, shape=(n, m))
        if self.error_feedback:
            self._residual[key] = matrix - self.decode(enc)
        return enc

    def decode(self, enc: LowRankEncoded) -> np.ndarray:
        return enc.p @ enc.q.T

    def rank_ordered_payload(self, enc: LowRankEncoded) -> np.ndarray:
        """Section 5.3 layout: concatenated rank slices, strongest first.

        Each rank contributes ``p[:, i]`` then ``q[:, i]``; ranks are
        ordered by the energy ``‖q_i‖`` (p columns are orthonormal), so
        trimming the payload tail always removes the weakest rank.
        """
        energy = np.linalg.norm(enc.q, axis=0)
        order = np.argsort(-energy)
        slices = []
        for i in order:
            slices.append(enc.p[:, i])
            slices.append(enc.q[:, i])
        return np.concatenate(slices)

    def decode_prefix(
        self, payload: np.ndarray, shape: Tuple[int, int], ranks_received: int
    ) -> np.ndarray:
        """Decode from the first ``ranks_received`` rank slices only."""
        n, m = shape
        per_rank = n + m
        matrix = np.zeros((n, m))
        for i in range(ranks_received):
            base = i * per_rank
            p_col = payload[base : base + n]
            q_col = payload[base + n : base + per_rank]
            matrix += np.outer(p_col, q_col)
        return matrix


class PowerSGDChannel(GradientChannel):
    """Channel applying PowerSGD to a flat gradient via a square fold.

    The flat vector is zero-padded into the squarest possible matrix,
    compressed to rank ``r``, and decoded back — the standard trick for
    applying low-rank compression to arbitrary parameter vectors.
    """

    def __init__(self, rank: int = 2, seed: int = 0) -> None:
        super().__init__()
        self.compressor = PowerSGDCompressor(rank=rank, seed=seed)

    def transfer(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0, worker: int = 0
    ) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.float64).reshape(-1)
        n = int(np.ceil(np.sqrt(flat.size)))
        m = -(-flat.size // n)
        padded = np.zeros(n * m)
        padded[: flat.size] = flat
        enc = self.compressor.encode(padded.reshape(n, m), key=(worker, n, m))
        self.stats.messages += 1
        self.stats.coordinates += flat.size
        self.stats.bytes_sent += enc.wire_bytes
        return self.compressor.decode(enc).reshape(-1)[: flat.size]
