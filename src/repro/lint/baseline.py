"""Committed baseline of accepted findings.

A finding the team has reviewed and *accepted* (with a written
justification) lives in ``.repro-lint-baseline.json`` at the repo root;
``repro-lint`` auto-discovers it by walking up from the linted paths and
subtracts matching findings before deciding the exit status.  Identity
is a line-number-independent fingerprint — ``sha256(rule :: package-
relative path :: message)`` — so unrelated edits to the same file do not
orphan the entry, while any change to the accepted construction itself
(different message, moved file) resurfaces the finding for re-review.

The same fingerprint is emitted as SARIF ``partialFingerprints``, so
GitHub code scanning and the local baseline agree on which finding is
which.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import Finding, package_relative

__all__ = [
    "Baseline",
    "BaselineEntry",
    "finding_fingerprint",
    "discover_baseline",
    "DEFAULT_BASELINE_NAME",
]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_SCHEMA = 1


def finding_fingerprint(finding: Finding) -> str:
    """Stable identity of a finding: rule + package-relative path + message."""
    rel = package_relative(Path(finding.path))
    blob = f"{finding.rule}::{rel}::{finding.message}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding.

    Attributes:
        fingerprint: :func:`finding_fingerprint` of the accepted finding.
        rule: rule name (informational; the fingerprint is authoritative).
        path: package-relative path (informational).
        message: the accepted message (informational).
        justification: why this violation is deliberate — required
            non-empty when the baseline is committed.
    """

    fingerprint: str
    rule: str = ""
    path: str = ""
    message: str = ""
    justification: str = ""

    def to_json(self) -> Dict[str, str]:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "justification": self.justification,
        }


class Baseline:
    """The set of accepted findings, keyed by fingerprint."""

    def __init__(self, entries: Sequence[BaselineEntry] = (), path: Optional[Path] = None):
        self.path = path
        self.entries: Dict[str, BaselineEntry] = {e.fingerprint: e for e in entries}

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Parse a baseline file; raises ``ValueError`` on malformed input."""
        raw = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or raw.get("schema") != _SCHEMA:
            raise ValueError(f"{path}: not a repro-lint baseline (schema != {_SCHEMA})")
        entries: List[BaselineEntry] = []
        for record in raw.get("entries", []):
            if not isinstance(record, dict) or "fingerprint" not in record:
                raise ValueError(f"{path}: baseline entry missing a fingerprint")
            entries.append(
                BaselineEntry(
                    fingerprint=str(record["fingerprint"]),
                    rule=str(record.get("rule", "")),
                    path=str(record.get("path", "")),
                    message=str(record.get("message", "")),
                    justification=str(record.get("justification", "")),
                )
            )
        return cls(entries, path=path)

    def save(self, path: Optional[Path] = None) -> None:
        target = path or self.path
        if target is None:
            raise ValueError("no baseline path to save to")
        document = {
            "schema": _SCHEMA,
            "entries": [
                entry.to_json()
                for entry in sorted(
                    self.entries.values(), key=lambda e: (e.path, e.rule, e.fingerprint)
                )
            ],
        }
        target.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    # -- application -----------------------------------------------------------

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (new, accepted) and report unused entries.

        Returns ``(new_findings, baselined_findings, stale_entries)`` —
        stale entries matched nothing this run (the accepted construction
        was fixed or moved) and should be pruned from the file.
        """
        new: List[Finding] = []
        accepted: List[Finding] = []
        used: set[str] = set()
        for finding in findings:
            fingerprint = finding_fingerprint(finding)
            if fingerprint in self.entries:
                accepted.append(finding)
                used.add(fingerprint)
            else:
                new.append(finding)
        stale = [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in used
        ]
        return new, accepted, stale

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str = "TODO: justify"
    ) -> "Baseline":
        """Baseline accepting every given finding (for ``--write-baseline``)."""
        entries = [
            BaselineEntry(
                fingerprint=finding_fingerprint(finding),
                rule=finding.rule,
                path=package_relative(Path(finding.path)),
                message=finding.message,
                justification=justification,
            )
            for finding in findings
        ]
        return cls(entries)


def discover_baseline(paths: Sequence[Path]) -> Optional[Path]:
    """Find ``.repro-lint-baseline.json`` walking up from the lint paths.

    Starts at the first path (its directory for files) and ascends to the
    filesystem root; the repo-root baseline is found whether the linter
    is invoked on ``src/repro``, a single file, or the fixture tree.
    """
    if not paths:
        return None
    start = paths[0].resolve()
    if start.is_file():
        start = start.parent
    for directory in (start, *start.parents):
        candidate = directory / DEFAULT_BASELINE_NAME
        if candidate.is_file():
            return candidate
    return None
