"""The flow-aware rule families, built on :mod:`repro.lint.dataflow`.

Five families, each protecting an invariant the per-line rules cannot
see because the violation is *propagated* rather than syntactic:

* ``nondeterminism-taint`` — a value originating from bare randomness,
  a wall-clock read, set-iteration order, or ``hash()`` reaches the
  simulator's event loop, codec state, or a packet payload without
  passing through :mod:`repro.transforms.prng`.
* ``packet-typestate`` — the Packet lifecycle (build → ``seal()`` →
  send → ``verify()``): trimming after seal, double-seal, post-seal
  payload/INT-band mutation, sending a payload-carrying packet
  unsealed, and discarding the ``verify()`` verdict.
* ``bits-bytes`` — mixed-unit arithmetic or comparison between
  bit-denominated and byte-denominated quantities without an explicit
  ``* 8`` / ``// 8`` conversion.
* ``sim-callback-write`` — an event-loop callback writes module-level
  shared state: fine single-threaded today, a data race the moment the
  ROADMAP's multi-core workers land.
* ``pooled-packet-retention`` — a network-sink module stores a packet
  acquired from the packet arena instead of sending or releasing it;
  once a sink recycles that packet the retained reference aliases a
  live object of a later acquire.

See ``docs/static_analysis.md`` for the full rationale and examples.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .dataflow import (
    ImportTracker,
    PacketStateFlow,
    Taint,
    TaintFlow,
    UnitFlow,
    class_attribute_taints,
    dotted_name,
    iter_flow_scopes,
)
from .engine import Finding, Rule, SourceModule

__all__ = [
    "FLOW_RULES",
    "BitsBytesRule",
    "NondeterminismTaintRule",
    "PacketTypestateRule",
    "PooledPacketRetentionRule",
    "SimCallbackWriteRule",
]

#: Taint kinds that constitute a reportable nondeterminism (the internal
#: ``set-value`` marker only becomes real taint once iterated).
_REPORTABLE_KINDS = ("randomness", "wall-clock", "iter-order", "hash-order")


class NondeterminismTaintRule(Rule):
    """Tainted values must not reach the event loop, codecs, or payloads."""

    name = "nondeterminism-taint"
    description = (
        "values originating from bare randomness, wall-clock reads, set "
        "iteration order, or hash() must not flow into Simulator.schedule, "
        "codec state, or packet payloads"
    )
    hint = (
        "derive the value from repro.transforms.prng (shared_generator / "
        "StreamKey(...).spawn()) so every party regenerates the same stream, "
        "or sort the collection before iterating"
    )
    scope = (
        "core/", "transforms/", "collectives/", "transport/", "train/",
        "faults/", "resilience/", "net/", "packet/",
    )
    exempt = ("transforms/prng.py",)

    #: Event-loop entry points (method names on any simulator handle),
    #: including the fire-and-forget fast-path APIs.
    _SCHEDULE_METHODS = ("schedule", "schedule_at", "schedule_call", "schedule_batch")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        tracker = ImportTracker(module.tree)
        class_taints = class_attribute_taints(module.tree, tracker.resolve_call)
        reported: Set[Tuple[int, int, str, str]] = set()
        findings: List[Finding] = []

        for scope in iter_flow_scopes(module.tree):
            initial = dict(class_taints.get(scope.class_name or "", {}))
            flow = TaintFlow(tracker.resolve_call, initial=initial)
            in_codec = scope.class_name is not None and scope.class_name.endswith("Codec")

            def on_call(call: ast.Call, env: Dict[str, object]) -> None:
                self._check_schedule_sink(module, flow, call, env, reported, findings)
                self._check_payload_sink(module, flow, call, env, reported, findings)

            def on_attr_store(
                target: ast.Attribute, taints: "frozenset[Taint]", env: Dict[str, object]
            ) -> None:
                if not in_codec:
                    return
                base = dotted_name(target.value)
                if base != "self":
                    return
                self._report(
                    module,
                    target,
                    taints,
                    f"codec state self.{target.attr}",
                    reported,
                    findings,
                )

            flow.on_call = on_call
            flow.on_attribute_store = on_attr_store
            flow.run(scope)

        yield from findings

    # -- sinks -----------------------------------------------------------------

    def _check_schedule_sink(
        self,
        module: SourceModule,
        flow: TaintFlow,
        call: ast.Call,
        env: Dict[str, object],
        reported: Set[Tuple[int, int, str, str]],
        findings: List[Finding],
    ) -> None:
        if not isinstance(call.func, ast.Attribute):
            return
        if call.func.attr not in self._SCHEDULE_METHODS:
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Lambda):
                continue  # callback bodies are separate scopes, not data
            taints = flow.eval_expr(arg, env)
            if isinstance(taints, frozenset):
                self._report(
                    module,
                    arg,
                    taints,
                    f"{call.func.attr}() on the event loop",
                    reported,
                    findings,
                )

    def _check_payload_sink(
        self,
        module: SourceModule,
        flow: TaintFlow,
        call: ast.Call,
        env: Dict[str, object],
        reported: Set[Tuple[int, int, str, str]],
        findings: List[Finding],
    ) -> None:
        for keyword in call.keywords:
            if keyword.arg != "payload":
                continue
            taints = flow.eval_expr(keyword.value, env)
            if isinstance(taints, frozenset):
                self._report(
                    module, keyword.value, taints, "a packet payload", reported, findings
                )

    def _report(
        self,
        module: SourceModule,
        node: ast.AST,
        taints: "frozenset[Taint]",
        sink: str,
        reported: Set[Tuple[int, int, str, str]],
        findings: List[Finding],
    ) -> None:
        for taint in sorted(taints, key=lambda t: (t.kind, t.source, t.line)):
            if taint.kind not in _REPORTABLE_KINDS:
                continue
            key = (
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                taint.source,
                sink,
            )
            if key in reported:
                continue
            reported.add(key)
            findings.append(
                self.finding(
                    module,
                    node,
                    f"value tainted by {taint.source} (line {taint.line}) reaches "
                    f"{sink} without passing through shared_generator",
                )
            )


class PacketTypestateRule(Rule):
    """Packet lifecycle: build → seal() → send; verify() on receipt."""

    name = "packet-typestate"
    description = (
        "Packet lifecycle violations: trim/trim_to_bits after seal(), "
        "double-seal, post-seal payload/INT-band mutation, sending a "
        "payload-carrying packet unsealed, discarding verify()"
    )
    hint = (
        "seal() is the last sender-side step before host.send(); trimming "
        "and payload writes belong before it, and verify()'s bool must be "
        "acted on (see docs/static_analysis.md#packet-typestate)"
    )
    scope = (
        "packet/", "core/", "net/", "transport/", "train/", "collectives/",
        "faults/", "resilience/",
    )

    _MESSAGES = {
        "trim-after-seal": "trim on a sealed packet",
        "double-seal": "packet sealed twice",
        "mutate-after-seal": "sealed packet mutated",
        "send-unsealed": "payload-carrying packet sent unsealed",
        "verify-unused": "verify() verdict discarded",
    }

    def check(self, module: SourceModule) -> Iterator[Finding]:
        tracker = ImportTracker(module.tree)
        reported: Set[Tuple[int, int, str]] = set()
        for scope in iter_flow_scopes(module.tree):
            flow = PacketStateFlow(tracker.resolve_call)
            for event in flow.run(scope):
                key = (
                    getattr(event.node, "lineno", 0),
                    getattr(event.node, "col_offset", 0),
                    event.kind,
                )
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding(
                    module,
                    event.node,
                    f"{self._MESSAGES.get(event.kind, event.kind)}: {event.detail}",
                )


class BitsBytesRule(Rule):
    """Bit- and byte-denominated quantities must not mix silently."""

    name = "bits-bytes"
    description = (
        "no arithmetic or comparison mixing *_bits and *_bytes/wire_size "
        "quantities without an explicit * 8 / // 8 conversion"
    )
    hint = (
        "convert explicitly at the boundary (bytes * 8 or bits // 8) or "
        "rename the identifier so its unit suffix tells the truth"
    )
    scope = (
        "packet/", "core/", "net/", "transport/", "collectives/", "train/",
        "obs/int_telemetry.py",
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        tracker = ImportTracker(module.tree)
        reported: Set[Tuple[int, int, str]] = set()
        findings: List[Finding] = []

        flow = UnitFlow(tracker.resolve_call)

        def on_mismatch(node: ast.AST, left: str, right: str, context: str) -> None:
            key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), context)
            if key in reported:
                return
            reported.add(key)
            findings.append(
                self.finding(
                    module,
                    node,
                    f"mixed units in {context}: {left} vs {right} with no "
                    "explicit * 8 / // 8 conversion",
                )
            )

        flow.on_mismatch = on_mismatch
        for scope in iter_flow_scopes(module.tree):
            flow.run(scope)
        yield from findings


class SimCallbackWriteRule(Rule):
    """Event-loop callbacks must not write module-level shared state."""

    name = "sim-callback-write"
    severity = "warning"
    description = (
        "callbacks scheduled on the event loop must not write module-level "
        "state (a data race once workers go multi-core)"
    )
    hint = (
        "move the state onto the object that schedules the callback, or "
        "pass it through the callback's arguments"
    )
    scope = ("net/", "transport/", "faults/", "resilience/", "train/", "collectives/")

    _MUTATORS = {
        "append", "extend", "add", "update", "insert", "remove", "discard",
        "pop", "popitem", "clear", "setdefault", "__setitem__",
    }

    def check(self, module: SourceModule) -> Iterator[Finding]:
        module_globals = self._module_globals(module.tree)
        if not module_globals:
            return
        reported: Set[Tuple[int, int, str]] = set()
        for call, callback in self._scheduled_callbacks(module.tree):
            body = self._callback_body(module.tree, call, callback)
            if body is None:
                continue
            for node, var in self._shared_writes(body, module_globals):
                key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), var)
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding(
                    module,
                    node,
                    f"event-loop callback writes module-level state `{var}`",
                )

    @staticmethod
    def _module_globals(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for stmt in tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _scheduled_callbacks(tree: ast.Module) -> Iterator[Tuple[ast.Call, ast.expr]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr in ("schedule", "schedule_at", "schedule_call"):
                # schedule(delay, callback) / schedule_call(delay, fn, arg):
                # the callable sits in the second positional slot.
                callback: Optional[ast.expr] = None
                if len(node.args) >= 2:
                    callback = node.args[1]
                for keyword in node.keywords:
                    if keyword.arg == "callback":
                        callback = keyword.value
                if callback is not None:
                    yield node, callback
            elif node.func.attr == "schedule_batch" and node.args:
                # schedule_batch([(delay, fn, arg), ...]): inspect each
                # literal item's callable when the list is syntactic.
                items = node.args[0]
                if isinstance(items, (ast.List, ast.Tuple)):
                    for item in items.elts:
                        if isinstance(item, ast.Tuple) and len(item.elts) >= 2:
                            yield node, item.elts[1]

    def _callback_body(
        self, tree: ast.Module, call: ast.Call, callback: ast.expr
    ) -> Optional[List[ast.stmt]]:
        """Statements executed when the callback fires, when resolvable."""
        if isinstance(callback, ast.Lambda):
            return [ast.Expr(value=callback.body)]
        target_name: Optional[str] = None
        if isinstance(callback, ast.Name):
            target_name = callback.id
        elif isinstance(callback, ast.Attribute) and isinstance(callback.value, ast.Name):
            if callback.value.id == "self":
                target_name = callback.attr
        if target_name is None:
            return None
        # Innermost function/method definition with that name that contains
        # (or is a sibling of) the scheduling call.
        best: Optional[List[ast.stmt]] = None
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == target_name:
                    best = list(node.body)
        return best

    def _shared_writes(
        self, body: List[ast.stmt], module_globals: Set[str]
    ) -> Iterator[Tuple[ast.AST, str]]:
        declared_global: Set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Name) and target.id in declared_global:
                            yield node, target.id
                        elif isinstance(target, ast.Subscript):
                            base = target.value
                            if isinstance(base, ast.Name) and base.id in module_globals:
                                yield node, base.id
                elif isinstance(node, ast.NamedExpr):
                    if (
                        isinstance(node.target, ast.Name)
                        and node.target.id in module_globals
                    ):
                        yield node, node.target.id
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in self._MUTATORS:
                        base = node.func.value
                        if isinstance(base, ast.Name) and base.id in module_globals:
                            yield node, base.id


class PooledPacketRetentionRule(Rule):
    """Network sinks must not retain packets acquired from the arena."""

    name = "pooled-packet-retention"
    description = (
        "a packet acquired from the packet arena inside a network-sink "
        "module (net/, faults/, obs/) must be sent or released, never "
        "stored on an object or in a container — a sink may recycle it, "
        "turning the retained reference into a use-after-release alias"
    )
    hint = (
        "send the packet and let the ownership protocol recycle it, or "
        "copy the fields you need; only transports and the training "
        "channel (transport/, core/, train/) may retain pooled packets "
        "(see docs/performance.md#simulator-fast-path)"
    )
    # The owning modules — transport senders, the packetizer, the
    # training channel — retain message-kind packets by design and are
    # deliberately out of scope.
    scope = ("net/", "faults/", "obs/")

    _ACQUIRE_METHODS = ("acquire", "acquire_filler")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        reported: Set[Tuple[int, int]] = set()
        for scope in iter_flow_scopes(module.tree):
            acquired = self._acquired_names(scope.node)
            if not acquired and not self._has_acquire_call(scope.node):
                continue
            for node, detail in self._retentions(scope.node, acquired):
                key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding(module, node, detail)

    def _is_acquire_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._ACQUIRE_METHODS
        )

    def _has_acquire_call(self, func: ast.AST) -> bool:
        return any(self._is_acquire_call(node) for node in ast.walk(func))

    def _acquired_names(self, func: ast.AST) -> Set[str]:
        """Local names bound (directly) to an arena acquire result."""
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and self._is_acquire_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _retentions(
        self, func: ast.AST, acquired: Set[str]
    ) -> Iterator[Tuple[ast.AST, str]]:
        def holds_packet(expr: ast.expr) -> bool:
            return self._is_acquire_call(expr) or (
                isinstance(expr, ast.Name) and expr.id in acquired
            )

        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                if not holds_packet(node.value):
                    continue
                for target in node.targets:
                    # self.x = pkt / obj.x = pkt / container[k] = pkt
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        yield (
                            node,
                            "pooled packet stored on an attribute/container in a "
                            "network-sink module",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in SimCallbackWriteRule._MUTATORS:
                    continue
                if any(holds_packet(arg) for arg in node.args):
                    yield (
                        node,
                        f"pooled packet retained via .{node.func.attr}() in a "
                        "network-sink module",
                    )


#: The flow-aware rule set, in documentation order.
FLOW_RULES: Tuple[Rule, ...] = (
    NondeterminismTaintRule(),
    PacketTypestateRule(),
    BitsBytesRule(),
    SimCallbackWriteRule(),
    PooledPacketRetentionRule(),
)
