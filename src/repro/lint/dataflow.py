"""Flow-aware dataflow layer for the lint rules.

PR 2's rules are per-line AST matchers: they flag a bad *call site* but
are blind to the value once it is bound to a name.  The bugs that
motivated them, though, were propagation bugs — an ad-hoc generator
created in ``__init__`` and consumed three methods later, a byte count
compared against a bit count two assignments downstream.  This module
adds the missing layer: a small forward abstract interpreter over one
function (or the module top level) at a time.

No CFG is built.  Statements are interpreted in source order; both arms
of a branch are walked against a copy of the incoming environment and
the outgoing environments are joined, and loop bodies are walked twice
so loop-carried facts reach their first use.  That is deliberately
coarse — the lattice only ever *gains* facts, so the result is sound in
the direction lint cares about (no fact is forgotten on a path that
could have produced it) at the cost of some spurious joins.

Three analyses share the walker:

* :class:`TaintFlow` — tracks :class:`Taint` labels (nondeterminism:
  bare randomness, wall-clock reads, set-iteration order, string
  ``hash()``) through assignments, attributes, and call results, with
  the ``repro.transforms.prng`` entry points acting as sanitizers.
* :class:`UnitFlow` — classifies expressions as **bits** or **bytes**
  from identifier suffixes and known APIs (``wire_size``,
  ``packed_size``) and tracks the unit through ``* 8`` / ``// 8``
  conversions and local variables.
* :class:`PacketStateFlow` — typestate for :class:`repro.packet.Packet`
  locals: build → ``seal()`` → send, with trim and mutation legality
  depending on the current state.

Cross-method flows through ``self`` are approximated by a per-class
pre-pass (:func:`class_attribute_taints`): any taint ever assigned to
``self.<attr>`` in *any* method of a class seeds ``self.<attr>`` in
every method of that class.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ImportTracker",
    "Taint",
    "TaintFlow",
    "UnitFlow",
    "PacketStateFlow",
    "FlowScope",
    "iter_flow_scopes",
    "class_attribute_taints",
    "dotted_name",
    "BITS",
    "BYTES",
    "ST_BUILT",
    "ST_BUILT_EMPTY",
    "ST_SEALED",
    "ST_UNKNOWN",
]


@dataclass(frozen=True)
class Taint:
    """One nondeterminism label attached to a value.

    Attributes:
        kind: ``"randomness"``, ``"wall-clock"``, ``"iter-order"``,
            ``"hash-order"`` — or the internal marker ``"set-value"``
            (a set-typed value whose *iteration* would be unordered).
        source: human description of the origin (``"np.random.rand()"``).
        line: 1-based line where the taint entered.
    """

    kind: str
    source: str
    line: int


TaintSet = FrozenSet[Taint]
EMPTY_TAINTS: TaintSet = frozenset()

#: Units for :class:`UnitFlow`.
BITS = "bits"
BYTES = "bytes"

#: Packet typestates for :class:`PacketStateFlow`.
ST_BUILT = "built"  # constructed with a payload, not yet sealed
ST_BUILT_EMPTY = "built-empty"  # constructed without a payload (control packets)
ST_SEALED = "sealed"
ST_UNKNOWN = "unknown"


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportTracker:
    """What local names refer to numpy / random / time / datetime.

    AST-only alias resolution: ``import numpy as np`` makes ``np`` a
    numpy alias, ``from numpy import random as npr`` makes ``npr`` a
    ``numpy.random`` alias, ``from time import time as clock`` binds
    ``clock`` to ``time.time``, and so on.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.module_aliases: Dict[str, str] = {}  # local name -> module dotted path
        self.member_aliases: Dict[str, str] = {}  # local name -> module.member path
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.member_aliases[local] = f"{node.module}.{alias.name}"

    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """Canonical dotted path of a called name, through import aliases.

        ``np.random.rand`` → ``numpy.random.rand`` (given ``import numpy
        as np``); a bare ``randint`` imported from :mod:`random` →
        ``random.randint``.  Returns None for calls it cannot resolve.
        """
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.member_aliases:
            base = self.member_aliases[head]
            return f"{base}.{rest}" if rest else base
        if head in self.module_aliases:
            base = self.module_aliases[head]
            return f"{base}.{rest}" if rest else base
        return dotted


@dataclass
class FlowScope:
    """One analyzable scope: a function body or the module top level.

    Attributes:
        name: qualified display name (``ClassName.method`` for methods).
        body: the statements, in source order.
        node: the owning AST node (FunctionDef or Module).
        class_name: enclosing class name for methods, else None.
        args: parameter names (empty for the module scope).
    """

    name: str
    body: Sequence[ast.stmt]
    node: ast.AST
    class_name: Optional[str] = None
    args: Tuple[str, ...] = ()


def _function_args(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> Tuple[str, ...]:
    names = [a.arg for a in node.args.posonlyargs]
    names += [a.arg for a in node.args.args]
    if node.args.vararg is not None:
        names.append(node.args.vararg.arg)
    names += [a.arg for a in node.args.kwonlyargs]
    if node.args.kwarg is not None:
        names.append(node.args.kwarg.arg)
    return tuple(names)


def iter_flow_scopes(tree: ast.Module) -> Iterator[FlowScope]:
    """Yield the module scope and every function/method scope.

    Nested functions are yielded as their own scopes (with a dotted
    display name); class bodies are not scopes themselves — only the
    methods inside them are.
    """
    yield FlowScope(name="<module>", body=tree.body, node=tree)

    def walk(
        stmts: Sequence[ast.stmt], prefix: str, class_name: Optional[str]
    ) -> Iterator[FlowScope]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                yield FlowScope(
                    name=qual,
                    body=stmt.body,
                    node=stmt,
                    class_name=class_name,
                    args=_function_args(stmt),
                )
                yield from walk(stmt.body, f"{qual}.", None)
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body, f"{stmt.name}.", stmt.name)

    yield from walk(tree.body, "", None)


class _ForwardWalker:
    """Shared statement dispatch for the forward analyses.

    Subclasses implement :meth:`eval_expr` (expression → abstract value),
    :meth:`join_values`, and :meth:`handle_call` (called for every Call
    node with the environment *at that program point* — this is where
    rules check sinks).  The environment maps names — plain locals and
    ``self.attr`` dotted keys — to abstract values.
    """

    def eval_expr(self, expr: ast.expr, env: Dict[str, object]) -> object:
        raise NotImplementedError

    def join_values(self, a: object, b: object) -> object:
        raise NotImplementedError

    def handle_call(self, call: ast.Call, env: Dict[str, object]) -> None:
        """Sink hook; default does nothing."""

    def handle_attribute_store(
        self, target: ast.Attribute, value: object, env: Dict[str, object]
    ) -> None:
        """Hook for ``obj.attr = value`` stores; default does nothing."""

    # -- environment helpers ---------------------------------------------------

    def assign(self, target: ast.expr, value: object, env: Dict[str, object]) -> None:
        """Bind ``value`` to an assignment target (names, tuples, attributes)."""
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Attribute):
            dotted = dotted_name(target)
            if dotted is not None:
                env[dotted] = value
            self.handle_attribute_store(target, value, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self.assign(inner, value, env)
        elif isinstance(target, ast.Subscript):
            # Writing into a container taints/updates the container itself.
            base = target.value
            dotted = dotted_name(base)
            if dotted is not None and dotted in env:
                env[dotted] = self.join_values(env[dotted], value)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, value, env)

    def join_env(self, into: Dict[str, object], other: Dict[str, object]) -> None:
        for key, value in other.items():
            if key in into:
                into[key] = self.join_values(into[key], value)
            else:
                into[key] = value

    # -- statement dispatch ----------------------------------------------------

    def walk(self, stmts: Sequence[ast.stmt], env: Dict[str, object]) -> None:
        for stmt in stmts:
            self.walk_stmt(stmt, env)

    def walk_stmt(self, stmt: ast.stmt, env: Dict[str, object]) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value, env)
            for target in stmt.targets:
                self.assign(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval_expr(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval_expr(stmt.value, env)
            existing = self.eval_expr(stmt.target, env)
            self.assign(stmt.target, self.join_values(existing, value), env)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self.eval_expr(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self.eval_expr(stmt.test, env)
            then_env = dict(env)
            self.walk(stmt.body, then_env)
            else_env = dict(env)
            self.walk(stmt.orelse, else_env)
            env.clear()
            env.update(then_env)
            self.join_env(env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.handle_for(stmt, env)
        elif isinstance(stmt, ast.While):
            self.eval_expr(stmt.test, env)
            # Two passes so loop-carried facts reach their first use.
            body_env = dict(env)
            self.walk(stmt.body, body_env)
            self.walk(stmt.body, body_env)
            self.join_env(env, body_env)
            self.walk(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval_expr(item.context_expr, env)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, value, env)
            self.walk(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self.walk(stmt.body, env)
            for handler in stmt.handlers:
                handler_env = dict(env)
                self.walk(handler.body, handler_env)
                self.join_env(env, handler_env)
            self.walk(stmt.orelse, env)
            self.walk(stmt.finalbody, env)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval_expr(child, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                dotted = dotted_name(target)
                if dotted is not None:
                    env.pop(dotted, None)
        # FunctionDef / ClassDef / Import / Global / Pass fall through:
        # nested definitions are separate scopes.

    def handle_for(self, stmt: "ast.For | ast.AsyncFor", env: Dict[str, object]) -> None:
        value = self.eval_expr(stmt.iter, env)
        self.assign(stmt.target, self.iterated_value(value, stmt.iter), env)
        body_env = dict(env)
        self.walk(stmt.body, body_env)
        # Second pass: loop-carried facts.
        self.assign(stmt.target, self.iterated_value(value, stmt.iter), body_env)
        self.walk(stmt.body, body_env)
        self.join_env(env, body_env)
        self.walk(stmt.orelse, env)

    def iterated_value(self, value: object, iter_expr: ast.expr) -> object:
        """Abstract value of one element of ``value``; default: the value."""
        return value


# ---------------------------------------------------------------------------
# Taint analysis


#: numpy.random module-level samplers (hidden global state) — mirrors the
#: ``bare-randomness`` rule's table.
_NUMPY_SAMPLERS: Set[str] = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "bytes", "choice", "shuffle", "permutation", "standard_normal",
    "normal", "uniform", "binomial", "poisson", "exponential", "beta",
    "gamma", "laplace", "lognormal", "get_state", "set_state", "RandomState",
}

_STDLIB_SAMPLERS: Set[str] = {
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "lognormvariate",
    "betavariate", "expovariate", "gammavariate", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
    "getrandbits", "randbytes",
}

_WALL_CLOCK_CALLS: Set[str] = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Calls whose *result* is sanctioned shared randomness: values drawn from
#: these generators are reproducible on both ends by construction.
_SANITIZER_CALLS: Set[str] = {
    "shared_generator",
    "derive_seed",
    "repro.transforms.prng.shared_generator",
    "repro.transforms.prng.derive_seed",
}

#: Builtins whose result depends only on their (clean) inputs but which
#: would otherwise inherit a ``set-value`` marker from an argument.
_ORDER_SANITIZERS: Set[str] = {"sorted", "len", "sum", "min", "max", "frozenset"}


class TaintFlow(_ForwardWalker):
    """Propagates :class:`Taint` labels through one scope.

    ``on_call`` (when set) fires for every call site with the environment
    at that point — the taint rule uses it to test sink arguments via
    :meth:`eval_expr`.  ``on_attribute_store`` fires for attribute
    stores (codec-state sinks).
    """

    def __init__(
        self,
        resolve_call: Callable[[ast.AST], Optional[str]],
        initial: Optional[Dict[str, TaintSet]] = None,
    ) -> None:
        self.resolve_call = resolve_call
        self.initial: Dict[str, TaintSet] = dict(initial or {})
        self.on_call: Optional[Callable[[ast.Call, Dict[str, object]], None]] = None
        self.on_attribute_store: Optional[
            Callable[[ast.Attribute, TaintSet, Dict[str, object]], None]
        ] = None

    def run(self, scope: FlowScope) -> Dict[str, object]:
        env: Dict[str, object] = dict(self.initial)
        self.walk(scope.body, env)
        return env

    # -- lattice ---------------------------------------------------------------

    def join_values(self, a: object, b: object) -> object:
        return self._as_taints(a) | self._as_taints(b)

    @staticmethod
    def _as_taints(value: object) -> TaintSet:
        return value if isinstance(value, frozenset) else EMPTY_TAINTS

    # -- sources ---------------------------------------------------------------

    def call_taints(self, call: ast.Call, env: Dict[str, object]) -> TaintSet:
        """Taints of a call result: sources seed, sanitizers clear."""
        resolved = self.resolve_call(call.func)
        line = call.lineno
        if resolved is not None:
            if resolved in _SANITIZER_CALLS or resolved.endswith(".spawn"):
                return EMPTY_TAINTS
            if resolved == "numpy.random.default_rng":
                return frozenset(
                    {Taint("randomness", "np.random.default_rng()", line)}
                )
            if resolved.startswith("numpy.random."):
                attr = resolved.rsplit(".", 1)[1]
                if attr in _NUMPY_SAMPLERS:
                    return frozenset(
                        {Taint("randomness", f"np.random.{attr}()", line)}
                    )
            head, _, attr = resolved.rpartition(".")
            if head == "random" and attr in _STDLIB_SAMPLERS:
                return frozenset({Taint("randomness", f"random.{attr}()", line)})
            if resolved in _WALL_CLOCK_CALLS:
                return frozenset({Taint("wall-clock", f"{resolved}()", line)})
            if resolved == "os.urandom":
                return frozenset({Taint("randomness", "os.urandom()", line)})
            if resolved in ("uuid.uuid1", "uuid.uuid4"):
                return frozenset({Taint("randomness", f"{resolved}()", line)})
            if resolved == "hash":
                return frozenset(
                    {Taint("hash-order", "hash() (PYTHONHASHSEED-dependent)", line)}
                )
            if resolved in ("set",):
                inherited = self._args_taints(call, env)
                return inherited | frozenset({Taint("set-value", "set(...)", line)})
            if resolved in _ORDER_SANITIZERS:
                # Deterministic reductions: drop the set-value marker but
                # keep genuine taints flowing through.
                inherited = self._args_taints(call, env)
                return frozenset(t for t in inherited if t.kind != "set-value")
        # Unresolved / ordinary call: the result inherits its inputs' taints
        # (a function of a random value is still random).
        return self._args_taints(call, env)

    def _args_taints(self, call: ast.Call, env: Dict[str, object]) -> TaintSet:
        taints = self._as_taints(self.eval_expr(call.func, env))
        for arg in call.args:
            inner = arg.value if isinstance(arg, ast.Starred) else arg
            taints |= self._as_taints(self.eval_expr(inner, env))
        for keyword in call.keywords:
            taints |= self._as_taints(self.eval_expr(keyword.value, env))
        return taints

    # -- expressions -----------------------------------------------------------

    def eval_expr(self, expr: ast.expr, env: Dict[str, object]) -> object:
        if isinstance(expr, ast.Name):
            return self._as_taints(env.get(expr.id))
        if isinstance(expr, ast.Attribute):
            dotted = dotted_name(expr)
            if dotted is not None and dotted in env:
                return self._as_taints(env[dotted])
            # An attribute of a tainted object is tainted (rng.normal is
            # a bound method of a tainted generator, iter order of a
            # tainted dict's .keys(), ...).
            return self._as_taints(self.eval_expr(expr.value, env))
        if isinstance(expr, ast.Call):
            # Evaluate sub-expressions first so the sink hook sees them.
            result = self.call_taints(expr, env)
            if self.on_call is not None:
                self.on_call(expr, env)
            return result
        if isinstance(expr, ast.Set):
            taints = self._children_taints(expr, env)
            return taints | frozenset(
                {Taint("set-value", "set literal", expr.lineno)}
            )
        if isinstance(expr, ast.SetComp):
            taints = self._children_taints(expr, env)
            return taints | frozenset(
                {Taint("set-value", "set comprehension", expr.lineno)}
            )
        if isinstance(expr, ast.Lambda):
            return EMPTY_TAINTS  # separate scope; not propagated here
        if isinstance(expr, ast.Constant):
            return EMPTY_TAINTS
        if isinstance(expr, ast.NamedExpr):
            value = self.eval_expr(expr.value, env)
            self.assign(expr.target, value, env)
            return value
        return self._children_taints(expr, env)

    def _children_taints(self, expr: ast.expr, env: Dict[str, object]) -> TaintSet:
        taints = EMPTY_TAINTS
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                taints |= self._as_taints(self.eval_expr(child, env))
            elif isinstance(child, ast.comprehension):
                taints |= self._as_taints(self.eval_expr(child.iter, env))
        return taints

    # -- hooks -----------------------------------------------------------------

    def handle_attribute_store(
        self, target: ast.Attribute, value: object, env: Dict[str, object]
    ) -> None:
        if self.on_attribute_store is not None:
            self.on_attribute_store(target, self._as_taints(value), env)

    def iterated_value(self, value: object, iter_expr: ast.expr) -> object:
        taints = self._as_taints(value)
        if any(t.kind == "set-value" for t in taints):
            marker = Taint(
                "iter-order",
                "iteration over a set (order varies with PYTHONHASHSEED)",
                iter_expr.lineno,
            )
            taints = frozenset(t for t in taints if t.kind != "set-value") | {marker}
        return taints


def class_attribute_taints(
    tree: ast.Module, resolve_call: Callable[[ast.AST], Optional[str]]
) -> Dict[str, Dict[str, TaintSet]]:
    """Per-class: taints ever assigned to ``self.<attr>`` in any method.

    This is the cross-method approximation: a generator created in
    ``__init__`` (``self._rng = np.random.default_rng()``) taints
    ``self._rng`` in every other method of the class.
    """
    result: Dict[str, Dict[str, TaintSet]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        attrs: Dict[str, TaintSet] = {}

        def record(target: ast.Attribute, value: TaintSet, env: Dict[str, object]) -> None:
            dotted = dotted_name(target)
            if dotted is not None and dotted.startswith("self."):
                real = frozenset(t for t in value if t.kind != "set-value")
                if real:
                    attrs[dotted] = attrs.get(dotted, EMPTY_TAINTS) | real

        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                flow = TaintFlow(resolve_call)
                flow.on_attribute_store = record
                flow.run(
                    FlowScope(
                        name=stmt.name,
                        body=stmt.body,
                        node=stmt,
                        class_name=node.name,
                        args=_function_args(stmt),
                    )
                )
        if attrs:
            result[node.name] = attrs
    return result


# ---------------------------------------------------------------------------
# Bits / bytes unit analysis


#: Identifier names with a fixed unit regardless of suffix.
_BYTES_NAMES: Set[str] = {
    "wire_size", "wire_bytes", "mtu", "payload_max", "trimmable_bytes",
}
_BITS_NAMES: Set[str] = {"width", "keep_bits"}

#: Call results with a known unit.
_CALL_UNITS: Dict[str, str] = {
    "packed_size": BYTES,
    "trimmable_bytes": BYTES,
}

#: ``len()`` is bytes only for byte-buffer-ish arguments.
_LEN_BYTES_ARGS: Set[str] = {"payload", "buf", "buffer", "data", "blob", "raw"}


def unit_of_identifier(name: str) -> Optional[str]:
    """Unit promised by an identifier's name, or None."""
    lowered = name.lower()
    if lowered in _BYTES_NAMES:
        return BYTES
    if lowered in _BITS_NAMES:
        return BITS
    if lowered.endswith("_bytes") or lowered == "bytes":
        return BYTES
    if lowered.endswith("_bits") or lowered == "bits":
        return BITS
    return None


class UnitFlow(_ForwardWalker):
    """Tracks the bits/bytes unit of expressions and locals.

    The abstract value is ``BITS``, ``BYTES`` or ``None`` (unknown /
    dimensionless).  ``on_mismatch`` fires with (node, left_unit,
    right_unit, context) whenever two different known units meet in an
    add/sub/compare, or a declared-unit name is assigned a value of the
    other unit.
    """

    def __init__(self, resolve_call: Callable[[ast.AST], Optional[str]]) -> None:
        self.resolve_call = resolve_call
        self.on_mismatch: Optional[Callable[[ast.AST, str, str, str], None]] = None

    def run(self, scope: FlowScope) -> Dict[str, object]:
        env: Dict[str, object] = {}
        for arg in scope.args:
            unit = unit_of_identifier(arg)
            if unit is not None:
                env[arg] = unit
        self.walk(scope.body, env)
        return env

    # -- lattice ---------------------------------------------------------------

    def join_values(self, a: object, b: object) -> object:
        return a if a == b else None

    def _mismatch(self, node: ast.AST, left: str, right: str, context: str) -> None:
        if self.on_mismatch is not None:
            self.on_mismatch(node, left, right, context)

    # -- assignment check ------------------------------------------------------

    def assign(self, target: ast.expr, value: object, env: Dict[str, object]) -> None:
        declared: Optional[str] = None
        if isinstance(target, ast.Name):
            declared = unit_of_identifier(target.id)
        elif isinstance(target, ast.Attribute):
            declared = unit_of_identifier(target.attr)
        if (
            declared is not None
            and isinstance(value, str)
            and value in (BITS, BYTES)
            and value != declared
        ):
            self._mismatch(target, declared, value, "assignment")
            # The declaration wins: downstream reads use the name's unit.
            value = declared
        super().assign(target, value if value in (BITS, BYTES) else declared, env)

    # -- expressions -----------------------------------------------------------

    def eval_expr(self, expr: ast.expr, env: Dict[str, object]) -> object:
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            return unit_of_identifier(expr.id)
        if isinstance(expr, ast.Attribute):
            dotted = dotted_name(expr)
            if dotted is not None and dotted in env:
                return env[dotted]
            return unit_of_identifier(expr.attr)
        if isinstance(expr, ast.Subscript):
            # level_bits[i] is one element of a bits-named sequence.
            self.eval_expr(expr.slice, env)
            return self.eval_expr(expr.value, env)
        if isinstance(expr, ast.UnaryOp):
            return self.eval_expr(expr.operand, env)
        if isinstance(expr, ast.BinOp):
            return self._binop_unit(expr, env)
        if isinstance(expr, ast.Compare):
            self._compare_units(expr, env)
            return None
        if isinstance(expr, ast.Call):
            return self._call_unit(expr, env)
        if isinstance(expr, ast.IfExp):
            self.eval_expr(expr.test, env)
            then = self.eval_expr(expr.body, env)
            other = self.eval_expr(expr.orelse, env)
            return self.join_values(then, other)
        if isinstance(expr, ast.NamedExpr):
            value = self.eval_expr(expr.value, env)
            self.assign(expr.target, value, env)
            return value
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.eval_expr(child, env)
        return None

    @staticmethod
    def _is_eight(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Constant) and expr.value == 8

    def _binop_unit(self, expr: ast.BinOp, env: Dict[str, object]) -> Optional[str]:
        left = self.eval_expr(expr.left, env)
        right = self.eval_expr(expr.right, env)
        op = expr.op
        if isinstance(op, ast.Mult):
            # bytes * 8 -> bits (either operand order).
            if left == BYTES and self._is_eight(expr.right):
                return BITS
            if right == BYTES and self._is_eight(expr.left):
                return BITS
            # count * bits -> bits, etc.: keep whichever unit is known.
            if left in (BITS, BYTES) and right is None:
                return str(left)
            if right in (BITS, BYTES) and left is None:
                return str(right)
            return None
        if isinstance(op, (ast.FloorDiv, ast.Div)):
            if left == BITS and self._is_eight(expr.right):
                return BYTES
            if left in (BITS, BYTES) and right is None:
                return str(left)
            return None
        if isinstance(op, ast.Mod):
            return str(left) if left in (BITS, BYTES) else None
        if isinstance(op, (ast.Add, ast.Sub)):
            if (
                left in (BITS, BYTES)
                and right in (BITS, BYTES)
                and left != right
            ):
                self._mismatch(expr, str(left), str(right), "arithmetic")
                return None
            if left in (BITS, BYTES):
                return str(left)
            if right in (BITS, BYTES):
                return str(right)
            return None
        return None

    def _compare_units(self, expr: ast.Compare, env: Dict[str, object]) -> None:
        operands = [expr.left, *expr.comparators]
        units = [self.eval_expr(operand, env) for operand in operands]
        for index, op in enumerate(expr.ops):
            if isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot)):
                continue
            left, right = units[index], units[index + 1]
            if (
                left in (BITS, BYTES)
                and right in (BITS, BYTES)
                and left != right
            ):
                self._mismatch(expr, str(left), str(right), "comparison")

    def _call_unit(self, expr: ast.Call, env: Dict[str, object]) -> Optional[str]:
        resolved = self.resolve_call(expr.func)
        tail = resolved.rsplit(".", 1)[-1] if resolved else None
        arg_units = [
            self.eval_expr(a.value if isinstance(a, ast.Starred) else a, env)
            for a in expr.args
        ]
        for keyword in expr.keywords:
            self.eval_expr(keyword.value, env)
        if tail in ("min", "max"):
            known = {u for u in arg_units if u in (BITS, BYTES)}
            if len(known) > 1:
                self._mismatch(expr, BITS, BYTES, f"{tail}() arguments")
                return None
            if len(known) == 1 and all(u is not None for u in arg_units):
                return str(next(iter(known)))
            return None
        if tail == "len":
            if expr.args:
                target = expr.args[0]
                name = None
                if isinstance(target, ast.Attribute):
                    name = target.attr
                elif isinstance(target, ast.Name):
                    name = target.id
                if name is not None and name.lower() in _LEN_BYTES_ARGS:
                    return BYTES
            return None
        if tail is not None and tail in _CALL_UNITS:
            return _CALL_UNITS[tail]
        return None


# ---------------------------------------------------------------------------
# Packet typestate


@dataclass(frozen=True)
class StateEvent:
    """One typestate violation observed during the walk."""

    node: ast.AST
    kind: str  # "trim-after-seal" | "double-seal" | "mutate-after-seal"
    #           | "send-unsealed" | "verify-unused"
    detail: str


_PACKET_MUTABLE_ATTRS: Set[str] = {"payload", "grad_header", "int_ext"}
_SEND_METHODS: Set[str] = {"send"}


class PacketStateFlow(_ForwardWalker):
    """Typestate for Packet locals: build → seal() → send.

    Only packets *constructed in the scope under analysis* get a state;
    parameters and attribute loads are ``unknown`` (a switch legitimately
    trims a sealed packet it received — the sealed-trim prohibition is a
    sender-side rule, and the sender is where the constructor is).
    """

    def __init__(self, resolve_call: Callable[[ast.AST], Optional[str]]) -> None:
        self.resolve_call = resolve_call
        self.events: List[StateEvent] = []

    def run(self, scope: FlowScope) -> List[StateEvent]:
        self.events = []
        env: Dict[str, object] = {}
        self.walk(scope.body, env)
        return self.events

    # -- lattice ---------------------------------------------------------------

    def join_values(self, a: object, b: object) -> object:
        return a if a == b else ST_UNKNOWN

    def _event(self, node: ast.AST, kind: str, detail: str) -> None:
        self.events.append(StateEvent(node=node, kind=kind, detail=detail))

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _state_of(value: object) -> Optional[str]:
        return value if value in (ST_BUILT, ST_BUILT_EMPTY, ST_SEALED) else None

    def _packet_constructor_state(self, call: ast.Call) -> Optional[str]:
        resolved = self.resolve_call(call.func)
        if resolved is None or resolved.rsplit(".", 1)[-1] != "Packet":
            return None
        for keyword in call.keywords:
            if keyword.arg == "payload":
                value = keyword.value
                if isinstance(value, ast.Constant) and value.value in (b"", ""):
                    return ST_BUILT_EMPTY
                return ST_BUILT
        return ST_BUILT_EMPTY

    def _receiver_name(self, call: ast.Call) -> Optional[str]:
        """Dotted name of ``x`` in ``x.method(...)``, else None."""
        if isinstance(call.func, ast.Attribute):
            return dotted_name(call.func.value)
        return None

    # -- expressions -----------------------------------------------------------

    def eval_expr(self, expr: ast.expr, env: Dict[str, object]) -> object:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            dotted = dotted_name(expr)
            if dotted is not None:
                return env.get(dotted)
            self.eval_expr(expr.value, env)
            return None
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.NamedExpr):
            value = self.eval_expr(expr.value, env)
            self.assign(expr.target, value, env)
            return value
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.eval_expr(child, env)
        return None

    def _eval_call(self, call: ast.Call, env: Dict[str, object]) -> object:
        built = self._packet_constructor_state(call)
        if built is not None:
            for keyword in call.keywords:
                self.eval_expr(keyword.value, env)
            for arg in call.args:
                self.eval_expr(arg, env)
            return built

        method: Optional[str] = None
        receiver: Optional[str] = None
        if isinstance(call.func, ast.Attribute):
            method = call.func.attr
            receiver = self._receiver_name(call)
        resolved = self.resolve_call(call.func)
        state = self._state_of(env.get(receiver)) if receiver is not None else None

        if method == "seal" and receiver is not None:
            if state == ST_SEALED:
                self._event(
                    call, "double-seal", f"{receiver}.seal() called on an already-sealed packet"
                )
            if state is not None or receiver in env:
                env[receiver] = ST_SEALED
            return ST_SEALED if state is not None else None
        if method == "trim" and receiver is not None and not call.args:
            if state == ST_SEALED:
                self._event(
                    call,
                    "trim-after-seal",
                    f"{receiver}.trim() on a packet already sealed in this scope",
                )
            return state
        if resolved is not None and resolved.rsplit(".", 1)[-1] == "trim_to_bits":
            if call.args:
                target = call.args[0]
                dotted = dotted_name(target)
                if dotted is not None and self._state_of(env.get(dotted)) == ST_SEALED:
                    self._event(
                        call,
                        "trim-after-seal",
                        f"trim_to_bits({dotted}, ...) on a packet already sealed "
                        "in this scope",
                    )
                for arg in call.args[1:]:
                    self.eval_expr(arg, env)
                return self._state_of(env.get(dotted)) if dotted is not None else None
        if method == "clone" and receiver is not None:
            return state
        if method == "verify" and receiver is not None:
            return None
        if method in _SEND_METHODS:
            for arg in call.args:
                dotted = dotted_name(arg)
                if dotted is not None:
                    arg_state = self._state_of(env.get(dotted))
                    if arg_state == ST_BUILT:
                        self._event(
                            call,
                            "send-unsealed",
                            f"{dotted} carries a payload but is sent without seal()",
                        )
                    elif arg_state is None:
                        self.eval_expr(arg, env)
                else:
                    self.eval_expr(arg, env)
            for keyword in call.keywords:
                self.eval_expr(keyword.value, env)
            return None

        for arg in call.args:
            inner = arg.value if isinstance(arg, ast.Starred) else arg
            self.eval_expr(inner, env)
        for keyword in call.keywords:
            self.eval_expr(keyword.value, env)
        self.eval_expr(call.func, env)
        return None

    # -- statements ------------------------------------------------------------

    def walk_stmt(self, stmt: ast.stmt, env: Dict[str, object]) -> None:
        # A bare `pkt.verify()` statement discards the corruption verdict.
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "verify"
                and not call.args
                and not call.keywords
            ):
                receiver = self._receiver_name(call)
                self._event(
                    call,
                    "verify-unused",
                    f"result of {receiver or '...'}.verify() is discarded — corrupted "
                    "payloads go undetected",
                )
        super().walk_stmt(stmt, env)

    def handle_attribute_store(
        self, target: ast.Attribute, value: object, env: Dict[str, object]
    ) -> None:
        if target.attr in _PACKET_MUTABLE_ATTRS:
            base = dotted_name(target.value)
            if base is not None and self._state_of(env.get(base)) == ST_SEALED:
                self._event(
                    target,
                    "mutate-after-seal",
                    f"{base}.{target.attr} assigned after seal() — the checksum "
                    "no longer covers the payload",
                )
