"""SARIF 2.1.0 output for GitHub code scanning.

One run, one driver (``repro-lint``), the full rule catalogue embedded
as ``reportingDescriptor``s, and one result per finding with a stable
``partialFingerprints`` entry (the same fingerprint the baseline file
uses, so code scanning's alert dedup and the local baseline agree on
identity).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence

from .baseline import finding_fingerprint
from .engine import Finding, Rule

__all__ = ["to_sarif", "SARIF_SCHEMA_URI", "SARIF_VERSION"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_URI = "https://github.com/repro/trimmable-gradients"


def _artifact_uri(path: str, root: Path) -> str:
    """Repo-relative posix URI when possible (code scanning requires it)."""
    candidate = Path(path)
    try:
        resolved = candidate.resolve()
        return resolved.relative_to(root.resolve()).as_posix()
    except (OSError, ValueError):
        return candidate.as_posix()


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    return {
        "id": rule.name,
        "name": rule.name,
        "shortDescription": {"text": rule.description or rule.name},
        "help": {"text": rule.hint or rule.description or rule.name},
        "defaultConfiguration": {
            "level": "error" if rule.severity == "error" else "warning"
        },
        "properties": {
            "scope": list(rule.scope),
            "version": rule.version,
        },
    }


def to_sarif(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    root: "Path | None" = None,
    tool_version: str = "0",
) -> Dict[str, object]:
    """Build the SARIF document for ``findings``.

    ``root`` anchors artifact URIs (defaults to the current directory,
    which in CI is the checkout root — exactly what code scanning
    expects).  Findings whose rule is not in ``rules`` (e.g. the
    synthetic ``parse-error``) get an on-the-fly descriptor.
    """
    base = root if root is not None else Path.cwd()
    descriptors: List[Dict[str, object]] = [_rule_descriptor(rule) for rule in rules]
    index_by_rule: Dict[str, int] = {rule.name: i for i, rule in enumerate(rules)}
    severity_by_rule: Dict[str, str] = {rule.name: rule.severity for rule in rules}

    results: List[Dict[str, object]] = []
    for finding in findings:
        if finding.rule not in index_by_rule:
            index_by_rule[finding.rule] = len(descriptors)
            severity_by_rule[finding.rule] = finding.severity
            descriptors.append(
                {
                    "id": finding.rule,
                    "name": finding.rule,
                    "shortDescription": {"text": finding.rule},
                    "defaultConfiguration": {
                        "level": "error" if finding.severity == "error" else "warning"
                    },
                }
            )
        message = finding.message
        if finding.hint:
            message = f"{message} (hint: {finding.hint})"
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": index_by_rule[finding.rule],
                "level": "error" if finding.severity == "error" else "warning",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _artifact_uri(finding.path, base),
                            },
                            "region": {
                                "startLine": max(1, finding.line),
                                "startColumn": max(1, finding.col),
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproLint/v1": finding_fingerprint(finding),
                },
            }
        )

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _TOOL_URI,
                        "version": tool_version,
                        "rules": descriptors,
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
