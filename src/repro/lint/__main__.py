"""``python -m repro.lint`` — mirrors the ``repro-lint`` console script."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
