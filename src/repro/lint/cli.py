"""``repro-lint`` — run the invariant checker from the command line.

Usage::

    repro-lint                     # lint src/repro (auto-detected)
    repro-lint src/repro tests     # explicit paths
    repro-lint --select float-eq,print-call path/to/file.py
    repro-lint --format json       # machine-readable findings
    repro-lint --format sarif      # SARIF 2.1.0 for code scanning
    repro-lint --changed-only      # only files touched per git
    repro-lint --jobs 4            # lint files in parallel
    repro-lint --cache .repro-lint-cache.json   # incremental re-runs
    repro-lint --list-rules        # what is checked, and why

A committed ``.repro-lint-baseline.json`` (auto-discovered by walking up
from the linted paths; override with ``--baseline``, disable with
``--no-baseline``) subtracts accepted findings before the exit status is
decided.  ``--write-baseline`` records the current findings as accepted.

Exit status: 0 when clean (ignoring baselined findings), 1 when any new
finding survives suppression, 2 on usage errors.  Findings go to stdout,
one per line; bookkeeping (baseline/cache statistics) goes to stderr.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .baseline import Baseline, BaselineEntry, discover_baseline
from .cache import LintCache, file_digest, rules_signature
from .engine import Finding, LintEngine, Rule, collect_files
from .rules import ALL_RULES, rules_by_name
from .sarif import to_sarif


def _default_paths() -> List[Path]:
    """``src/repro`` under the current directory, else the installed package."""
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return [candidate]
    return [Path(__file__).resolve().parent.parent]


def _parse_rule_list(text: str, parser: argparse.ArgumentParser) -> List[Rule]:
    known = rules_by_name()
    chosen: List[Rule] = []
    for name in (part.strip() for part in text.split(",")):
        if not name:
            continue
        if name not in known:
            parser.error(f"unknown rule {name!r}; known: {', '.join(sorted(known))}")
        chosen.append(known[name])
    return chosen


def _git_changed_files(diff_base: Optional[str]) -> Optional[Set[Path]]:
    """Resolved paths of files git considers changed, or None outside a repo.

    With ``diff_base`` the set is ``git diff --name-only <base>`` plus
    untracked files; without it, anything the working tree has touched
    relative to HEAD (staged, unstaged, or untracked).
    """

    def run(*argv: str) -> Optional[List[str]]:
        try:
            proc = subprocess.run(
                ["git", *argv], capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        return [line for line in proc.stdout.splitlines() if line]

    top = run("rev-parse", "--show-toplevel")
    if not top:
        return None
    root = Path(top[0])
    changed = run("diff", "--name-only", diff_base or "HEAD", "--")
    untracked = run("ls-files", "--others", "--exclude-standard")
    if changed is None or untracked is None:
        return None
    return {(root / name).resolve() for name in [*changed, *untracked]}


def _lint_worker(payload: Tuple[str, Tuple[str, ...]]) -> List[Finding]:
    """Module-level worker so ``--jobs`` can pickle it into subprocesses.

    Rules carry compiled state that does not pickle; the worker rebuilds
    the engine from rule *names* instead.
    """
    path_str, rule_names = payload
    known = rules_by_name()
    engine = LintEngine([known[name] for name in rule_names])
    return engine.lint_file(Path(path_str))


def _lint_files(files: Sequence[Path], rules: Sequence[Rule], jobs: int) -> List[Finding]:
    """Lint ``files``, fanning out over ``jobs`` worker processes when > 1."""
    if jobs <= 1 or len(files) <= 1:
        engine = LintEngine(list(rules))
        findings: List[Finding] = []
        for path in files:
            findings.extend(engine.lint_file(path))
        return findings
    rule_names = tuple(rule.name for rule in rules)
    payloads = [(str(path), rule_names) for path in files]
    findings = []
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        for per_file in pool.map(_lint_worker, payloads):
            findings.extend(per_file)
    return findings


def _load_baseline(
    args: argparse.Namespace, paths: Sequence[Path], parser: argparse.ArgumentParser
) -> Optional[Baseline]:
    """The baseline to apply, honoring --no-baseline/--baseline/auto-discovery."""
    if args.no_baseline:
        return None
    if args.baseline is not None:
        if not args.baseline.is_file() and not args.write_baseline:
            parser.error(f"no such baseline file: {args.baseline}")
        if not args.baseline.is_file():
            return None
        try:
            return Baseline.load(args.baseline)
        except ValueError as exc:
            parser.error(str(exc))
    discovered = discover_baseline(list(paths))
    if discovered is None:
        return None
    try:
        return Baseline.load(discovered)
    except ValueError as exc:
        parser.error(str(exc))
    return None  # unreachable; parser.error raises


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the trimmable-gradients repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="PATH",
        help="baseline file of accepted findings "
        "(default: auto-discover .repro-lint-baseline.json upward from the lint paths)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        metavar="PATH",
        help="incremental-analysis cache file; unchanged files reuse cached findings",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files git reports as changed (see --diff-base)",
    )
    parser.add_argument(
        "--diff-base",
        metavar="REF",
        help="git ref to diff against for --changed-only (default: working tree vs HEAD)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files in N parallel processes (default: 1)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.scope) if rule.scope else "whole package"
            sys.stdout.write(f"{rule.name} ({rule.severity}; scope: {scope})\n")
            sys.stdout.write(f"    {rule.description}\n")
        return 0

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    rules: List[Rule] = list(ALL_RULES)
    if args.select:
        rules = _parse_rule_list(args.select, parser)
    if args.ignore:
        ignored = {rule.name for rule in _parse_rule_list(args.ignore, parser)}
        rules = [rule for rule in rules if rule.name not in ignored]
    if not rules:
        parser.error("no rules left to run after --select/--ignore")

    paths = args.paths or _default_paths()
    for path in paths:
        if not path.exists():
            parser.error(f"no such file or directory: {path}")

    files = collect_files(paths)

    if args.changed_only:
        changed = _git_changed_files(args.diff_base)
        if changed is None:
            parser.error("--changed-only requires running inside a git repository")
        files = [path for path in files if path.resolve() in changed]

    cache: Optional[LintCache] = None
    cached_findings: List[Finding] = []
    to_lint: List[Path] = files
    if args.cache is not None:
        signature = rules_signature(rules)
        cache = LintCache.load(args.cache, signature)
        digests: Dict[Path, Optional[str]] = {path: file_digest(path) for path in files}
        to_lint = []
        for path in files:
            digest = digests[path]
            hit = cache.get(path, digest) if digest is not None else None
            if hit is None:
                to_lint.append(path)
            else:
                cached_findings.extend(hit)

    fresh_findings = _lint_files(to_lint, rules, args.jobs)

    if cache is not None:
        by_file: Dict[str, List[Finding]] = {str(path): [] for path in to_lint}
        for finding in fresh_findings:
            by_file.setdefault(finding.path, []).append(finding)
        for path in to_lint:
            digest = file_digest(path)
            if digest is not None:
                cache.put(path, digest, by_file.get(str(path), []))
        cache.prune(files)
        cache.save()
        sys.stderr.write(
            f"repro-lint: cache {cache.hits} hit(s), {cache.misses} miss(es)\n"
        )

    findings = sorted(
        [*cached_findings, *fresh_findings],
        key=lambda f: (f.path, f.line, f.col, f.rule),
    )

    baseline = _load_baseline(args, paths, parser)

    if args.write_baseline:
        target = args.baseline or (baseline.path if baseline else None)
        if target is None:
            target = Path.cwd() / ".repro-lint-baseline.json"
        merged: Dict[str, BaselineEntry] = dict(baseline.entries) if baseline else {}
        for entry in Baseline.from_findings(findings).entries.values():
            merged.setdefault(entry.fingerprint, entry)
        Baseline(list(merged.values()), path=Path(target)).save()
        sys.stderr.write(
            f"repro-lint: wrote {len(merged)} accepted finding(s) to {target}\n"
        )
        return 0

    accepted: List[Finding] = []
    stale: List[BaselineEntry] = []
    if baseline is not None:
        findings, accepted, stale = baseline.apply(findings)
        if accepted:
            sys.stderr.write(
                f"repro-lint: {len(accepted)} baselined finding(s) suppressed"
                f" ({baseline.path})\n"
            )
        for entry in stale:
            sys.stderr.write(
                f"repro-lint: stale baseline entry {entry.fingerprint}"
                f" ({entry.rule} in {entry.path}) matched nothing\n"
            )

    if args.format == "json":
        sys.stdout.write(json.dumps([f.to_json() for f in findings], indent=2) + "\n")
    elif args.format == "sarif":
        document = to_sarif(findings, rules)
        sys.stdout.write(json.dumps(document, indent=2) + "\n")
    else:
        for finding in findings:
            sys.stdout.write(finding.format() + "\n")
        summary = f"{len(findings)} finding(s) in {len(paths)} path(s)\n"
        sys.stdout.write(summary if findings else "repro-lint: clean\n")

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
