"""``repro-lint`` — run the invariant checker from the command line.

Usage::

    repro-lint                     # lint src/repro (auto-detected)
    repro-lint src/repro tests     # explicit paths
    repro-lint --select float-eq,print-call path/to/file.py
    repro-lint --format json       # machine-readable findings
    repro-lint --list-rules        # what is checked, and why

Exit status: 0 when clean, 1 when any finding survives suppression,
2 on usage errors.  Findings go to stdout; one per line.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import LintEngine, Rule
from .rules import ALL_RULES, rules_by_name


def _default_paths() -> List[Path]:
    """``src/repro`` under the current directory, else the installed package."""
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return [candidate]
    return [Path(__file__).resolve().parent.parent]


def _parse_rule_list(text: str, parser: argparse.ArgumentParser) -> List[Rule]:
    known = rules_by_name()
    chosen: List[Rule] = []
    for name in (part.strip() for part in text.split(",")):
        if not name:
            continue
        if name not in known:
            parser.error(f"unknown rule {name!r}; known: {', '.join(sorted(known))}")
        chosen.append(known[name])
    return chosen


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the trimmable-gradients repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.scope) if rule.scope else "whole package"
            sys.stdout.write(f"{rule.name} ({rule.severity}; scope: {scope})\n")
            sys.stdout.write(f"    {rule.description}\n")
        return 0

    rules: List[Rule] = list(ALL_RULES)
    if args.select:
        rules = _parse_rule_list(args.select, parser)
    if args.ignore:
        ignored = {rule.name for rule in _parse_rule_list(args.ignore, parser)}
        rules = [rule for rule in rules if rule.name not in ignored]
    if not rules:
        parser.error("no rules left to run after --select/--ignore")

    paths = args.paths or _default_paths()
    for path in paths:
        if not path.exists():
            parser.error(f"no such file or directory: {path}")

    engine = LintEngine(rules)
    findings = engine.lint_paths(paths)

    if args.format == "json":
        sys.stdout.write(json.dumps([f.to_json() for f in findings], indent=2) + "\n")
    else:
        for finding in findings:
            sys.stdout.write(finding.format() + "\n")
        summary = f"{len(findings)} finding(s) in {len(paths)} path(s)\n"
        sys.stdout.write(summary if findings else "repro-lint: clean\n")

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
