"""Repo-specific static analysis: AST invariant checks for the reproduction.

The test suite can only spot-check the reproduction's core invariants —
shared randomness (sender and receiver must draw identical streams),
sim-time purity (no wall-clock in the discrete-event simulator), and the
codec registry contract.  This package checks them *statically*: every
``src/repro`` module is parsed and walked by the rules in
:mod:`repro.lint.rules`, and CI fails on any finding.

See ``docs/static_analysis.md`` for the rule catalogue, and suppress a
deliberate violation with ``# repro-lint: disable=<rule>`` on the
offending line (or ``disable-file=<rule>`` anywhere in the file).
"""

from .baseline import Baseline, BaselineEntry, discover_baseline, finding_fingerprint
from .cache import LintCache, file_digest, rules_signature
from .engine import Finding, LintEngine, Rule, SourceModule, collect_files, package_relative
from .rules import ALL_RULES, rules_by_name
from .sarif import to_sarif

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintCache",
    "LintEngine",
    "Rule",
    "SourceModule",
    "collect_files",
    "discover_baseline",
    "file_digest",
    "finding_fingerprint",
    "package_relative",
    "rules_by_name",
    "rules_signature",
    "to_sarif",
]
