"""The repo-specific invariant rules.

Each rule protects a correctness property the test suite can only
spot-check (see ``docs/static_analysis.md`` for the full rationale):

* ``bare-randomness`` — SD/RHT shared-randomness decoding breaks if any
  encode-path randomness bypasses :mod:`repro.transforms.prng`.
* ``wall-clock-in-sim`` — the discrete-event simulator must never mix
  wall-clock time into sim-time.
* ``codec-contract`` — registered codecs must carry their registry
  identity and the encode/decode pair.
* ``float-eq`` — exact float comparison hides tolerance bugs in the
  numeric modules.
* ``mutable-default`` — shared mutable default arguments.
* ``print-call`` — library output goes through :mod:`logging`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .dataflow import ImportTracker, dotted_name
from .engine import Finding, Rule, SourceModule
from .flow_rules import FLOW_RULES

__all__ = [
    "ALL_RULES",
    "BareRandomnessRule",
    "CodecContractRule",
    "FloatEqRule",
    "ImportTracker",
    "MutableDefaultRule",
    "PrintCallRule",
    "WallClockInSimRule",
    "dotted_name",
    "rules_by_name",
]


#: Legacy global-state samplers of ``numpy.random`` (the module-level API).
_NUMPY_SAMPLERS: Set[str] = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "bytes", "choice", "shuffle", "permutation", "standard_normal",
    "normal", "uniform", "binomial", "poisson", "exponential", "beta",
    "gamma", "laplace", "lognormal", "get_state", "set_state", "RandomState",
}

#: Stdlib :mod:`random` functions (all draw from hidden global state).
_STDLIB_SAMPLERS: Set[str] = {
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "lognormvariate",
    "betavariate", "expovariate", "gammavariate", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
    "getrandbits", "randbytes",
}


class BareRandomnessRule(Rule):
    """Randomness in codec/transport/train paths must use prng streams."""

    name = "bare-randomness"
    description = (
        "no ad-hoc np.random.* / random.* / np.random.default_rng() in the "
        "shared-randomness code paths"
    )
    hint = (
        "draw from repro.transforms.prng (StreamKey(...).spawn() or "
        "shared_generator(...)) so sender and receiver regenerate the "
        "same stream"
    )
    scope = (
        "core/", "transforms/", "collectives/", "transport/", "train/",
        "faults/", "resilience/",
    )
    exempt = ("transforms/prng.py",)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        tracker = ImportTracker(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = tracker.resolve_call(node.func)
            if target is None:
                continue
            if target == "numpy.random.default_rng":
                yield self.finding(
                    module,
                    node,
                    "np.random.default_rng() bypasses the shared-randomness "
                    "stream registry",
                )
            elif target.startswith("numpy.random."):
                attr = target.rsplit(".", 1)[1]
                if attr in _NUMPY_SAMPLERS:
                    yield self.finding(
                        module, node, f"bare numpy.random.{attr}() draws from global state"
                    )
            elif target.startswith("random."):
                attr = target.rsplit(".", 1)[1]
                if attr in _STDLIB_SAMPLERS:
                    yield self.finding(
                        module, node, f"stdlib random.{attr}() draws from global state"
                    )


#: Wall-clock sources that must not leak into sim-time code.
_WALL_CLOCK_CALLS: Set[str] = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


class WallClockInSimRule(Rule):
    """Sim-time code must derive time from the event loop, never the host."""

    name = "wall-clock-in-sim"
    description = "no wall-clock reads (time.time()/monotonic()/datetime.now()) in sim-time code"
    hint = (
        "use Simulator.now / event timestamps; wall-clock spans belong in "
        "the repro.obs tracer's explicit capture points"
    )
    scope = ("net/", "transport/", "faults/", "resilience/")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        tracker = ImportTracker(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = tracker.resolve_call(node.func)
            if target in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node, f"{target}() reads the wall clock inside sim-time code"
                )


class CodecContractRule(Rule):
    """``@register_codec`` classes must carry identity + encode/decode."""

    name = "codec-contract"
    description = (
        "registered codec classes must declare literal name/codec_id and "
        "define the encode/decode pair"
    )
    hint = (
        "declare `name = \"...\"` and `codec_id = <int>` in the class body "
        "and implement both encode() and decode()"
    )
    scope = ("core/",)

    _REQUIRED_METHODS = ("encode", "decode")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(self._is_register_codec(deco) for deco in node.decorator_list):
                continue
            methods = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            attrs = self._class_constants(node)
            for method in self._REQUIRED_METHODS:
                if method not in methods:
                    yield self.finding(
                        module, node, f"registered codec {node.name} does not define {method}()"
                    )
            if not isinstance(attrs.get("name"), str):
                yield self.finding(
                    module,
                    node,
                    f"registered codec {node.name} must declare a literal `name` string",
                )
            if not isinstance(attrs.get("codec_id"), int) or isinstance(
                attrs.get("codec_id"), bool
            ):
                yield self.finding(
                    module,
                    node,
                    f"registered codec {node.name} must declare a literal integer `codec_id`",
                )

    @staticmethod
    def _is_register_codec(deco: ast.AST) -> bool:
        if isinstance(deco, ast.Call):
            deco = deco.func
        dotted = dotted_name(deco)
        return dotted is not None and dotted.split(".")[-1] == "register_codec"

    @staticmethod
    def _class_constants(node: ast.ClassDef) -> Dict[str, object]:
        constants: Dict[str, object] = {}
        for stmt in node.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not isinstance(value, ast.Constant):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = value.value
        return constants


class FloatEqRule(Rule):
    """Exact ``==``/``!=``/``is``/``is not`` against float literals."""

    name = "float-eq"
    version = 2  # v2: also flags `is` / `is not` on float literals
    description = "no ==/!=/is/is not comparison against float literals in numeric modules"
    hint = (
        "use np.isclose/math.isclose with an explicit tolerance, or an "
        "ordering test (<=/>=) for sentinel values; `is` additionally "
        "depends on interning and is never correct for floats"
    )
    scope = (
        "core/", "transforms/", "nn/", "baselines/", "collectives/",
        "train/", "bench/", "resilience/",
    )

    _SYMBOLS = {ast.Eq: "==", ast.NotEq: "!=", ast.Is: "is", ast.IsNot: "is not"}

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq, ast.Is, ast.IsNot)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._is_float_literal(left) or self._is_float_literal(right):
                    symbol = self._SYMBOLS[type(op)]
                    kind = (
                        "identity" if isinstance(op, (ast.Is, ast.IsNot)) else "exact float"
                    )
                    yield self.finding(
                        module,
                        node,
                        f"{kind} comparison `{symbol}` against a float literal",
                    )

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)


class MutableDefaultRule(Rule):
    """Mutable default arguments are shared across calls."""

    name = "mutable-default"
    description = "no mutable default arguments (list/dict/set literals or constructors)"
    hint = "default to None (or use dataclasses.field(default_factory=...)) and build inside"

    _MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray"}

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {node.name}() is shared across calls",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CONSTRUCTORS
        )


class PrintCallRule(Rule):
    """Library code logs; it does not print."""

    name = "print-call"
    description = "no print() in library code (PR 1 moved output to logging)"
    hint = "use logging.getLogger(__name__); CLI entry points write to sys.stdout explicitly"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(module, node, "print() call in library code")


#: Every shipped rule, in documentation order: the per-line invariant
#: checks first, then the flow-aware families from :mod:`.flow_rules`.
ALL_RULES: Tuple[Rule, ...] = (
    BareRandomnessRule(),
    WallClockInSimRule(),
    CodecContractRule(),
    FloatEqRule(),
    MutableDefaultRule(),
    PrintCallRule(),
) + FLOW_RULES


def rules_by_name() -> Dict[str, Rule]:
    """Name → rule instance for every shipped rule."""
    return {rule.name: rule for rule in ALL_RULES}
