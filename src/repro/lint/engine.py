"""AST-walking lint engine: findings, suppressions, and file traversal.

The engine is deliberately small: a :class:`Rule` inspects one parsed
module at a time and yields :class:`Finding` records with ``file:line``
positions, a severity, and a fix hint.  The engine owns everything rules
should not care about — locating files, computing package-relative paths
(so rules can scope themselves to e.g. ``core/``), parsing, and honoring
``# repro-lint: disable=<rule>`` suppression comments.

Rules live in :mod:`repro.lint.rules`; the CLI in :mod:`repro.lint.cli`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "LintEngine",
    "Rule",
    "SourceModule",
    "package_relative",
]

#: Rule name that matches every rule in a suppression comment.
SUPPRESS_ALL = "all"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<file_scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source position.

    Attributes:
        rule: rule name (e.g. ``bare-randomness``).
        path: display path of the offending file.
        line: 1-based line number.
        col: 1-based column number.
        message: what is wrong, specifically.
        severity: ``"error"`` (gates CI) or ``"warning"``.
        hint: how to fix it — or how to suppress when intentional.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    hint: str = ""

    def format(self) -> str:
        """Render as ``path:line:col: severity[rule] message (hint: ...)``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.severity}[{self.rule}] {self.message}"
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable record (for ``repro-lint --format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "hint": self.hint,
        }


def package_relative(path: Path) -> str:
    """Path relative to the innermost ``repro`` package directory.

    ``src/repro/core/codec.py`` → ``core/codec.py``.  Rules scope
    themselves on this form, so the checker behaves identically whether
    invoked on ``src/repro``, an installed package, or a test fixture
    tree that mimics the package layout (``fixtures/repro/core/x.py``).
    Files outside any ``repro`` directory fall back to their own name.
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro" and index < len(parts) - 1:
            return "/".join(parts[index + 1 :])
    return path.name


@dataclass
class SourceModule:
    """One parsed Python file, ready for rules to inspect.

    Attributes:
        path: display path (what findings report).
        rel: package-relative posix path used for rule scoping.
        text: raw source.
        tree: parsed AST.
        line_suppressions: line number → rule names disabled on that line.
        file_suppressions: rule names disabled for the whole file.
    """

    path: str
    rel: str
    text: str
    tree: ast.Module
    line_suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_suppressions: FrozenSet[str] = frozenset()

    @classmethod
    def parse(cls, text: str, path: str = "<string>", rel: Optional[str] = None) -> "SourceModule":
        """Parse source text; raises ``SyntaxError`` on invalid input."""
        tree = ast.parse(text, filename=path)
        line_suppressions: Dict[int, FrozenSet[str]] = {}
        file_rules: set[str] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = frozenset(name.strip() for name in match.group("rules").split(","))
            if match.group("file_scope"):
                file_rules |= rules
            else:
                line_suppressions[lineno] = line_suppressions.get(lineno, frozenset()) | rules
        if rel is None:
            rel = package_relative(Path(path))
        return cls(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            line_suppressions=line_suppressions,
            file_suppressions=frozenset(file_rules),
        )

    def suppressed(self, finding: Finding) -> bool:
        """True when a disable comment covers this finding."""
        names = {finding.rule, SUPPRESS_ALL}
        if self.file_suppressions & names:
            return True
        return bool(self.line_suppressions.get(finding.line, frozenset()) & names)


class Rule:
    """Base class for one invariant check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one module.  ``scope`` lists package-relative
    path prefixes the rule applies to (empty = the whole package);
    ``exempt`` lists prefixes carved back out (e.g. the sanctioned
    randomness source ``transforms/prng.py``).
    """

    name: str = ""
    severity: str = "error"
    description: str = ""
    hint: str = ""
    scope: Tuple[str, ...] = ()
    exempt: Tuple[str, ...] = ()
    #: Bumped whenever the rule's behaviour changes; part of the
    #: incremental-cache signature so stale cached findings never survive
    #: a rule upgrade (see :mod:`repro.lint.cache`).
    version: int = 1

    def applies_to(self, rel: str) -> bool:
        """Whether this rule runs on the module at package-relative ``rel``."""
        if any(rel.startswith(prefix) for prefix in self.exempt):
            return False
        return not self.scope or any(rel.startswith(prefix) for prefix in self.scope)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Yield findings for one module; implemented by subclasses."""
        raise NotImplementedError

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        """Build a :class:`Finding` positioned at ``node``."""
        return Finding(
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
            hint=self.hint if hint is None else hint,
        )


class LintEngine:
    """Runs a set of rules over files, modules, or raw source text."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        names = [rule.name for rule in rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        self.rules: List[Rule] = list(rules)

    def lint_module(self, module: SourceModule) -> List[Finding]:
        """All unsuppressed findings for one parsed module."""
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(module.rel):
                continue
            for finding in rule.check(module):
                if not module.suppressed(finding):
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def lint_text(
        self, text: str, path: str = "<string>", rel: Optional[str] = None
    ) -> List[Finding]:
        """Lint raw source (used by the fixture tests)."""
        return self.lint_module(SourceModule.parse(text, path=path, rel=rel))

    def lint_file(self, path: Path) -> List[Finding]:
        """Lint one file; a syntax error becomes a ``parse-error`` finding."""
        try:
            text = path.read_text(encoding="utf-8")
            module = SourceModule.parse(text, path=str(path))
        except SyntaxError as exc:
            return [
                Finding(
                    rule="parse-error",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"cannot parse: {exc.msg}",
                )
            ]
        return self.lint_module(module)

    def lint_paths(self, paths: Iterable[Path]) -> List[Finding]:
        """Lint files and/or directory trees (``*.py``, sorted order)."""
        findings: List[Finding] = []
        for path in collect_files(paths):
            findings.extend(self.lint_file(path))
        return findings


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into the ordered list of ``*.py`` files.

    Directories are walked recursively in sorted order; explicit file
    arguments are kept as-is (even non-``.py`` ones — the caller asked).
    """
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files
