"""Incremental-analysis cache keyed by file content hash.

Flow-aware analysis is strictly per-module, so a file whose bytes have
not changed produces byte-identical findings — the cache exploits that:
one JSON document mapping file path → (content sha256, findings).  The
whole cache is invalidated when the *rule set* changes: the signature
folds in every rule's name, version, severity, and scoping, so bumping
``Rule.version`` after a behaviour change is enough to drop stale
entries.

CI persists the cache file across runs (keyed on the source tree hash);
locally ``repro-lint --cache`` gives sub-second re-runs on a warm tree.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .engine import Finding, Rule

__all__ = ["LintCache", "rules_signature", "file_digest", "DEFAULT_CACHE_NAME"]

#: Conventional cache file name (gitignored; CI caches it by source hash).
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"

#: Bump to invalidate every cache regardless of rule versions (schema or
#: engine-behaviour changes).
_SCHEMA = 1


def rules_signature(rules: Sequence[Rule]) -> str:
    """Stable digest of the rule set's identity and behaviour versions."""
    payload = [
        {
            "name": rule.name,
            "version": rule.version,
            "severity": rule.severity,
            "scope": list(rule.scope),
            "exempt": list(rule.exempt),
        }
        for rule in sorted(rules, key=lambda r: r.name)
    ]
    blob = json.dumps({"schema": _SCHEMA, "rules": payload}, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def file_digest(path: Path) -> Optional[str]:
    """sha256 of the file's bytes, or None when unreadable."""
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return None


class LintCache:
    """Findings per file, valid while the file's content hash matches."""

    def __init__(self, path: Path, signature: str) -> None:
        self.path = path
        self.signature = signature
        self._files: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Path, signature: str) -> "LintCache":
        """Load the cache; a missing/corrupt/stale file yields an empty one."""
        cache = cls(path, signature)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(raw, dict) or raw.get("schema") != _SCHEMA:
            return cache
        if raw.get("rules_signature") != signature:
            return cache  # rule set changed: every entry is stale
        files = raw.get("files")
        if isinstance(files, dict):
            cache._files = {
                str(key): value
                for key, value in files.items()
                if isinstance(value, dict)
            }
        return cache

    def save(self) -> None:
        """Persist atomically (write-then-rename)."""
        document = {
            "schema": _SCHEMA,
            "rules_signature": self.signature,
            "files": self._files,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
        tmp.replace(self.path)

    # -- lookup ----------------------------------------------------------------

    @staticmethod
    def _key(path: Path) -> str:
        return str(path.resolve())

    def get(self, path: Path, digest: str) -> Optional[List[Finding]]:
        """Cached findings for ``path`` at ``digest``, or None on miss."""
        entry = self._files.get(self._key(path))
        if entry is None or entry.get("sha256") != digest:
            self.misses += 1
            return None
        raw_findings = entry.get("findings")
        if not isinstance(raw_findings, list):
            self.misses += 1
            return None
        findings: List[Finding] = []
        for record in raw_findings:
            if not isinstance(record, dict):
                self.misses += 1
                return None
            try:
                findings.append(
                    Finding(
                        rule=str(record["rule"]),
                        path=str(record["path"]),
                        line=int(record["line"]),
                        col=int(record["col"]),
                        message=str(record["message"]),
                        severity=str(record["severity"]),
                        hint=str(record["hint"]),
                    )
                )
            except (KeyError, TypeError, ValueError):
                self.misses += 1
                return None
        self.hits += 1
        return findings

    def put(self, path: Path, digest: str, findings: Sequence[Finding]) -> None:
        self._files[self._key(path)] = {
            "sha256": digest,
            "findings": [finding.to_json() for finding in findings],
        }

    def prune(self, keep: Sequence[Path]) -> None:
        """Drop entries for files outside the current lint set."""
        wanted = {self._key(path) for path in keep}
        self._files = {key: value for key, value in self._files.items() if key in wanted}
