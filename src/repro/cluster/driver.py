"""Multi-tenant cluster driver: concurrent jobs on one shared fabric.

:class:`ClusterDriver` runs N :class:`~repro.train.ddp.DDPTrainer` jobs
*concurrently* on a single simulated fat-tree (or leaf–spine) while
background tenants load the same links.  Concurrency is wave-ordered and
fully deterministic:

* each job trains on its own thread, but a thread only ever runs between
  two barriers — it parks inside its :class:`FabricHook` the moment a
  round's gradients are encoded and packetized;
* the driver waits until **every** live job is parked, then launches all
  parked transfers at the same simulation instant on the shared network
  (per-flow ECMP spreads them across the fabric), runs the event loop
  until they reach terminal state or the deadline, and releases the jobs
  in fixed order.

Because only the driver thread ever touches the simulator, and job
threads compute on private state between barriers, a ``(scenario,
seed)`` pair always produces byte-identical reports — the property the
isolation regression tests pin down.

Attribution: every switch gets a ``flow_classifier`` that buckets trim
and drop verdicts by flow-id range — jobs own blocks above
:data:`JOB_FLOW_BASE`, tenants own blocks above
:data:`~repro.net.crosstraffic.CROSS_TRAFFIC_FLOW_BASE` — so the report
can say *whose* packets the fabric cut.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..collectives.hooks import CommHook
from ..core.codec import GradientCodec, codec_by_name
from ..core.packetizer import decode_packets, packetize
from ..net.crosstraffic import CROSS_TRAFFIC_FLOW_BASE
from ..net.topology import Network, fat_tree, leaf_spine
from ..packet.packet import Packet
from ..packet.trim import SingleLevelTrim
from ..transport.base import TransportSurrender
from ..transport.congestion import FixedWindow
from ..transport.trimming import TrimmingReceiver, TrimmingSender
from .scenario import ClusterScenario, JobSpec
from .tenants import TENANT_FLOW_BLOCK, TenantWorkload, tenant_flow_base

__all__ = ["JOB_FLOW_BASE", "JOB_FLOW_BLOCK", "FabricHook", "ClusterDriver"]

#: Training flows live in per-job blocks well clear of the transport
#: test range and below the cross-traffic space.
JOB_FLOW_BASE = 200_000
JOB_FLOW_BLOCK = 10_000

#: Wave execution slices the deadline into this many chunks so the event
#: loop can stop early once every transfer is terminal.
_DEADLINE_CHUNKS = 20


# -- placement -----------------------------------------------------------------


class HostAllocator:
    """Deterministic host placement over the topology's pods."""

    def __init__(self, pods: List[List[str]]) -> None:
        self.pods = [list(pod) for pod in pods]
        self._free = [list(pod) for pod in pods]

    def take(self, pod: int) -> str:
        """Claim the next free host in ``pod``."""
        pod %= len(self._free)
        if not self._free[pod]:
            raise ValueError(f"no free host left in pod {pod}")
        return self._free[pod].pop(0)

    def take_outside(self, pod: int, count: int) -> List[str]:
        """Claim ``count`` hosts round-robin from every other pod."""
        taken: List[str] = []
        order = [p for p in range(len(self._free)) if p != pod % len(self._free)]
        while len(taken) < count:
            progressed = False
            for p in order:
                if len(taken) >= count:
                    break
                if self._free[p]:
                    taken.append(self._free[p].pop(0))
                    progressed = True
            if not progressed:
                raise ValueError(
                    f"need {count} hosts outside pod {pod}, "
                    f"only {len(taken)} available"
                )
        return taken

    def free_in(self, pod: int) -> int:
        return len(self._free[pod % len(self._free)])


def topology_pods(scenario: ClusterScenario) -> List[List[str]]:
    """Host names grouped by pod (fat-tree) or leaf (leaf–spine)."""
    if scenario.topology == "fat-tree":
        half = scenario.k // 2
        return [
            [f"h{pod}_{e}_{i}" for e in range(half) for i in range(half)]
            for pod in range(scenario.k)
        ]
    return [
        [f"h{leaf}_{i}" for i in range(scenario.hosts_per_leaf)]
        for leaf in range(scenario.leaves)
    ]


@dataclass(frozen=True)
class JobPlacement:
    """Where one job's endpoints live on the fabric."""

    aggregator: str
    workers: Tuple[str, ...]


def place_jobs(
    scenario: ClusterScenario, allocator: HostAllocator
) -> List[JobPlacement]:
    """Spread each job's aggregator and workers across pods.

    Job ``j`` aggregates in pod ``j % P`` and worker ``w`` computes in
    pod ``(j + 1 + w) % P``, so every gradient flow crosses the fabric
    core — the contention the multi-tenant scenarios study.
    """
    pods = scenario.pods
    placements = []
    for j, job in enumerate(scenario.jobs):
        aggregator = allocator.take(j % pods)
        workers = tuple(
            allocator.take((j + 1 + w) % pods) for w in range(job.workers)
        )
        placements.append(JobPlacement(aggregator=aggregator, workers=workers))
    return placements


# -- wave protocol -------------------------------------------------------------


@dataclass
class _Transfer:
    """One worker's gradient message crossing the fabric this wave."""

    worker: int
    flow_id: int
    src: str
    dst: str
    packets: List[Packet]
    wire: Optional[List[Packet]] = None
    failure: Optional[str] = None
    fct_s: float = 0.0


@dataclass
class _WaveRequest:
    """Everything a parked job hands the driver for one round."""

    job_index: int
    epoch: int
    transfers: List[_Transfer]
    wave_end_s: float = 0.0


@dataclass
class _JobRuntime:
    """Driver-side state for one job thread."""

    spec: JobSpec
    placement: JobPlacement
    trainer: Any
    hook: "FabricHook"
    thread: Optional[threading.Thread] = None
    request: Optional[_WaveRequest] = None
    parked: threading.Event = field(default_factory=threading.Event)
    released: threading.Event = field(default_factory=threading.Event)
    finished: bool = False
    error: Optional[BaseException] = None
    fcts: List[float] = field(default_factory=list)


class FabricHook(CommHook):
    """A CommHook whose aggregation rides the shared cluster fabric.

    Mirrors :func:`~repro.collectives.ring.allreduce_mean` exactly —
    one message id per round, every worker's gradient crossing once,
    ``np.mean`` over what arrives — so a single job on an idle fabric
    reproduces the in-memory baseline bit for bit.  A transfer that
    surrenders or misses the wave deadline contributes a zero gradient
    (a degraded step), which is what keeps a job alive when a tenant
    storms the core.
    """

    def __init__(
        self,
        driver: "ClusterDriver",
        job_index: int,
        codec: GradientCodec,
        mtu: int = 1500,
        ef: bool = False,
    ) -> None:
        super().__init__()
        self.driver = driver
        self.job_index = job_index
        self.codec = codec
        self.mtu = mtu
        self.ef = ef
        self.waves = 0
        #: (epoch, fabric time at wave end) per round — the driver's
        #: source for per-job time-to-accuracy on the shared clock.
        self.wave_log: List[Tuple[int, float]] = []
        # DGC-style error feedback (see repro.resilience.ef for the
        # channel-wrapper variant): per-worker residual carried into the
        # next round, plus the running input/delivered sums the
        # telescoping monitor checks against.
        self._residuals: Dict[int, np.ndarray] = {}
        self._ef_input_sum: Dict[int, np.ndarray] = {}
        self._ef_delivered_sum: Dict[int, np.ndarray] = {}

    def _flow_id(self, worker: int) -> int:
        # Fresh ids every wave so a packet straggling past the deadline
        # can never be mistaken for the next round's data.
        base = JOB_FLOW_BASE + self.job_index * JOB_FLOW_BLOCK
        workers = len(self.driver.runtimes[self.job_index].placement.workers)
        return base + (self.waves * workers + worker) % JOB_FLOW_BLOCK

    def _aggregate(self, grads: List[np.ndarray], epoch: int) -> np.ndarray:
        message_id = self.next_message_id()
        placement = self.driver.runtimes[self.job_index].placement
        flats = [np.asarray(g, dtype=np.float64) for g in grads]
        if self.ef:
            # Error feedback: what the fabric lost last round rides
            # along with this round's gradient.
            carries = []
            for worker, flat in enumerate(flats):
                residual = self._residuals.get(worker)
                carries.append(flat if residual is None else flat + residual)
        else:
            carries = flats
        transfers: List[_Transfer] = []
        for worker, flat in enumerate(carries):
            enc = self.codec.encode(flat, epoch=epoch, message_id=message_id)
            flow_id = self._flow_id(worker)
            transfers.append(
                _Transfer(
                    worker=worker,
                    flow_id=flow_id,
                    src=placement.workers[worker],
                    dst=placement.aggregator,
                    packets=packetize(
                        enc,
                        src=placement.workers[worker],
                        dst=placement.aggregator,
                        mtu=self.mtu,
                        flow_id=flow_id,
                    ),
                )
            )
        request = _WaveRequest(
            job_index=self.job_index, epoch=epoch, transfers=transfers
        )
        self.driver.submit(self.job_index, request)
        self.waves += 1
        self.wave_log.append((epoch, request.wave_end_s))

        received: List[np.ndarray] = []
        for worker, (transfer, flat) in enumerate(zip(transfers, flats)):
            self.stats.messages += 1
            self.stats.coordinates += flat.size
            if transfer.wire is None:
                self.count_surrender()
                delivered = np.zeros_like(flat)
            else:
                wire = transfer.wire
                delivered = decode_packets(wire, self.codec)
                data = [
                    p for p in wire if p.grad_header and not p.grad_header.is_metadata
                ]
                trimmed = sum(1 for p in data if p.is_trimmed)
                self.stats.packets_total += len(data)
                self.stats.packets_trimmed += trimmed
                self.stats.bytes_sent += sum(p.wire_size for p in wire)
            if self.ef:
                delivered = np.asarray(delivered, dtype=np.float64)
                # residual_t = carry_t - delivered_t, so the telescoping
                # sum(delivered) + residual == sum(inputs) holds.
                self._residuals[worker] = carries[worker] - delivered
                if worker in self._ef_input_sum:
                    self._ef_input_sum[worker] = self._ef_input_sum[worker] + flat
                    self._ef_delivered_sum[worker] = (
                        self._ef_delivered_sum[worker] + delivered
                    )
                else:
                    self._ef_input_sum[worker] = flat.copy()
                    self._ef_delivered_sum[worker] = delivered.copy()
            received.append(delivered)
        return np.mean(received, axis=0)

    def count_surrender(self) -> None:
        self.channel.count_surrender()

    # -- error-feedback introspection -------------------------------------------

    def ef_residual_norms(self) -> Dict[int, float]:
        """Per-worker L2 norm of the current EF residual."""
        return {
            worker: float(np.linalg.norm(residual))
            for worker, residual in sorted(self._residuals.items())
        }

    def ef_telescoping_gap(self) -> float:
        """Max relative telescoping error across workers (0 when EF off).

        For each worker the DGC invariant says ``sum(delivered) +
        residual == sum(inputs)`` exactly in real arithmetic; in
        float64 the gap is rounding noise.  Anything materially larger
        means gradient mass was silently created or destroyed — the
        chaos campaign's EF monitor alarms on it.
        """
        worst = 0.0
        for worker, total_in in self._ef_input_sum.items():
            reconstructed = self._ef_delivered_sum[worker] + self._residuals[worker]
            gap = float(np.max(np.abs(total_in - reconstructed)))
            scale = 1.0 + float(np.max(np.abs(total_in)))
            worst = max(worst, gap / scale)
        return worst


# -- the driver ----------------------------------------------------------------


class ClusterDriver:
    """Build the fabric, place everyone, run all jobs to completion.

    Args:
        scenario: the declarative cluster description.
        seed: the run seed — drives job data/models/codecs, tenant
            traffic and the fabric's ECMP salt.
        target_top1: accuracy threshold for per-job time-to-accuracy.
    """

    def __init__(
        self, scenario: ClusterScenario, seed: int = 0, target_top1: float = 0.5
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.target_top1 = target_top1
        self.net = self._build_network()
        allocator = HostAllocator(topology_pods(scenario))
        placements = place_jobs(scenario, allocator)
        self.runtimes: List[_JobRuntime] = [
            self._build_job(index, spec, placement)
            for index, (spec, placement) in enumerate(
                zip(scenario.jobs, placements)
            )
        ]
        self.tenants: List[TenantWorkload] = [
            self._build_tenant(index, allocator)
            for index in range(len(scenario.tenants))
        ]
        #: owner -> {"trim": n, "drop": n} switch verdict attribution.
        self.attribution: Dict[str, Dict[str, int]] = {}
        for switch in self.net.switches.values():
            switch.flow_classifier = self._classify
        self.waves_run = 0
        self._ran = False

    # -- construction ----------------------------------------------------------

    @staticmethod
    def build_network(scenario: ClusterScenario, seed: int = 0) -> Network:
        """The fabric a ``(scenario, seed)`` pair runs on.

        Exposed so harnesses that only need the topology — the chaos
        campaign's target enumeration, placement studies — can build
        the exact same fabric without paying for job construction.
        """
        s = scenario
        trim_policy = SingleLevelTrim() if s.trim else None
        if s.topology == "fat-tree":
            return fat_tree(
                k=s.k,
                rate_bps=s.rate_bps,
                delay_s=s.delay_s,
                trim_policy=trim_policy,
                buffer_bytes=s.buffer_bytes,
                ecmp=s.ecmp,
                ecmp_seed=seed,
                host_burst=s.host_burst,
            )
        return leaf_spine(
            leaves=s.leaves,
            spines=s.spines,
            hosts_per_leaf=s.hosts_per_leaf,
            host_rate_bps=s.rate_bps,
            fabric_rate_bps=s.rate_bps,
            delay_s=s.delay_s,
            trim_policy=trim_policy,
            buffer_bytes=s.buffer_bytes,
            ecmp=s.ecmp,
            ecmp_seed=seed,
            host_burst=s.host_burst,
        )

    def _build_network(self) -> Network:
        return self.build_network(self.scenario, seed=self.seed)

    def _build_job(
        self, index: int, spec: JobSpec, placement: JobPlacement
    ) -> _JobRuntime:
        # Deferred: repro.train pulls in the whole nn stack.
        from ..nn.data import make_dataset
        from ..nn.models import MLP
        from ..train.ddp import DDPTrainer, TrainConfig

        offset = spec.seed_offset if spec.seed_offset is not None else index
        job_seed = self.seed + offset
        train_set, test_set = make_dataset(
            num_classes=8,
            train_per_class=16,
            test_per_class=8,
            image_size=8,
            noise=1.0,
            seed=job_seed,
        )
        model = MLP(192, [16], 8, seed=job_seed + 3)
        codec = codec_by_name(
            "rht", root_seed=job_seed + 1, row_size=spec.row_size
        )
        hook = FabricHook(
            driver=self,
            job_index=index,
            codec=codec,
            mtu=self.scenario.mtu,
            ef=spec.ef,
        )
        trainer = DDPTrainer(
            model,
            train_set,
            test_set,
            world_size=spec.workers,
            hook=hook,
            config=TrainConfig(
                epochs=spec.epochs,
                batch_size=spec.batch_size,
                lr=spec.lr,
                seed=job_seed,
                augment=True,
            ),
            label=spec.name,
        )
        return _JobRuntime(
            spec=spec, placement=placement, trainer=trainer, hook=hook
        )

    def _build_tenant(self, index: int, allocator: HostAllocator) -> TenantWorkload:
        spec = self.scenario.tenants[index]
        if spec.pattern == "incast":
            dst_hosts = [allocator.take(spec.dst_pod)]
            src_hosts = allocator.take_outside(spec.dst_pod, spec.flows)
        else:
            receivers = max(1, min(spec.flows, allocator.free_in(spec.dst_pod)))
            dst_hosts = [allocator.take(spec.dst_pod) for _ in range(receivers)]
            src_hosts = allocator.take_outside(spec.dst_pod, spec.flows)
        return TenantWorkload(
            self.net,
            spec,
            tenant_index=index,
            seed=self.seed,
            src_hosts=src_hosts,
            dst_hosts=dst_hosts,
        )

    # -- attribution ------------------------------------------------------------

    def _owner_of(self, flow_id: int) -> str:
        if flow_id >= CROSS_TRAFFIC_FLOW_BASE:
            index = (flow_id - CROSS_TRAFFIC_FLOW_BASE) // TENANT_FLOW_BLOCK - 1
            if 0 <= index < len(self.scenario.tenants):
                return self.scenario.tenants[index].name
            return "other"
        if flow_id >= JOB_FLOW_BASE:
            index = (flow_id - JOB_FLOW_BASE) // JOB_FLOW_BLOCK
            if index < len(self.scenario.jobs):
                return self.scenario.jobs[index].name
        return "other"

    def _classify(self, flow_id: int, verdict: str, kind: str) -> None:
        owner = self.attribution.setdefault(
            self._owner_of(flow_id), {"trim": 0, "drop": 0}
        )
        owner[verdict] = owner.get(verdict, 0) + 1

    # -- wave engine ------------------------------------------------------------

    def submit(self, job_index: int, request: _WaveRequest) -> None:
        """Called from a job thread: park until the driver ran the wave."""
        runtime = self.runtimes[job_index]
        runtime.request = request
        runtime.parked.set()
        runtime.released.wait()
        runtime.released.clear()

    def _execute_wave(self, requests: List[_WaveRequest]) -> None:
        sim = self.net.sim
        t0 = sim.now
        live = []
        for request in requests:  # fixed job order => deterministic
            for transfer in request.transfers:
                tx = self.net.hosts[transfer.src]
                rx = self.net.hosts[transfer.dst]

                def on_message(
                    packets: List[Packet], t: _Transfer = transfer
                ) -> None:
                    if t.wire is None:
                        t.wire = packets
                        t.fct_s = sim.now - t0

                def on_failure(
                    error: TransportSurrender, t: _Transfer = transfer
                ) -> None:
                    t.failure = error.reason

                TrimmingReceiver(
                    rx, flow_id=transfer.flow_id, on_message=on_message
                )
                sender = TrimmingSender(
                    tx,
                    flow_id=transfer.flow_id,
                    cc=FixedWindow(initial_window=128),
                )
                sender.send_message(transfer.packets, on_failure=on_failure)
                live.append((transfer, sender, tx, rx))
        chunk = self.scenario.deadline_s / _DEADLINE_CHUNKS
        for step in range(_DEADLINE_CHUNKS):
            sim.run(until=t0 + (step + 1) * chunk)
            if all(s.done or s.failed for _, s, _, _ in live):
                break
        for transfer, sender, tx, rx in live:
            if not (sender.done or sender.failed):
                # Deadline miss: silence the timer so no retransmission
                # event fires into a later wave.
                sender._cancel_timer()
                transfer.failure = transfer.failure or "deadline"
            if transfer.failure is not None:
                transfer.wire = None
            tx.unregister_flow(transfer.flow_id)
            rx.unregister_flow(transfer.flow_id)
            # No arena release here, deliberately: the fabric persists
            # across waves, and an original message packet can still be
            # sitting in a queue after its seq was acked via a clone.
            # Recycling it would let a straggling delivery alias a live
            # packet of a later wave.  Message packets are simply GC'd
            # (the arena is an optimization, never required); transient
            # ACK/filler recycling — the dominant churn — is unaffected.
        wave_end = sim.now
        for request in requests:
            request.wave_end_s = wave_end
            runtime = self.runtimes[request.job_index]
            runtime.fcts.extend(
                t.fct_s for t in request.transfers if t.wire is not None
            )
        self.waves_run += 1

    def run(self) -> Dict[str, Any]:
        """Train every job to completion; returns the JSON-ready report."""
        if self._ran:
            raise RuntimeError("a ClusterDriver instance runs once")
        self._ran = True
        for tenant in self.tenants:
            tenant.install()

        def job_body(runtime: _JobRuntime) -> None:
            try:
                runtime.trainer.train()
            except BaseException as error:  # surfaced after join
                runtime.error = error
            finally:
                runtime.finished = True
                runtime.parked.set()

        for runtime in self.runtimes:
            runtime.thread = threading.Thread(
                target=job_body, args=(runtime,), daemon=True
            )
            runtime.thread.start()

        while True:
            requests: List[_WaveRequest] = []
            waiting: List[_JobRuntime] = []
            for runtime in self.runtimes:
                if runtime.finished and runtime.request is None:
                    continue
                runtime.parked.wait()
                runtime.parked.clear()
                if runtime.request is not None:
                    requests.append(runtime.request)
                    waiting.append(runtime)
            if not requests:
                break
            self._execute_wave(requests)
            for runtime in waiting:
                runtime.request = None
                runtime.released.set()
        for runtime in self.runtimes:
            assert runtime.thread is not None
            runtime.thread.join()
        for tenant in self.tenants:
            tenant.stop()
        for runtime in self.runtimes:
            if runtime.error is not None:
                raise runtime.error
        return self.report()

    # -- reporting --------------------------------------------------------------

    def _job_report(self, runtime: _JobRuntime) -> Dict[str, Any]:
        history = runtime.trainer.history
        stats = runtime.hook.stats
        epoch_end: Dict[int, float] = {}
        for epoch, end_s in runtime.hook.wave_log:
            epoch_end[epoch] = max(epoch_end.get(epoch, 0.0), end_s)
        tta: Optional[float] = None
        for record in history.records:
            if record.top1 >= self.target_top1:
                tta = epoch_end.get(record.epoch)
                break
        report: Dict[str, Any] = {
            "workers": runtime.spec.workers,
            "aggregator": runtime.placement.aggregator,
            "worker_hosts": list(runtime.placement.workers),
            "epochs": len(history.records),
            "rounds": runtime.hook.waves,
            "final_top1": history.final_top1,
            "best_top1": history.best_top1,
            "diverged": history.diverged,
            "trim_fraction": stats.trim_fraction,
            "packets_total": stats.packets_total,
            "packets_trimmed": stats.packets_trimmed,
            "bytes_delivered": stats.bytes_sent,
            "rounds_surrendered": stats.rounds_surrendered,
            "mean_fct_s": (
                float(np.mean(runtime.fcts)) if runtime.fcts else 0.0
            ),
            "time_to_accuracy_s": tta,
            "epoch_fabric_end_s": [
                epoch_end.get(r.epoch) for r in history.records
            ],
            "top1_curve": [r.top1 for r in history.records],
            "ef": runtime.spec.ef,
        }
        if runtime.spec.ef:
            report["ef_telescoping_gap"] = runtime.hook.ef_telescoping_gap()
            report["ef_residual_norms"] = runtime.hook.ef_residual_norms()
        return report

    def _fairness(self) -> Dict[str, float]:
        goodputs = []
        for runtime in self.runtimes:
            active = sum(runtime.fcts)
            if active > 0:
                goodputs.append(runtime.hook.stats.bytes_sent / active)
        if not goodputs:
            return {"jain_goodput": 1.0}
        total = sum(goodputs)
        return {
            "jain_goodput": (total * total)
            / (len(goodputs) * sum(g * g for g in goodputs))
        }

    def report(self) -> Dict[str, Any]:
        """Deterministic digest: no wall-clock values, ever."""
        switch_totals = self.net.total_switch_stats()
        ecmp_flows = sum(s.stats.ecmp_flows for s in self.net.switches.values())
        ecmp_collisions = sum(
            s.stats.ecmp_collisions for s in self.net.switches.values()
        )
        return {
            "scenario": self.scenario.name,
            "seed": self.seed,
            "topology": self.scenario.topology,
            "k": self.scenario.k,
            "ecmp": self.scenario.ecmp,
            "sim_time_s": self.net.sim.now,
            "waves": self.waves_run,
            "jobs": {
                runtime.spec.name: self._job_report(runtime)
                for runtime in self.runtimes
            },
            "tenants": {
                tenant.spec.name: {
                    "pattern": tenant.spec.pattern,
                    "flows": tenant.flow_count,
                    "flow_base": tenant_flow_base(tenant.tenant_index),
                    "packets_emitted": tenant.packets_emitted,
                }
                for tenant in self.tenants
            },
            "attribution": {
                owner: dict(sorted(verdicts.items()))
                for owner, verdicts in sorted(self.attribution.items())
            },
            "fabric": {
                **switch_totals,
                "ecmp_flows": ecmp_flows,
                "ecmp_collisions": ecmp_collisions,
            },
            "fairness": self._fairness(),
        }
