"""Multi-tenant fabric simulation: concurrent jobs sharing one network.

This package drives several :class:`~repro.train.ddp.DDPTrainer` jobs
*concurrently* over one simulated ECMP-routed fat-tree (or leaf–spine)
fabric, alongside background tenants built from
:mod:`repro.net.crosstraffic`.  Per-flow id blocks make every switch
trim/drop verdict attributable to the job or tenant that owned the
packet, and the whole run is deterministic per ``(scenario, seed)``.

Entry points: the :class:`ClusterScenario` spec (JSON round-trippable),
the :class:`ClusterDriver` engine, and the ``repro-cluster`` CLI.
"""

from .driver import JOB_FLOW_BASE, JOB_FLOW_BLOCK, ClusterDriver, FabricHook
from .scenario import (
    CLUSTER_PRESETS,
    ClusterScenario,
    JobSpec,
    TenantSpec,
    available_cluster_scenarios,
    cluster_scenario_by_name,
)
from .tenants import TENANT_FLOW_BLOCK, TenantWorkload, tenant_flow_base

__all__ = [
    "JOB_FLOW_BASE",
    "JOB_FLOW_BLOCK",
    "ClusterDriver",
    "FabricHook",
    "CLUSTER_PRESETS",
    "ClusterScenario",
    "JobSpec",
    "TenantSpec",
    "available_cluster_scenarios",
    "cluster_scenario_by_name",
    "TENANT_FLOW_BLOCK",
    "TenantWorkload",
    "tenant_flow_base",
]
