"""``python -m repro.cluster`` entry point."""

import sys

from .cli import main

sys.exit(main())
