"""``repro-cluster``: multi-tenant fabric simulation CLI.

Run N concurrent training jobs plus background tenants on one shared
ECMP-routed fabric and print a deterministic JSON report::

    repro-cluster list
    repro-cluster show incast-4job
    repro-cluster run --preset incast-4job --seed 7
    repro-cluster run my_scenario.json --seed 7 --out report.json

Reports contain no wall-clock values, so two runs of the same
``(scenario, seed)`` emit byte-identical output — the property the
acceptance check diffs.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import List, Optional

from .driver import ClusterDriver
from .scenario import (
    ClusterScenario,
    available_cluster_scenarios,
    cluster_scenario_by_name,
)

__all__ = ["main"]

logger = logging.getLogger(__name__)


def _load_scenario(args: argparse.Namespace) -> ClusterScenario:
    if args.preset:
        return cluster_scenario_by_name(args.preset)
    if args.scenario:
        data = json.loads(Path(args.scenario).read_text())
        return ClusterScenario.from_dict(data)
    raise SystemExit("run: pass --preset NAME or a scenario JSON path")


def _cmd_list(args: argparse.Namespace) -> int:
    for name in available_cluster_scenarios():
        scenario = cluster_scenario_by_name(name)
        logger.info(
            "%16s  jobs=%d tenants=%d  %s",
            name,
            len(scenario.jobs),
            len(scenario.tenants),
            scenario.description,
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    scenario = cluster_scenario_by_name(args.name)
    sys.stdout.write(json.dumps(scenario.to_dict(), indent=2, sort_keys=True) + "\n")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _load_scenario(args)
    driver = ClusterDriver(
        scenario, seed=args.seed, target_top1=args.target_top1
    )
    report = driver.run()
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
        logger.info("wrote %s", args.out)
    else:
        sys.stdout.write(text + "\n")
    ok = all(
        not job["diverged"] and job["epochs"] > 0
        for job in report["jobs"].values()
    )
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="multi-tenant concurrent training on a shared fabric",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list built-in cluster presets").set_defaults(
        func=_cmd_list
    )

    p_show = sub.add_parser("show", help="print one preset as JSON")
    p_show.add_argument("name")
    p_show.set_defaults(func=_cmd_show)

    p_run = sub.add_parser("run", help="run a cluster scenario")
    p_run.add_argument(
        "scenario", nargs="?", help="path to a scenario JSON file"
    )
    p_run.add_argument("--preset", help="built-in scenario name")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--target-top1",
        type=float,
        default=0.5,
        help="accuracy threshold for time-to-accuracy (default 0.5)",
    )
    p_run.add_argument("--out", help="write the report here instead of stdout")
    p_run.set_defaults(func=_cmd_run)

    logging.basicConfig(level=logging.INFO, format="%(message)s", stream=sys.stderr)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
