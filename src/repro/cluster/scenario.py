"""Declarative multi-tenant cluster scenarios.

A :class:`ClusterScenario` describes one shared-fabric experiment: which
training jobs run concurrently (:class:`JobSpec`), which background
tenants load the fabric (:class:`TenantSpec`), and the topology they all
share (a k-ary fat-tree or a leaf–spine).  Like
:class:`repro.faults.Scenario`, everything is plain data: scenarios
round-trip through dicts, so a JSON file is a valid scenario definition
and the preset table below is just three of them.

Determinism contract: a scenario carries no randomness of its own.  All
random draws (data, codec rotations, tenant on/off cycles, ECMP salt)
derive from the run seed through :mod:`repro.transforms.prng`, so one
``(scenario, seed)`` pair always produces the same report bytes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Tuple

__all__ = [
    "TENANT_PATTERNS",
    "TOPOLOGIES",
    "JobSpec",
    "TenantSpec",
    "ClusterScenario",
    "CLUSTER_PRESETS",
    "available_cluster_scenarios",
    "cluster_scenario_by_name",
]

#: Background-traffic shapes :class:`repro.cluster.TenantWorkload` builds.
TENANT_PATTERNS = ("incast", "elephant", "mice")

#: Fabric shapes the driver can place jobs on.
TOPOLOGIES = ("fat-tree", "leaf-spine")


@dataclass(frozen=True)
class JobSpec:
    """One training job: the standard small MLP recipe on its own shard.

    Attributes:
        name: job id; also the per-tenant attribution label.
        workers: DDP world size — each worker gets its own host and its
            gradient flows to the job's aggregator host every round.
        epochs: training epochs.
        batch_size / lr: optimizer knobs (paper defaults scaled down).
        row_size: RHT codec row size.
        seed_offset: added to the run seed for this job's data/model/
            codec seeds (None = the job's index, so two jobs are
            identical workloads only if their offsets are pinned equal).
        ef: DGC-style error feedback on the fabric path — every worker
            keeps what trimming/surrender lost as a residual and adds
            it back next round, so the telescoping sum
            ``sum(delivered) + residual == sum(inputs)`` holds (the
            invariant the chaos campaign monitors).
    """

    name: str
    workers: int = 2
    epochs: int = 2
    batch_size: int = 8
    lr: float = 0.1
    row_size: int = 1024
    seed_offset: Optional[int] = None
    ef: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a job needs a non-empty name")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1 or self.row_size < 1:
            raise ValueError("batch_size and row_size must be positive")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")


@dataclass(frozen=True)
class TenantSpec:
    """One background tenant: a named bundle of cross-traffic flows.

    Attributes:
        name: tenant id; also the attribution label.
        pattern: one of :data:`TENANT_PATTERNS` —

            * ``incast``: ``flows`` senders each blast ``burst_bytes``
              at one receiver every ``period_s`` (partition/aggregate);
            * ``elephant``: ``flows`` long-burst on/off flows near line
              rate (storage/replication background);
            * ``mice``: ``flows`` short-burst small-packet on/off flows
              (RPC fan-out noise).
        rate_bps: per-flow target rate during bursts.
        flows: parallel flows (elephant/mice) or incast fan-in.
        burst_bytes: bytes per incast sender per burst.
        period_s: incast repeat period.
        start_s / stop_s: active window on the shared simulation clock.
        dst_pod: pod (fat-tree) or leaf (leaf–spine) the traffic
            converges on; senders are placed on free hosts elsewhere.
    """

    name: str
    pattern: str = "elephant"
    rate_bps: float = 5e9
    flows: int = 2
    burst_bytes: int = 60_000
    period_s: float = 2e-3
    start_s: float = 0.0
    stop_s: Optional[float] = None
    dst_pod: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant needs a non-empty name")
        if self.pattern not in TENANT_PATTERNS:
            raise ValueError(
                f"unknown tenant pattern {self.pattern!r}; "
                f"expected one of {TENANT_PATTERNS}"
            )
        if self.rate_bps <= 0 or self.flows < 1:
            raise ValueError("rate_bps and flows must be positive")
        if self.burst_bytes < 1 or self.period_s <= 0:
            raise ValueError("burst_bytes and period_s must be positive")
        if self.start_s < 0 or (self.stop_s is not None and self.stop_s <= self.start_s):
            raise ValueError(f"bad tenant window [{self.start_s}, {self.stop_s})")
        if self.dst_pod < 0:
            raise ValueError(f"dst_pod must be >= 0, got {self.dst_pod}")


@dataclass(frozen=True)
class ClusterScenario:
    """Concurrent jobs + tenants on one shared, ECMP-routed fabric."""

    name: str
    description: str
    jobs: Tuple[JobSpec, ...]
    tenants: Tuple[TenantSpec, ...] = ()
    topology: str = "fat-tree"
    k: int = 4
    leaves: int = 4
    spines: int = 2
    hosts_per_leaf: int = 4
    rate_bps: float = 10e9
    delay_s: float = 1e-6
    buffer_bytes: int = 60_000
    ecmp: bool = True
    #: install the paper's single-level trim policy on every switch
    #: (False = drop-tail fabric).
    trim: bool = True
    deadline_s: float = 0.05
    mtu: int = 1500
    host_burst: int = 8

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a cluster scenario needs at least one job")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}"
            )
        names = [job.name for job in self.jobs] + [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"job/tenant names must be unique, got {names}")
        if self.k % 2 != 0 or self.k < 2:
            raise ValueError(f"fat-tree degree k must be even and >= 2, got {self.k}")
        if self.leaves < 1 or self.spines < 1 or self.hosts_per_leaf < 1:
            raise ValueError("leaves, spines and hosts_per_leaf must be positive")
        if self.rate_bps <= 0 or self.delay_s < 0 or self.buffer_bytes < 1:
            raise ValueError("bad fabric parameters")
        if self.deadline_s <= 0 or self.mtu < 64 or self.host_burst < 1:
            raise ValueError("deadline_s, mtu and host_burst must be positive")

    @property
    def pods(self) -> int:
        """Placement domains: fat-tree pods or leaf racks."""
        return self.k if self.topology == "fat-tree" else self.leaves

    def to_dict(self) -> Dict:
        """Plain-data form (JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ClusterScenario":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown cluster scenario keys: {sorted(extra)}")
        payload = dict(data)
        payload["jobs"] = tuple(
            job if isinstance(job, JobSpec) else JobSpec(**job)
            for job in payload.get("jobs", ())
        )
        payload["tenants"] = tuple(
            t if isinstance(t, TenantSpec) else TenantSpec(**t)
            for t in payload.get("tenants", ())
        )
        return cls(**payload)


def _presets() -> Dict[str, ClusterScenario]:
    return {
        scenario.name: scenario
        for scenario in (
            ClusterScenario(
                name="incast-4job",
                description=(
                    "four 2-worker jobs share a k=4 fat-tree while an "
                    "incast tenant fires periodic partition/aggregate "
                    "bursts into pod 1"
                ),
                jobs=tuple(
                    JobSpec(name=f"job{i}", workers=2, epochs=2) for i in range(4)
                ),
                tenants=(
                    TenantSpec(
                        name="incast-bg",
                        pattern="incast",
                        flows=3,
                        burst_bytes=60_000,
                        period_s=2e-3,
                        dst_pod=1,
                    ),
                ),
            ),
            ClusterScenario(
                name="elephant-2job",
                description=(
                    "two 2-worker jobs contend with a pair of elephant "
                    "flows converging on pod 1 plus a mice tenant"
                ),
                jobs=tuple(
                    JobSpec(name=f"job{i}", workers=2, epochs=2) for i in range(2)
                ),
                tenants=(
                    TenantSpec(
                        name="elephants", pattern="elephant", flows=2, rate_bps=8e9
                    ),
                    TenantSpec(
                        name="mice", pattern="mice", flows=4, rate_bps=1e9, dst_pod=2
                    ),
                ),
            ),
            ClusterScenario(
                name="idle-1job",
                description=(
                    "one 2-worker job alone on an idle fat-tree — the "
                    "single-job baseline anchor for isolation tests"
                ),
                jobs=(JobSpec(name="job0", workers=2, epochs=2),),
            ),
        )
    }


#: Named cluster presets the CLI and CI chaos matrix run.
CLUSTER_PRESETS: Dict[str, ClusterScenario] = _presets()


def available_cluster_scenarios() -> list:
    """Names of the built-in cluster presets."""
    return sorted(CLUSTER_PRESETS)


def cluster_scenario_by_name(name: str) -> ClusterScenario:
    """Look up a preset; raises ``KeyError`` with the available names."""
    try:
        return CLUSTER_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown cluster scenario {name!r}; "
            f"available: {available_cluster_scenarios()}"
        ) from None
