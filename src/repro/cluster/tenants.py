"""Tenant workloads: attributable background traffic on a shared fabric.

A :class:`TenantWorkload` turns one :class:`~repro.cluster.scenario.TenantSpec`
into live :mod:`repro.net.crosstraffic` generators on the cluster's
network.  Every flow the tenant emits carries a flow id from the
tenant's private block above :data:`~repro.net.crosstraffic.CROSS_TRAFFIC_FLOW_BASE`,
so switch trim/drop verdicts are attributable to the tenant by id range
alone — the same mechanism that attributes training traffic to jobs.
"""

from __future__ import annotations

from typing import List, Optional

from ..net.crosstraffic import CROSS_TRAFFIC_FLOW_BASE, IncastBurst, OnOffFlow
from ..net.topology import Network
from ..transforms.prng import derive_seed
from .scenario import TenantSpec

__all__ = ["TENANT_FLOW_BLOCK", "tenant_flow_base", "TenantWorkload"]

#: Flow ids per tenant; tenant ``i`` owns ``[base + (i+1)*BLOCK, ...)``.
TENANT_FLOW_BLOCK = 10_000


def tenant_flow_base(tenant_index: int) -> int:
    """First flow id of tenant ``tenant_index``'s private block."""
    return CROSS_TRAFFIC_FLOW_BASE + (tenant_index + 1) * TENANT_FLOW_BLOCK


class TenantWorkload:
    """One tenant's generators, placed on concrete hosts.

    Args:
        net: the shared cluster network.
        spec: the declarative tenant description.
        tenant_index: position in the scenario's tenant tuple (fixes the
            flow-id block and the PRNG stream).
        seed: the run seed; all on/off draws derive from it.
        src_hosts: sender host names (incast fan-in or one per flow).
        dst_hosts: receiver host names (incast uses the first only).
    """

    def __init__(
        self,
        net: Network,
        spec: TenantSpec,
        tenant_index: int,
        seed: int,
        src_hosts: List[str],
        dst_hosts: List[str],
    ) -> None:
        if not src_hosts or not dst_hosts:
            raise ValueError(f"tenant {spec.name!r} needs sender and receiver hosts")
        self.net = net
        self.spec = spec
        self.tenant_index = tenant_index
        self.seed = seed
        self.src_hosts = list(src_hosts)
        self.dst_hosts = list(dst_hosts)
        self.flow_base = tenant_flow_base(tenant_index)
        self._onoff: List[OnOffFlow] = []
        self._incast: Optional[IncastBurst] = None
        self._active = False

    # -- lifecycle --------------------------------------------------------------

    def install(self) -> None:
        """Create the generators and schedule their first activity."""
        self._active = True
        if self.spec.pattern == "incast":
            self._install_incast()
        else:
            self._install_onoff()

    def stop(self) -> None:
        """Cease after in-flight packets drain."""
        self._active = False
        for flow in self._onoff:
            flow.stop()

    def owns_flow(self, flow_id: int) -> bool:
        """Does ``flow_id`` fall in this tenant's private block?"""
        return self.flow_base <= flow_id < self.flow_base + TENANT_FLOW_BLOCK

    @property
    def packets_emitted(self) -> int:
        """Total packets this tenant has injected so far."""
        total = sum(flow.packets_emitted for flow in self._onoff)
        if self._incast is not None:
            total += self._incast.packets_emitted
        return total

    @property
    def flow_count(self) -> int:
        return len(self._onoff) if self._onoff else len(self.src_hosts)

    # -- patterns ---------------------------------------------------------------

    def _flow_seed(self, index: int) -> int:
        return derive_seed(
            self.seed,
            epoch=self.tenant_index,
            message_id=index,
            purpose="crosstraffic",
        )

    def _install_onoff(self) -> None:
        spec = self.spec
        # Elephants hold the line for long bursts; mice chatter in short
        # small-packet spurts — the classic heavy-tail split.
        if spec.pattern == "elephant":
            burst_s, idle_s, packet_bytes = 2e-3, 2e-4, 1458
        else:
            burst_s, idle_s, packet_bytes = 3e-5, 1.5e-4, 256
        for index in range(spec.flows):
            src = self.net.hosts[self.src_hosts[index % len(self.src_hosts)]]
            dst = self.dst_hosts[index % len(self.dst_hosts)]
            flow = OnOffFlow(
                self.net.sim,
                src,
                dst,
                rate_bps=spec.rate_bps,
                burst_s=burst_s,
                idle_s=idle_s,
                packet_bytes=packet_bytes,
                seed=self._flow_seed(index),
                flow_id=self.flow_base + index,
                stop_at=spec.stop_s,
            )
            flow.start(delay=spec.start_s)
            self._onoff.append(flow)

    def _install_incast(self) -> None:
        spec = self.spec
        sim = self.net.sim
        senders = [self.net.hosts[name] for name in self.src_hosts[: spec.flows]]
        self._incast = IncastBurst(
            sim,
            senders,
            self.dst_hosts[0],
            burst_bytes=spec.burst_bytes,
            seed=self._flow_seed(0),
            flow_id_base=self.flow_base,
        )

        def refire() -> None:
            if not self._active:
                return
            if spec.stop_s is not None and sim.now >= spec.stop_s:
                return
            assert self._incast is not None
            self._incast.fire(0.0)
            sim.schedule(spec.period_s, refire)

        sim.schedule(spec.start_s, refire)
