"""Transport building blocks shared by the reliable and trimming stacks.

A transport *message* is a list of packets framed with ``seq`` in
``[0, seq_total)``.  Senders pace them with a congestion-control window,
receivers acknowledge, and a retransmission timer backstops losses.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..net.flow import FlowLog, FlowRecord
from ..net.host import Host
from ..net.simulator import Event
from ..obs.metrics import get_registry
from ..obs.spans import get_span_tracer
from ..obs.trace import get_tracer
from ..packet import arena as _arena
from ..packet.packet import DEFAULT_MTU_BYTES, Packet
from .congestion import CongestionControl, FixedWindow

__all__ = ["segment_bytes", "RttEstimator", "MessageSenderBase", "TransportSurrender"]


class TransportSurrender(RuntimeError):
    """A sender gave up on a message after exhausting its retry budget.

    Raised only when the caller asks for it (``send_message`` without an
    ``on_failure`` callback keeps the legacy silent-retry-forever
    behaviour unless ``max_retries`` is set); otherwise surfaced through
    the callback so the train loop can take a degraded step instead of
    deadlocking the round.
    """

    def __init__(self, flow_id: int, reason: str) -> None:
        super().__init__(f"flow {flow_id}: {reason}")
        self.flow_id = flow_id
        self.reason = reason


def segment_bytes(
    src: str,
    dst: str,
    num_bytes: int,
    flow_id: int,
    mtu: int = DEFAULT_MTU_BYTES,
) -> List[Packet]:
    """Split an opaque byte count into MTU-sized framed packets.

    Used for non-gradient traffic (and baseline benchmarks that treat
    the gradient as a black-box blob, exactly as NCCL does).
    """
    if num_bytes <= 0:
        raise ValueError(f"num_bytes must be positive, got {num_bytes}")
    payload_max = mtu - 42
    packets: List[Packet] = []
    remaining = num_bytes
    pool = _arena._ARENA
    while remaining > 0:
        size = min(payload_max, remaining)
        # Message-kind: the sender retains these for retransmission, so
        # network sinks must never recycle them (see repro.packet.arena).
        packets.append(
            pool.acquire(
                _arena.KIND_MESSAGE,
                src=src,
                dst=dst,
                payload=b"\x00" * size,
                flow_id=flow_id,
            )
        )
        remaining -= size
    for i, pkt in enumerate(packets):
        pkt.seq = i
        pkt.seq_total = len(packets)
    return packets


class RttEstimator:
    """Jacobson-style smoothed RTT with a floor and backoff cap."""

    def __init__(self, rto_min: float = 100e-6, rto_max: float = 100e-3) -> None:
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._backoff = 1.0

    def sample(self, rtt: float) -> None:
        """Fold one RTT measurement in and reset timeout backoff."""
        if self.srtt is None or self.rttvar is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self._backoff = 1.0

    def backoff(self) -> None:
        """Double the timeout after an expiry (capped by rto_max)."""
        self._backoff = min(self._backoff * 2.0, 64.0)

    @property
    def rto(self) -> float:
        """Current retransmission timeout."""
        if self.srtt is None:
            base = self.rto_min * 4
        else:
            base = self.srtt + 4 * (self.rttvar or 0.0)
        return min(self.rto_max, max(self.rto_min, base) * self._backoff)


class MessageSenderBase:
    """Common sender state: framing, window pacing, timer, flow log.

    Subclasses implement ``_handle_control`` (ACK/NACK processing) and
    ``_on_timeout`` (recovery), and call ``_pump`` to emit packets.
    """

    def __init__(
        self,
        host: Host,
        flow_id: int,
        cc: Optional[CongestionControl] = None,
        rto_min: float = 100e-6,
        rto_max: float = 100e-3,
        log: Optional[FlowLog] = None,
        max_retries: int = 200,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.flow_id = flow_id
        self.cc = cc or FixedWindow()
        self.rtt = RttEstimator(rto_min=rto_min, rto_max=rto_max)
        self.log = log
        self.record: Optional[FlowRecord] = None
        # Retry budget *per packet*: a sequence number re-sent more than
        # this many times means the path is not recovering (ACK blackout,
        # persistent corruption, a dead link) and the sender surrenders
        # with a clean error instead of livelocking the round.
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        self.max_retries = max_retries
        self._packets: List[Packet] = []
        self._send_times: dict[int, float] = {}
        self._retries_by_seq: dict[int, int] = {}
        self._timer: Optional[Event] = None
        self._on_complete: Optional[Callable[[], None]] = None
        self._on_failure: Optional[Callable[[TransportSurrender], None]] = None
        self._done = False
        self._failed: Optional[TransportSurrender] = None
        self._message_start = 0.0
        self._retransmissions = 0
        # Causal spans: one per in-flight message, one per packet
        # emission (keyed by seq; a retransmission closes the stale span
        # before opening its own).
        self._message_span: Optional[int] = None
        self._packet_spans: dict[int, int] = {}
        transport = type(self).__name__
        registry = get_registry()
        self._m_messages = registry.counter(
            "repro_transport_messages_total",
            "messages fully delivered",
            ("transport",),
        ).bind(transport=transport)
        self._m_packets_emitted = registry.counter(
            "repro_transport_packets_emitted_total",
            "data packets handed to the host (including retransmissions)",
            ("transport",),
        ).bind(transport=transport)
        self._m_retx = registry.counter(
            "repro_transport_retransmissions_total",
            "packets re-sent after a loss signal or timeout",
            ("transport",),
        ).bind(transport=transport)
        self._m_timeouts = registry.counter(
            "repro_transport_timeouts_total",
            "retransmission-timer expiries",
            ("transport",),
        ).bind(transport=transport)
        self._m_surrenders = registry.counter(
            "repro_transport_surrenders_total",
            "messages abandoned after exhausting the per-packet retry budget",
            ("transport",),
        ).bind(transport=transport)
        host.register_flow(flow_id, self._dispatch)

    # -- public API ----------------------------------------------------------

    def send_message(
        self,
        packets: List[Packet],
        on_complete: Optional[Callable[[], None]] = None,
        on_failure: Optional[Callable[["TransportSurrender"], None]] = None,
    ) -> None:
        """Transmit a framed message; ``on_complete`` fires when delivered.

        ``on_failure`` fires (at most once) if the sender surrenders after
        a packet exhausts its ``max_retries`` budget — the clean error the
        train loop uses to take a degraded step instead of hanging.
        """
        if self._packets and not self._done and self._failed is None:
            raise RuntimeError(f"flow {self.flow_id}: message already in flight")
        if not packets:
            raise ValueError("cannot send an empty message")
        for i, pkt in enumerate(packets):
            pkt.seq = i
            pkt.seq_total = len(packets)
            pkt.flow_id = self.flow_id
            if pkt.checksum is None:
                pkt.seal()
        self._packets = packets
        self._on_complete = on_complete
        self._on_failure = on_failure
        self._done = False
        self._failed = None
        self._message_start = self.sim.now
        self._retransmissions = 0
        self._retries_by_seq.clear()
        st = get_span_tracer()
        if st.enabled:
            self._message_span = st.begin(
                "transport.message",
                t=self.sim.now,
                transport=type(self).__name__,
                flow_id=self.flow_id,
                packets=len(packets),
            )
            self._packet_spans.clear()
        self._reset_state()
        if self.log is not None:
            total = sum(p.wire_size for p in packets)
            self.record = self.log.open(
                self.flow_id, packets[0].src, packets[0].dst, total, self.sim.now
            )
        self._pump()

    @property
    def done(self) -> bool:
        """True once every packet has been acknowledged."""
        return self._done

    @property
    def failed(self) -> bool:
        """True once the sender has surrendered this message."""
        return self._failed is not None

    @property
    def failure(self) -> Optional["TransportSurrender"]:
        """The surrender error, if the sender gave up."""
        return self._failed

    # -- subclass hooks ---------------------------------------------------------

    def _reset_state(self) -> None:
        raise NotImplementedError

    def _pump(self) -> None:
        raise NotImplementedError

    def _handle_control(self, packet: Packet) -> None:
        raise NotImplementedError

    def _on_timeout(self) -> None:
        raise NotImplementedError

    # -- shared machinery ---------------------------------------------------------

    def _dispatch(self, packet: Packet) -> None:
        if packet.is_ack and not self._done and self._failed is None:
            self._handle_control(packet)
        # A control packet is dead once handled (or ignored): the sender
        # only reads its fields.  Transient-kind only — a stray data
        # packet is message-kind and passes through untouched.
        _arena._ARENA.release_transient(packet)

    def _emit(self, seq: int, retransmission: bool = False) -> None:
        if self._failed is not None:
            return
        original = self._packets[seq]
        packet = original.clone() if retransmission else original
        if retransmission:
            retries = self._retries_by_seq.get(seq, 0) + 1
            self._retries_by_seq[seq] = retries
            if retries > self.max_retries:
                self._surrender(
                    f"packet seq={seq} exceeded max_retries={self.max_retries}"
                )
                return
            self._retransmissions += 1
            self._m_retx.inc()
            if self.record is not None:
                self.record.retransmissions += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "transport.retransmit",
                    sim_time=self.sim.now,
                    transport=type(self).__name__,
                    flow_id=self.flow_id,
                    seq=seq,
                    attempt=retries,
                )
        st = get_span_tracer()
        if st.enabled:
            stale = self._packet_spans.pop(seq, None)
            if stale is not None:
                st.end(stale, t=self.sim.now, acked=False, superseded=True)
            span = st.begin(
                "transport.packet",
                t=self.sim.now,
                parent_id=self._message_span,
                seq=seq,
                retransmission=retransmission,
            )
            if span is not None:
                self._packet_spans[seq] = span
        self._send_times[seq] = self.sim.now
        self._m_packets_emitted.inc()
        if self.record is not None:
            self.record.packets_sent += 1
        self.host.send(packet)

    def _sample_rtt(self, seq: int) -> None:
        sent = self._send_times.pop(seq, None)
        if sent is not None:
            self.rtt.sample(self.sim.now - sent)
        st = get_span_tracer()
        if st.enabled:
            span = self._packet_spans.pop(seq, None)
            if span is not None:
                st.end(span, t=self.sim.now, acked=True)

    def _arm_timer(self) -> None:
        self._cancel_timer()
        self._timer = self.sim.schedule(self.rtt.rto, self._timer_fired)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _timer_fired(self) -> None:
        self._timer = None
        if self._done or self._failed is not None:
            return
        self.rtt.backoff()
        self.cc.on_loss()
        self._m_timeouts.inc()
        self._on_timeout()

    def _close_spans(self, outcome: str, reason: Optional[str] = None) -> None:
        """End every open packet span and the message span.

        Cumulative-ACK transports never sample each seq individually, so
        packet spans still open at completion close here (the delivery
        of the whole message acknowledges them); on surrender they close
        unacknowledged.
        """
        st = get_span_tracer()
        if not st.enabled:
            return
        acked = outcome == "delivered"
        for seq in sorted(self._packet_spans):
            st.end(self._packet_spans[seq], t=self.sim.now, acked=acked)
        self._packet_spans.clear()
        if self._message_span is not None:
            attrs: dict[str, Any] = {
                "outcome": outcome,
                "retransmissions": self._retransmissions,
            }
            if reason is not None:
                attrs["reason"] = reason
            st.end(self._message_span, t=self.sim.now, **attrs)
            self._message_span = None

    def _surrender(self, reason: str) -> None:
        """Give up on the in-flight message with a clean, observable error."""
        if self._done or self._failed is not None:
            return
        error = TransportSurrender(self.flow_id, reason)
        self._failed = error
        self._cancel_timer()
        self._m_surrenders.inc()
        self._close_spans(outcome="surrendered", reason=reason)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "transport.surrender",
                sim_time=self.sim.now,
                transport=type(self).__name__,
                flow_id=self.flow_id,
                reason=reason,
                retransmissions=self._retransmissions,
            )
        # The FlowLog record stays open: a surrendered flow never
        # completed, so it must not contribute a bogus FCT sample.
        if self._on_failure is not None:
            self._on_failure(error)

    def _complete(self) -> None:
        if self._done or self._failed is not None:
            return
        self._done = True
        self._cancel_timer()
        self._m_messages.inc()
        self._close_spans(outcome="delivered")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "transport.deliver",
                sim_time=self.sim.now,
                transport=type(self).__name__,
                flow_id=self.flow_id,
                packets=len(self._packets),
                retransmissions=self._retransmissions,
                # Flow completion time is *simulated* seconds, so it lives
                # in fields rather than duration_s (wall-clock spans).
                fct_s=self.sim.now - self._message_start,
            )
        if self.log is not None:
            self.log.close(self.flow_id, self.sim.now)
        if self._on_complete is not None:
            self._on_complete()
