"""NDP-style receiver-driven pull transport (Handley et al., SIGCOMM'17).

The transport the paper's trimming story comes from.  Compared to the
window-based :mod:`repro.transport.trimming` stack:

* the sender blasts an **initial window** at line rate — new flows ramp
  up instantly, no slow start ("immediately ramp up new flows' sending
  rate without waiting for connection setup");
* after that, every transmission is paid for by a **PULL** credit from
  the receiver, which paces credits at its own line rate — the receiver,
  not a congestion window, clocks the flow;
* a **trimmed header is a NACK-and-credit in one**: for gradient packets
  the head is kept (no retransmission at all); for opaque payloads the
  sequence number joins the retransmit queue and is resent when the next
  credit arrives;
* a timer backstops complete losses (rare: headers ride the express
  band).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional

from ..net.host import Host
from ..obs.int_telemetry import get_int_collector
from ..packet import arena as _arena
from ..packet.packet import Packet
from .base import MessageSenderBase

__all__ = ["PullSender", "PullReceiver"]


class PullSender(MessageSenderBase):
    """Sends an initial burst, then one packet per received credit."""

    def __init__(self, *args: Any, initial_window: int = 12, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if initial_window < 1:
            raise ValueError("initial window must be at least 1 packet")
        self.initial_window = initial_window
        self._next = 0
        self._acked: set[int] = set()
        self._retransmit: deque[int] = deque()
        self.credits_received = 0

    def _reset_state(self) -> None:
        self._next = 0
        self._acked = set()
        self._retransmit = deque()
        self.credits_received = 0
        self._send_times.clear()

    def _pump(self) -> None:
        # Only the initial burst is unsolicited.
        while self._next < min(self.initial_window, len(self._packets)):
            self._emit(self._next)
            self._next += 1
        if len(self._acked) < len(self._packets) and self._timer is None:
            self._arm_timer()

    def _send_one_more(self) -> None:
        """Spend one credit: retransmissions first, then fresh data."""
        while self._retransmit:
            seq = self._retransmit.popleft()
            if seq not in self._acked:
                self._emit(seq, retransmission=True)
                return
        if self._next < len(self._packets):
            self._emit(self._next)
            self._next += 1

    def _handle_control(self, packet: Packet) -> None:
        if packet.nack and packet.seq not in self._acked:
            self._retransmit.append(packet.seq)
        elif not packet.nack and packet.seq not in self._acked:
            self._acked.add(packet.seq)
            self._sample_rtt(packet.seq)
            if packet.trimmed_echo:
                if self.record is not None:
                    self.record.packets_trimmed += 1
                self.cc.on_trim()
            else:
                self.cc.on_ack(ecn=packet.ecn)
        if packet.pull:
            self.credits_received += 1
            self._send_one_more()
        if len(self._acked) >= len(self._packets):
            self._complete()
            return
        self._arm_timer()

    def _on_timeout(self) -> None:
        # Backstop: resend the oldest unacked packet unsolicited (its
        # arrival regenerates the credit stream).
        for seq in range(min(self._next, len(self._packets))):
            if seq not in self._acked:
                self._emit(seq, retransmission=True)
                break
        self._arm_timer()


class PullReceiver:
    """Accepts trimmed gradients, NACKs trimmed payloads, paces credits.

    Args:
        host: receiving endpoint.
        flow_id: flow to listen on.
        on_message: callback with the seq-ordered packets when complete.
        pace_s: minimum spacing between PULL credits (one full-size
            packet's serialization time at the receiver's line rate —
            NDP's pull pacing; default 120 ns = 1500 B at 100 Gb/s).
        accept_trimmed: treat trimmed gradient packets as deliveries.
    """

    def __init__(
        self,
        host: Host,
        flow_id: int,
        on_message: Optional[Callable[[List[Packet]], None]] = None,
        pace_s: float = 120e-9,
        accept_trimmed: bool = True,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.flow_id = flow_id
        self.on_message = on_message
        self.pace_s = pace_s
        self.accept_trimmed = accept_trimmed
        self._received: Dict[int, Packet] = {}
        self._total: Optional[int] = None
        self._peer: Optional[str] = None
        self._credit_queue: deque[Packet] = deque()
        self._pacer_busy = False
        self.trimmed_accepted = 0
        self.nacks_sent = 0
        self.pulls_sent = 0
        self.corrupt_rejected = 0
        host.register_flow(flow_id, self._on_packet)

    @property
    def complete(self) -> bool:
        return self._total is not None and len(self._received) >= self._total

    def packets(self) -> List[Packet]:
        return [self._received[seq] for seq in sorted(self._received)]

    # -- data path ---------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        if packet.is_ack:
            return
        self._peer = packet.src
        self._total = packet.seq_total or self._total
        # Transient-kind: recycled by the sender's dispatch once read.
        control = _arena._ARENA.acquire(
            src=self.host.name,
            dst=self._peer,
            is_ack=True,
            pull=True,
            seq=packet.seq,
            flow_id=self.flow_id,
            priority=2,
            ecn=packet.ecn,
        )
        if not packet.verify():
            # Corrupted in flight: the NACK doubles as the credit that
            # pays for the retransmission (NDP-style re-request).
            self.corrupt_rejected += 1
            control.nack = True
            self.nacks_sent += 1
        elif packet.is_trimmed:
            usable = self.accept_trimmed and packet.is_gradient
            if usable:
                if packet.seq not in self._received:
                    self.trimmed_accepted += 1
                    self._received[packet.seq] = packet
                    if packet.int_ext is not None:
                        get_int_collector().collect(packet)
                control.trimmed_echo = True
            else:
                control.nack = True
                self.nacks_sent += 1
        else:
            prior = self._received.get(packet.seq)
            if prior is None or prior.is_trimmed:
                self._received[packet.seq] = packet
                if packet.int_ext is not None:
                    get_int_collector().collect(packet)
        self._enqueue_credit(control)
        if self.complete and self.on_message is not None:
            callback, self.on_message = self.on_message, None
            callback(self.packets())

    # -- credit pacing -------------------------------------------------------

    def _enqueue_credit(self, control: Packet) -> None:
        self._credit_queue.append(control)
        if not self._pacer_busy:
            self._pacer_busy = True
            self.sim.schedule(0.0, self._drain_one)

    def _drain_one(self) -> None:
        if not self._credit_queue:
            self._pacer_busy = False
            return
        control = self._credit_queue.popleft()
        self.host.send(control)
        self.pulls_sent += 1
        self.sim.schedule(self.pace_s, self._drain_one)
