"""Transport substrate: congestion control, reliable and trimming stacks."""

from .base import MessageSenderBase, RttEstimator, TransportSurrender, segment_bytes
from .congestion import AIMD, DCTCP, CongestionControl, FixedWindow
from .pull import PullReceiver, PullSender
from .reliable import GoBackNReceiver, GoBackNSender
from .trimming import TrimmingReceiver, TrimmingSender

__all__ = [
    "MessageSenderBase",
    "RttEstimator",
    "TransportSurrender",
    "segment_bytes",
    "AIMD",
    "DCTCP",
    "CongestionControl",
    "FixedWindow",
    "GoBackNReceiver",
    "GoBackNSender",
    "PullReceiver",
    "PullSender",
    "TrimmingReceiver",
    "TrimmingSender",
]
