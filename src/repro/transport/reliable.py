"""Go-back-N reliable transport — the NCCL/RoCE-style baseline.

The paper's baseline *ccl* "provide[s] strict reliability semantics" and
relies on retransmission when the fabric is not lossless.  RoCE NICs
implement exactly go-back-N: the receiver only accepts in-order packets,
and any gap forces the sender to rewind and re-send the whole window.
This is why the baseline tolerates only ~0.2 % drops (Section 4.4): at
1–2 % loss almost every window rewinds, multiplying bytes on the wire
and stalling rounds on retransmission timeouts.

Trimmed packets are *useless* to this transport — the baseline does not
understand the trimmable layout, so a trimmed arrival is treated as a
loss, exactly like NCCL dropping a corrupted frame.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..net.host import Host
from ..obs.int_telemetry import get_int_collector
from ..obs.metrics import get_registry
from ..packet import arena as _arena
from ..packet.packet import Packet
from .base import MessageSenderBase

__all__ = ["GoBackNSender", "GoBackNReceiver"]

_ACK_NONE = -1  # cumulative ACK value before anything arrived


class GoBackNSender(MessageSenderBase):
    """Window-paced sender with cumulative ACKs and window rewind."""

    def __init__(self, *args: Any, dupack_threshold: int = 3, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.dupack_threshold = dupack_threshold
        self._base = 0
        self._next = 0
        self._dupacks = 0
        # One fast-retransmit recovery episode per window: without this,
        # a rewind burst that itself overflows the bottleneck queue
        # triggers dup-ACKs that trigger another full rewind, forever
        # (a classic go-back-N livelock under burst loss).
        self._recovering = False

    def _reset_state(self) -> None:
        self._base = 0
        self._next = 0
        self._dupacks = 0
        self._recovering = False
        self._send_times.clear()

    def _pump(self) -> None:
        total = len(self._packets)
        while self._next < total and self._next < self._base + self.cc.window:
            self._emit(self._next, retransmission=self._next in self._send_times)
            self._next += 1
        if self._base < total and self._timer is None:
            self._arm_timer()

    def _handle_control(self, packet: Packet) -> None:
        ack = packet.seq  # cumulative: everything through `ack` received
        if ack >= self._base:
            self._sample_rtt(ack)
            self._base = ack + 1
            self._dupacks = 0
            self._recovering = False  # progress ends the recovery episode
            self.cc.on_ack(ecn=packet.ecn)
            if self._base >= len(self._packets):
                self._complete()
                return
            self._arm_timer()
            self._pump()
        else:
            # Duplicate cumulative ACK: the receiver is discarding
            # out-of-order packets beyond a gap.  At most one rewind per
            # recovery episode; the RTO backstops a lost rewind.
            self._dupacks += 1
            if self._dupacks >= self.dupack_threshold and not self._recovering:
                self._dupacks = 0
                self._recovering = True
                self.cc.on_loss()
                self._rewind()

    def _on_timeout(self) -> None:
        self._recovering = False  # a timeout starts recovery afresh
        self._rewind()

    def _rewind(self) -> None:
        """Go-back-N: restart transmission from the first unacked packet."""
        self._next = self._base
        self._arm_timer()
        self._pump()


class GoBackNReceiver:
    """In-order receiver with cumulative ACKs.

    Args:
        host: the receiving endpoint.
        flow_id: flow to listen on.
        on_message: called with the in-order packet list when complete.
    """

    def __init__(
        self,
        host: Host,
        flow_id: int,
        on_message: Optional[Callable[[List[Packet]], None]] = None,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.flow_id = flow_id
        self.on_message = on_message
        self._expected = 0
        self._delivered: List[Packet] = []
        self._total: Optional[int] = None
        self._peer: Optional[str] = None
        self.trimmed_rejected = 0
        self.out_of_order_discarded = 0
        self.corrupt_rejected = 0
        registry = get_registry()
        self._m_trimmed_rejected = registry.counter(
            "repro_transport_trimmed_rejected_total",
            "trimmed packets the trim-oblivious baseline treated as losses",
            ("transport",),
        ).bind(transport=type(self).__name__)
        self._m_corrupt_rejected = registry.counter(
            "repro_transport_corrupt_rejected_total",
            "packets failing checksum verification, treated as losses",
            ("transport",),
        ).bind(transport=type(self).__name__)
        self._m_ooo_discarded = registry.counter(
            "repro_transport_out_of_order_discarded_total",
            "out-of-order packets discarded by the in-order receiver",
            ("transport",),
        ).bind(transport=type(self).__name__)
        host.register_flow(flow_id, self._on_packet)

    @property
    def complete(self) -> bool:
        """True once the full message has been delivered in order."""
        return self._total is not None and self._expected >= self._total

    def _on_packet(self, packet: Packet) -> None:
        if packet.is_ack:
            return
        self._peer = packet.src
        self._total = packet.seq_total or self._total
        if not packet.verify():
            # Checksum mismatch: the payload was corrupted in flight.  A
            # reliable transport never delivers garbage — treat it as a
            # loss and let the cumulative ACK drive a retransmission.
            self.corrupt_rejected += 1
            self._m_corrupt_rejected.inc()
            self._send_cumulative_ack(ecn=packet.ecn)
            return
        if packet.is_trimmed:
            # The baseline cannot use a trimmed payload: count it as lost.
            self.trimmed_rejected += 1
            self._m_trimmed_rejected.inc()
            self._send_cumulative_ack(ecn=packet.ecn)
            return
        if packet.seq == self._expected:
            self._delivered.append(packet)
            self._expected += 1
            if packet.int_ext is not None:
                get_int_collector().collect(packet)
        elif packet.seq > self._expected:
            self.out_of_order_discarded += 1
            self._m_ooo_discarded.inc()
        # seq < expected: retransmitted duplicate of old data; just re-ACK.
        self._send_cumulative_ack(ecn=packet.ecn)
        if self.complete and self.on_message is not None:
            callback, self.on_message = self.on_message, None
            callback(list(self._delivered))

    def _send_cumulative_ack(self, ecn: bool) -> None:
        if self._peer is None:
            return
        # Transient-kind: once the sender processes this ACK it is dead,
        # and MessageSenderBase._dispatch recycles it.
        ack = _arena._ARENA.acquire(
            src=self.host.name,
            dst=self._peer,
            is_ack=True,
            seq=self._expected - 1 if self._expected else _ACK_NONE,
            flow_id=self.flow_id,
            priority=2,
            ecn=ecn,
        )
        self.host.send(ack)
