"""Trimming-aware transport — the paper's data path.

NDP-style selective transport that understands trimmable gradients:

* A **trimmed gradient packet is a delivery**, not a loss.  The receiver
  keeps the decodable head, ACKs it (with ``trimmed_echo`` so the sender
  sees the congestion signal), and the message completes *without any
  retransmission* — the paper's central claim of consistent flow
  completion times with no stragglers.
* A trimmed **non-gradient** packet (the transport also carries opaque
  payloads) acts as an NDP NACK: the header's arrival proves the loss
  and triggers an immediate retransmission, no timeout needed.
* Fully dropped packets (rare: trimmed headers travel in the express
  band) are recovered by the retransmission timer.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..net.host import Host
from ..obs.int_telemetry import get_int_collector
from ..obs.metrics import get_registry
from ..packet import arena as _arena
from ..packet.packet import Packet
from .base import MessageSenderBase

__all__ = ["TrimmingSender", "TrimmingReceiver"]


class TrimmingSender(MessageSenderBase):
    """Selective-repeat sender that treats trims as deliveries."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._acked: set[int] = set()
        self._next = 0
        self.trims_reported = 0
        self._m_trims_reported = get_registry().counter(
            "repro_transport_trims_reported_total",
            "trimmed-echo ACKs seen by the sender",
            ("transport",),
        ).bind(transport=type(self).__name__)

    def _reset_state(self) -> None:
        self._acked = set()
        self._next = 0
        self.trims_reported = 0
        self._send_times.clear()

    def _inflight(self) -> int:
        return self._next - len([s for s in self._acked if s < self._next])

    def _pump(self) -> None:
        total = len(self._packets)
        while self._next < total and self._inflight() < self.cc.window:
            self._emit(self._next)
            self._next += 1
        if len(self._acked) < total and self._timer is None:
            self._arm_timer()

    def _handle_control(self, packet: Packet) -> None:
        if packet.nack:
            # NDP-style: trimmed header == instant loss signal for
            # non-gradient payloads; retransmit right away.
            self.cc.on_trim()
            if packet.seq not in self._acked:
                self._emit(packet.seq, retransmission=True)
            return
        seq = packet.seq
        if seq in self._acked:
            return
        self._acked.add(seq)
        self._sample_rtt(seq)
        if packet.trimmed_echo:
            self.trims_reported += 1
            self._m_trims_reported.inc()
            if self.record is not None:
                self.record.packets_trimmed += 1
            self.cc.on_trim()
        else:
            self.cc.on_ack(ecn=packet.ecn)
        if len(self._acked) >= len(self._packets):
            self._complete()
            return
        self._arm_timer()
        self._pump()

    def _on_timeout(self) -> None:
        # Selective recovery: re-send only what is still unacknowledged.
        for seq in range(min(self._next, len(self._packets))):
            if seq not in self._acked:
                self._emit(seq, retransmission=True)
        self._arm_timer()
        self._pump()


class TrimmingReceiver:
    """Receiver that accepts trimmed gradient packets as deliveries.

    Args:
        host: receiving endpoint.
        flow_id: flow to listen on.
        on_message: called with the (seq-ordered) packet list — trimmed
            packets included as-is, ready for
            :func:`repro.core.packetizer.decode_packets`.
        accept_trimmed: when False this degenerates into a selective but
            trim-oblivious transport (useful as an ablation).
    """

    def __init__(
        self,
        host: Host,
        flow_id: int,
        on_message: Optional[Callable[[List[Packet]], None]] = None,
        accept_trimmed: bool = True,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.flow_id = flow_id
        self.on_message = on_message
        self.accept_trimmed = accept_trimmed
        self._received: Dict[int, Packet] = {}
        self._total: Optional[int] = None
        self._peer: Optional[str] = None
        self.trimmed_accepted = 0
        self.nacks_sent = 0
        self.corrupt_rejected = 0
        registry = get_registry()
        self._m_trimmed_accepted = registry.counter(
            "repro_transport_trimmed_accepted_total",
            "trimmed gradient packets accepted as deliveries",
            ("transport",),
        ).bind(transport=type(self).__name__)
        self._m_corrupt_rejected = registry.counter(
            "repro_transport_corrupt_rejected_total",
            "packets failing checksum verification, treated as losses",
            ("transport",),
        ).bind(transport=type(self).__name__)
        self._m_nacks = registry.counter(
            "repro_transport_nacks_total",
            "NDP-style NACKs sent for unusable trimmed packets",
            ("transport",),
        ).bind(transport=type(self).__name__)
        host.register_flow(flow_id, self._on_packet)

    @property
    def complete(self) -> bool:
        """All sequence numbers covered (full or trimmed)."""
        return self._total is not None and len(self._received) >= self._total

    def packets(self) -> List[Packet]:
        """Received packets in sequence order."""
        return [self._received[seq] for seq in sorted(self._received)]

    def _on_packet(self, packet: Packet) -> None:
        if packet.is_ack:
            return
        self._peer = packet.src
        self._total = packet.seq_total or self._total
        if not packet.verify():
            # The payload (gradient heads/tails, or worse: the metadata /
            # scale packet every decode depends on) was corrupted in
            # flight.  Decoding garbage would silently poison the round —
            # re-request instead, exactly like an NDP NACK.
            self.corrupt_rejected += 1
            self._m_corrupt_rejected.inc()
            self._send_control(packet.seq, nack=True)
            self.nacks_sent += 1
            self._m_nacks.inc()
            return
        if packet.is_trimmed:
            usable = self.accept_trimmed and packet.is_gradient
            if not usable:
                self._send_control(packet.seq, nack=True)
                self.nacks_sent += 1
                self._m_nacks.inc()
                return
            if packet.seq not in self._received:
                self.trimmed_accepted += 1
                self._m_trimmed_accepted.inc()
                self._received[packet.seq] = packet
                if packet.int_ext is not None:
                    get_int_collector().collect(packet)
            self._send_control(packet.seq, trimmed_echo=True, ecn=packet.ecn)
        else:
            # A full copy upgrades a previously trimmed one.
            prior = self._received.get(packet.seq)
            if prior is None or prior.is_trimmed:
                self._received[packet.seq] = packet
                if packet.int_ext is not None:
                    get_int_collector().collect(packet)
            self._send_control(packet.seq, ecn=packet.ecn)
        if self.complete and self.on_message is not None:
            callback, self.on_message = self.on_message, None
            callback(self.packets())

    def _send_control(
        self, seq: int, nack: bool = False, trimmed_echo: bool = False, ecn: bool = False
    ) -> None:
        if self._peer is None:
            return
        # Transient-kind: recycled by the sender's dispatch once read.
        self.host.send(
            _arena._ARENA.acquire(
                src=self.host.name,
                dst=self._peer,
                is_ack=True,
                nack=nack,
                trimmed_echo=trimmed_echo,
                seq=seq,
                flow_id=self.flow_id,
                priority=2,
                ecn=ecn,
            )
        )
