"""Window-based congestion control.

Three controllers that bracket the paper's setting:

* :class:`FixedWindow` — no reaction; models an aggressively provisioned
  RDMA-style sender (and keeps microbenchmarks deterministic).
* :class:`AIMD` — TCP-NewReno-flavoured: +1/cwnd per ACK, halve on loss
  or ECN.
* :class:`DCTCP` — ECN-*fraction* proportional decrease, the standard
  data-center control the paper contrasts with trimming.

Trim notifications feed :meth:`CongestionControl.on_trim`.  Per
Section 5.3, a trimming-aware sender should *not* slow down as hard as on
loss — the trimmed packet still delivered its head, and the whole point
is to keep the link saturated and let the switch compress.  DCTCP treats
a trim like an ECN mark; AIMD applies a gentle multiplicative decrease.
"""

from __future__ import annotations

__all__ = ["CongestionControl", "FixedWindow", "AIMD", "DCTCP"]


class CongestionControl:
    """Interface: a window measured in packets."""

    def __init__(self, initial_window: float = 10.0, max_window: float = 1024.0) -> None:
        if initial_window < 1:
            raise ValueError("initial window must be at least 1 packet")
        self.cwnd = float(initial_window)
        self.max_window = float(max_window)

    @property
    def window(self) -> int:
        """Usable window, whole packets, at least 1."""
        return max(1, int(self.cwnd))

    def on_ack(self, ecn: bool = False) -> None:
        """A data packet was acknowledged (``ecn``: CE mark echoed)."""

    def on_trim(self) -> None:
        """An in-network trim was reported for one of our packets."""

    def on_loss(self) -> None:
        """A retransmission timeout fired."""

    def _clamp(self) -> None:
        self.cwnd = min(max(self.cwnd, 1.0), self.max_window)


class FixedWindow(CongestionControl):
    """Constant window: no congestion reaction at all."""


class AIMD(CongestionControl):
    """Additive-increase / multiplicative-decrease with ECN support."""

    def __init__(
        self,
        initial_window: float = 10.0,
        max_window: float = 1024.0,
        trim_decrease: float = 0.9,
    ) -> None:
        super().__init__(initial_window, max_window)
        self.trim_decrease = trim_decrease

    def on_ack(self, ecn: bool = False) -> None:
        if ecn:
            self.cwnd *= 0.5
        else:
            self.cwnd += 1.0 / self.cwnd
        self._clamp()

    def on_trim(self) -> None:
        # Gentler than loss: the head got through, only tails were cut.
        self.cwnd *= self.trim_decrease
        self._clamp()

    def on_loss(self) -> None:
        self.cwnd *= 0.5
        self._clamp()


class DCTCP(CongestionControl):
    """DCTCP: decrease proportional to the EWMA fraction of marked ACKs.

    ``alpha`` tracks the marked fraction with gain ``g``; each window's
    end applies ``cwnd *= 1 - alpha/2``.  We approximate per-window
    epochs by counting ACKs against the current window.
    """

    def __init__(
        self,
        initial_window: float = 10.0,
        max_window: float = 1024.0,
        gain: float = 1.0 / 16.0,
    ) -> None:
        super().__init__(initial_window, max_window)
        self.gain = gain
        self.alpha = 0.0
        self._acks = 0
        self._marked = 0
        self._epoch = max(1, int(self.cwnd))

    def _roll_epoch(self) -> None:
        fraction = self._marked / max(1, self._acks)
        self.alpha = (1 - self.gain) * self.alpha + self.gain * fraction
        if self.alpha > 0:
            self.cwnd *= 1 - self.alpha / 2
        self._acks = 0
        self._marked = 0
        self._epoch = max(1, int(self.cwnd))
        self._clamp()

    def on_ack(self, ecn: bool = False) -> None:
        self._acks += 1
        if ecn:
            self._marked += 1
        else:
            self.cwnd += 1.0 / self.cwnd
        if self._acks >= self._epoch:
            self._roll_epoch()
        self._clamp()

    def on_trim(self) -> None:
        # A trim is a congestion signal of the same grade as a CE mark.
        self._acks += 1
        self._marked += 1
        if self._acks >= self._epoch:
            self._roll_epoch()

    def on_loss(self) -> None:
        self.cwnd *= 0.5
        self._clamp()
