"""Elastic worker membership with phi-accrual suspicion.

Classic failure detectors answer a binary "is it dead?"; the phi-accrual
detector (Hayashibara et al.) instead outputs a *suspicion level*
``phi = -log10 P(T > observed)`` under the distribution of the worker's
past round times — phi 1 means a round this slow happens one time in
ten, phi 3 one time in a thousand.  :class:`Membership` feeds the
detector with the trainer's modeled per-worker round times:

* ``alive``   — responding within the deadline, low phi;
* ``suspect`` — responded, but slow enough that ``phi >= suspect_phi``;
* ``dead``    — missed ``evict_after`` consecutive deadlines (evicted).

Evicted workers can be re-admitted (``readmit``) once they respond
again; the trainer pairs that with a ``broadcast`` of the current model
so the rejoiner resumes from the live parameters, not its stale copy.
"""

from __future__ import annotations

import math
from collections import deque
from enum import Enum
from typing import Any, Deque, Dict, List, Mapping

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer

__all__ = ["Membership", "WorkerState"]

#: Floor on the round-time standard deviation so a perfectly regular
#: history does not make every deviation register as infinite suspicion.
_MIN_STD_S = 1e-6

#: Suspicion cap: erfc underflows around phi ~ 300; anything beyond
#: "one in 10^30" is reported as this sentinel.
_PHI_MAX = 30.0


class WorkerState(str, Enum):
    """Membership state of one worker."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


class Membership:
    """Tracks which workers are participating in the job.

    Args:
        world_size: total worker count (ranks ``0..world_size-1``).
        evict_after: consecutive missed deadlines before eviction.
        suspect_phi: phi-accrual threshold that flags a responding
            worker as suspect.
        window: round-time samples kept per worker for the detector.
        label: metrics label for eviction/rejoin counters.
    """

    def __init__(
        self,
        world_size: int,
        evict_after: int = 3,
        suspect_phi: float = 3.0,
        window: int = 32,
        label: str = "train",
    ) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if evict_after < 1:
            raise ValueError(f"evict_after must be >= 1, got {evict_after}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.world_size = world_size
        self.evict_after = evict_after
        self.suspect_phi = suspect_phi
        self.window = window
        self.label = label
        self.states: Dict[int, WorkerState] = {
            rank: WorkerState.ALIVE for rank in range(world_size)
        }
        self.missed: Dict[int, int] = {rank: 0 for rank in range(world_size)}
        self.evictions = 0
        self.rejoins = 0
        self._times: Dict[int, Deque[float]] = {
            rank: deque(maxlen=window) for rank in range(world_size)
        }
        registry = get_registry()
        self._m_evictions = registry.counter(
            "repro_resilience_evictions_total",
            "workers evicted after consecutive missed deadlines",
            ("run",),
        ).bind(run=label)
        self._m_rejoins = registry.counter(
            "repro_resilience_rejoins_total",
            "evicted workers re-admitted via model broadcast",
            ("run",),
        ).bind(run=label)
        self._m_alive = registry.gauge(
            "repro_resilience_alive_workers",
            "workers currently in the alive or suspect state",
            ("run",),
        ).bind(run=label)
        self._m_alive.set(float(world_size))

    # -- detector ---------------------------------------------------------------

    def phi(self, rank: int, observed_s: float) -> float:
        """Suspicion level of ``observed_s`` against the rank's history."""
        history = self._times[rank]
        if len(history) < 2:
            return 0.0
        mean = sum(history) / len(history)
        var = sum((t - mean) ** 2 for t in history) / len(history)
        std = max(math.sqrt(var), _MIN_STD_S)
        # P(T > observed) under Normal(mean, std), via erfc for tail accuracy.
        tail = 0.5 * math.erfc((observed_s - mean) / (std * math.sqrt(2.0)))
        if tail <= 10.0 ** (-_PHI_MAX):
            return _PHI_MAX
        return -math.log10(tail)

    # -- state transitions ------------------------------------------------------

    def observe(self, rank: int, round_time_s: float) -> WorkerState:
        """A worker responded within the deadline; update its state."""
        self._check(rank)
        suspicion = self.phi(rank, round_time_s)
        self._times[rank].append(round_time_s)
        self.missed[rank] = 0
        if self.states[rank] is WorkerState.DEAD:
            return WorkerState.DEAD  # still needs an explicit readmit
        new_state = (
            WorkerState.SUSPECT if suspicion >= self.suspect_phi else WorkerState.ALIVE
        )
        self.states[rank] = new_state
        return new_state

    def miss(self, rank: int) -> WorkerState:
        """A worker missed the deadline; evict after ``evict_after`` misses."""
        self._check(rank)
        if self.states[rank] is WorkerState.DEAD:
            return WorkerState.DEAD
        self.missed[rank] += 1
        if self.missed[rank] >= self.evict_after:
            self.states[rank] = WorkerState.DEAD
            self.evictions += 1
            self._m_evictions.inc()
            self._m_alive.set(float(len(self.participants())))
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "resilience.evict",
                    run=self.label,
                    worker=rank,
                    missed=self.missed[rank],
                )
        else:
            self.states[rank] = WorkerState.SUSPECT
        return self.states[rank]

    def readmit(self, rank: int) -> None:
        """Bring an evicted worker back (after the model broadcast)."""
        self._check(rank)
        if self.states[rank] is not WorkerState.DEAD:
            raise ValueError(f"worker {rank} is {self.states[rank].value}, not dead")
        self.states[rank] = WorkerState.ALIVE
        self.missed[rank] = 0
        self._times[rank].clear()  # stale history would bias the detector
        self.rejoins += 1
        self._m_rejoins.inc()
        self._m_alive.set(float(len(self.participants())))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("resilience.rejoin", run=self.label, worker=rank)

    # -- queries ----------------------------------------------------------------

    def state(self, rank: int) -> WorkerState:
        self._check(rank)
        return self.states[rank]

    def is_dead(self, rank: int) -> bool:
        self._check(rank)
        return self.states[rank] is WorkerState.DEAD

    def participants(self) -> List[int]:
        """Ranks still in the round (alive or suspect)."""
        return [
            rank
            for rank in range(self.world_size)
            if self.states[rank] is not WorkerState.DEAD
        ]

    def _check(self, rank: int) -> None:
        if rank not in self.states:
            raise KeyError(f"unknown worker rank {rank}")

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Full detector + membership state, JSON-ready."""
        return {
            "states": {str(r): s.value for r, s in self.states.items()},
            "missed": {str(r): m for r, m in self.missed.items()},
            "evictions": self.evictions,
            "rejoins": self.rejoins,
            "times": {str(r): list(t) for r, t in self._times.items()},
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Inverse of :meth:`state_dict`."""
        self.states = {
            int(r): WorkerState(v) for r, v in dict(state["states"]).items()
        }
        self.missed = {int(r): int(m) for r, m in dict(state["missed"]).items()}
        self.evictions = int(state["evictions"])
        self.rejoins = int(state["rejoins"])
        self._times = {
            int(r): deque((float(x) for x in ts), maxlen=self.window)
            for r, ts in dict(state["times"]).items()
        }
        self._m_alive.set(float(len(self.participants())))
