"""Deterministic training checkpoints.

A checkpoint is a plain-data snapshot of *everything* that feeds the
training trajectory: model parameters, SGD momentum buffers, the LR
scheduler's epoch, epoch/round counters, each data loader's PCG64
state as captured at the start of the current epoch, channel
accounting, and the resilience state (deadline counters, membership,
error-feedback residuals).  Codec randomness needs no snapshot — it is
counter-based Philox keyed by ``(seed, epoch, message_id)``, a pure
function of counters that are themselves checkpointed.

Numbers round-trip through JSON exactly (Python serializes floats via
``repr``, which is shortest-round-trip), so saving, loading and
continuing produces a byte-identical :class:`TrainingHistory` to the
uninterrupted run — the invariant ``repro-resilience resume-check``
verifies in CI.

This module is deliberately import-light (no trainer imports); the
restore logic that knows about models and optimizers lives in
:meth:`repro.train.ddp.DDPTrainer.restore`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

__all__ = ["TrainingCheckpoint"]


@dataclass
class TrainingCheckpoint:
    """Everything needed to resume training mid-epoch, JSON-ready.

    Attributes:
        label: the run label (sanity-checked on restore).
        seed: the training config seed (sanity-checked on restore).
        epoch: the epoch the run was inside when snapshotted (1-based).
        rounds_run: total rounds completed so far.
        rounds_in_epoch: rounds completed inside the current epoch.
        wall_clock_s: modeled wall clock at the *start* of the epoch.
        epoch_losses: per-round losses of the current, partial epoch.
        model_flat: flattened model parameters.
        optimizer: SGD state (velocity buffers + current lr).
        scheduler_epoch: completed scheduler steps.
        loader_states: each loader's RNG state at the epoch start —
            restore rewinds to the epoch start and replays the already
            finished rounds so mid-epoch draws line up exactly.
        message_counter: the comm hook's message-id counter.
        channel_stats: cumulative ChannelStats fields.
        history: per-epoch records completed before the snapshot.
        deadline: RoundDeadline counters (absent without resilience).
        membership: Membership state (absent without resilience).
        ef: EFChannel residuals (absent without error feedback).
    """

    label: str
    seed: int
    epoch: int
    rounds_run: int
    rounds_in_epoch: int
    wall_clock_s: float
    epoch_losses: List[float]
    model_flat: List[float]
    optimizer: Dict[str, Any]
    scheduler_epoch: int
    loader_states: List[Dict[str, Any]]
    message_counter: int
    channel_stats: Dict[str, Any]
    history: List[Dict[str, Any]] = field(default_factory=list)
    epoch_stragglers: int = 0  # straggler count inside the partial epoch
    epoch_evictions: int = 0
    epoch_rejoins: int = 0
    deadline: Dict[str, Any] = field(default_factory=dict)
    membership: Dict[str, Any] = field(default_factory=dict)
    ef: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Canonical (sorted-keys) JSON form."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TrainingCheckpoint":
        """Inverse of :meth:`to_json`; unknown keys are rejected."""
        data: Mapping[str, Any] = json.loads(text)
        known = {f.name for f in fields(cls)}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown checkpoint keys: {sorted(extra)}")
        return cls(**data)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the canonical JSON to ``path``."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TrainingCheckpoint":
        """Read a checkpoint previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
