"""Bridge from declarative fault scenarios to the trainer's clock.

The network harness interprets a ``worker-crash`` spec by taking host
``tx<rank>``'s uplink down; the DDP trainer has no packets, only a
modeled wall clock.  :class:`WorkerFaultPlan` evaluates the same
worker-scoped :class:`~repro.faults.scenarios.FaultSpec` windows
against that modeled clock:

* ``crash``: the worker is unreachable while the spec window is open —
  its round time is infinite and it misses every deadline.
* ``straggler``: the worker's round time is multiplied by the expected
  slowdown ``1 + rate * (slow_factor - 1)`` (``rate`` is the fraction
  of packets delayed on the wire; on the modeled clock it becomes the
  deterministic expected stretch).

:class:`ResilienceConfig` carries the plan plus the deadline/membership
knobs into :class:`~repro.train.ddp.DDPTrainer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..faults.scenarios import FaultSpec, Scenario

__all__ = ["ResilienceConfig", "WorkerFaultPlan"]


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Worker-scoped fault windows evaluated on the modeled clock."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for spec in self.specs:
            if spec.fault not in ("crash", "straggler"):
                raise ValueError(
                    f"plan only takes worker-scoped specs, got {spec.fault!r}"
                )

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "WorkerFaultPlan":
        """Extract the crash/straggler specs from a scenario."""
        return cls(specs=scenario.worker_faults())

    def crashed(self, worker: int, now_s: float) -> bool:
        """Is ``worker`` inside an open crash window at ``now_s``?"""
        return any(
            spec.fault == "crash"
            and spec.worker_rank == worker
            and spec.active_at(now_s)
            for spec in self.specs
        )

    def slow_factor(self, worker: int, now_s: float) -> float:
        """Multiplicative round-time stretch for ``worker`` at ``now_s``."""
        factor = 1.0
        for spec in self.specs:
            if (
                spec.fault == "straggler"
                and spec.worker_rank == worker
                and spec.active_at(now_s)
            ):
                factor *= 1.0 + spec.rate * (spec.slow_factor - 1.0)
        return factor

    def round_time(self, worker: int, base_s: float, now_s: float) -> float:
        """One worker's modeled round time under the plan (inf = crashed)."""
        if self.crashed(worker, now_s):
            return math.inf
        return base_s * self.slow_factor(worker, now_s)


@dataclass
class ResilienceConfig:
    """Everything the trainer needs to survive worker-level faults.

    Attributes:
        plan: the fault schedule (empty plan = no injected faults, but
            deadlines/membership still armed).
        deadline_factor: round budget as a multiple of the nominal
            round time from the cost model.
        evict_after: consecutive missed deadlines before eviction.
        suspect_phi: phi-accrual threshold for the suspect state.
        rejoin: re-admit an evicted worker (with a model broadcast)
            once its crash window closes.
        error_feedback: wrap the hook's channel in
            :class:`~repro.resilience.ef.EFChannel`.
    """

    plan: WorkerFaultPlan = field(default_factory=WorkerFaultPlan)
    deadline_factor: float = 1.5
    evict_after: int = 3
    suspect_phi: float = 3.0
    rejoin: bool = True
    error_feedback: bool = False

    @classmethod
    def from_scenario(cls, scenario: Scenario, **kwargs: object) -> "ResilienceConfig":
        """Config whose plan is the scenario's worker-scoped faults."""
        plan = WorkerFaultPlan.from_scenario(scenario)
        return cls(plan=plan, **kwargs)  # type: ignore[arg-type]

    def __post_init__(self) -> None:
        if self.deadline_factor <= 1.0:
            raise ValueError(
                f"deadline_factor must exceed 1, got {self.deadline_factor}"
            )
        if self.evict_after < 1:
            raise ValueError(f"evict_after must be >= 1, got {self.evict_after}")
