"""Worker-level fault tolerance for the trim-pipeline trainer.

The paper removes *packet-level* stragglers (retransmission stalls) by
trimming; this package handles the *worker-level* failures that remain
in any real DDP job:

* :class:`RoundDeadline` — deadline-based partial aggregation: workers
  whose modeled round time exceeds the deadline are excluded and the
  mean is rescaled over the responders (unbiased over that subset).
* :class:`Membership` — alive/suspect/dead tracking with a phi-accrual
  suspicion score, eviction after ``k`` missed deadlines, and rejoin
  via a model broadcast.
* :class:`EFChannel` — DGC-style error feedback: the per-worker
  residual of whatever trimming/quantization/surrendered rounds
  discarded is added back before the next encode, turning silent loss
  into delayed updates.
* :class:`TrainingCheckpoint` — deterministic snapshot of model,
  momentum, scheduler, loaders and counters so crash + resume replays
  the uninterrupted run byte-identically.
* :class:`WorkerFaultPlan` / :class:`ResilienceConfig` — bridge the
  declarative ``worker-crash`` / ``straggler-storm`` scenarios of
  :mod:`repro.faults` into the trainer's modeled clock.
"""

from .checkpoint import TrainingCheckpoint
from .deadline import RoundDeadline
from .ef import EFChannel
from .membership import Membership, WorkerState
from .plan import ResilienceConfig, WorkerFaultPlan

__all__ = [
    "EFChannel",
    "Membership",
    "ResilienceConfig",
    "RoundDeadline",
    "TrainingCheckpoint",
    "WorkerState",
    "WorkerFaultPlan",
]
