"""Error-feedback channel wrapper (DGC / EF-SGD style).

Every lossy stage of the pipeline — trimming, quantization, a dropped
packet, a surrendered round — discards gradient mass silently.  Deep
Gradient Compression's fix is *error feedback*: keep what the channel
lost as a per-worker residual and add it back to the next round's
input, so compression error telescopes instead of accumulating:

    carry_t    = input_t + residual_{t-1}
    delivered  = channel(carry_t)
    residual_t = carry_t - delivered

which gives ``sum(delivered) + residual_T == sum(inputs)`` exactly —
the invariant the property suite checks.  A surrendered round (zero
delivered) leaves the whole carry in the residual: the update is
delayed one round, not lost.

Residuals are keyed by ``(worker, slot)`` where ``slot`` is the
message's index *within the round* — stable across rounds even under
DDP bucketing, where one round issues several messages per worker with
fresh ``message_id``s.  :meth:`EFChannel.end_round` closes a round and
resets the slot counters; :class:`~repro.collectives.hooks.CommHook`
calls it automatically after each aggregation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from ..collectives.channel import GradientChannel
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer

__all__ = ["EFChannel"]


class EFChannel(GradientChannel):
    """Wrap any :class:`GradientChannel` with per-worker error feedback.

    The wrapper shares the inner channel's :class:`ChannelStats` object,
    so trim/drop/surrender accounting stays in one place regardless of
    wrapping.

    Args:
        inner: the lossy channel to compensate.
        label: metrics label for the residual-norm gauge.
    """

    def __init__(self, inner: GradientChannel, label: str = "train") -> None:
        super().__init__()
        self.inner = inner
        self.label = label
        self.stats = inner.stats  # shared accounting
        self._residuals: Dict[Tuple[int, int], np.ndarray] = {}
        self._slots: Dict[int, int] = {}
        self._m_residual_norm = get_registry().gauge(
            "repro_resilience_ef_residual_norm",
            "L2 norm of the error-feedback residual per worker",
            ("run", "worker"),
        )

    def transfer(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0, worker: int = 0
    ) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.float64)
        slot = self._slots.get(worker, 0)
        self._slots[worker] = slot + 1
        key = (worker, slot)
        residual = self._residuals.get(key)
        carry = flat if residual is None else flat + residual
        delivered = self.inner.transfer(
            carry, epoch=epoch, message_id=message_id, worker=worker
        )
        self._residuals[key] = carry - delivered
        norm = float(np.linalg.norm(self._residuals[key]))
        self._m_residual_norm.set(norm, run=self.label, worker=worker)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "resilience.ef_residual",
                run=self.label,
                epoch=epoch,
                message_id=message_id,
                worker=worker,
                slot=slot,
                residual_norm=norm,
            )
        return delivered

    def end_round(self) -> None:
        """Close the round: the next transfer starts again at slot 0."""
        self._slots.clear()

    def residual(self, worker: int, slot: int = 0) -> np.ndarray:
        """Copy of one residual (zeros-shaped errors start as absent)."""
        value = self._residuals.get((worker, slot))
        if value is None:
            raise KeyError(f"no residual for worker {worker}, slot {slot}")
        return value.copy()

    def residual_norms(self) -> Dict[int, float]:
        """Per-worker total residual L2 norm across all slots."""
        totals: Dict[int, float] = {}
        for (worker, _slot), value in self._residuals.items():
            totals[worker] = totals.get(worker, 0.0) + float(
                np.sum(value * value)
            )
        return {worker: float(np.sqrt(s)) for worker, s in sorted(totals.items())}

    def drop_worker(self, worker: int) -> None:
        """Discard a worker's residuals (evicted workers rejoin fresh)."""
        self._residuals = {
            key: value for key, value in self._residuals.items() if key[0] != worker
        }
        self._slots.pop(worker, None)

    def reset_stats(self) -> None:
        self.inner.reset_stats()
        self.stats = self.inner.stats

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Residual buffers and slot counters, JSON-ready."""
        residuals: List[Dict[str, Any]] = [
            {"worker": worker, "slot": slot, "values": value.tolist()}
            for (worker, slot), value in sorted(self._residuals.items())
        ]
        return {
            "residuals": residuals,
            "slots": {str(w): s for w, s in self._slots.items()},
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Inverse of :meth:`state_dict`."""
        self._residuals = {
            (int(item["worker"]), int(item["slot"])): np.asarray(
                item["values"], dtype=np.float64
            )
            for item in state["residuals"]
        }
        self._slots = {int(w): int(s) for w, s in dict(state["slots"]).items()}
