"""Deadline-based partial aggregation.

A synchronous all-reduce is only as fast as its slowest worker; one
straggler stalls every round.  :class:`RoundDeadline` gives each round a
time budget (derived from the :class:`~repro.train.timing.RoundTimeModel`
via :meth:`RoundDeadline.from_time_model`): workers whose modeled
transfer time exceeds the budget are excluded from the round, and the
collectives rescale the mean over the responders — an unbiased
estimator of the responder mean, with the stragglers' contribution
deferred rather than waited for.

The deadline is fed per round by the trainer (``begin_round``) with
each worker's modeled time for that round; the collectives then call
``split`` — possibly several times per round under DDP bucketing, so
the responder set is fixed at ``begin_round`` and ``split`` only
filters it (no double counting).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer

__all__ = ["RoundDeadline"]


class RoundDeadline:
    """Per-round time budget separating responders from stragglers.

    Args:
        deadline_s: modeled seconds a worker may take before it is
            excluded from the round.
        label: metrics label for the straggler counters.
    """

    def __init__(self, deadline_s: float, label: str = "train") -> None:
        if deadline_s <= 0.0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        self.deadline_s = deadline_s
        self.label = label
        self.rounds = 0
        self.total_stragglers = 0
        self.last_times: Dict[int, float] = {}
        self.last_responders: Tuple[int, ...] = ()
        self.last_stragglers: Tuple[int, ...] = ()
        self._m_stragglers = get_registry().counter(
            "repro_resilience_stragglers_total",
            "workers excluded from a round for exceeding the deadline",
            ("run",),
        ).bind(run=label)

    @classmethod
    def from_time_model(
        cls,
        model: Any,
        num_coords: int,
        factor: float = 1.5,
        label: str = "train",
        **round_kwargs: Any,
    ) -> "RoundDeadline":
        """Budget = ``factor`` x the cost model's nominal round time.

        ``model`` is a :class:`~repro.train.timing.RoundTimeModel` (typed
        loosely to keep this package import-light); ``round_kwargs`` are
        forwarded to :meth:`~repro.train.timing.RoundTimeModel.round_time`
        (codec_name, trim_rate, drop_rate, world_size).
        """
        if factor <= 1.0:
            raise ValueError(f"deadline factor must exceed 1, got {factor}")
        nominal = model.round_time(num_coords, **round_kwargs)
        return cls(deadline_s=factor * float(nominal.total_s), label=label)

    def begin_round(self, times: Mapping[int, float]) -> None:
        """Fix this round's responder set from per-worker modeled times.

        ``times`` maps worker rank to its modeled round time; ``inf``
        marks a worker known to be crashed or evicted.
        """
        self.rounds += 1
        self.last_times = dict(times)
        responders = sorted(r for r, t in times.items() if t <= self.deadline_s)
        stragglers = sorted(r for r in times if r not in set(responders))
        self.last_responders = tuple(responders)
        self.last_stragglers = tuple(stragglers)
        if stragglers:
            self.total_stragglers += len(stragglers)
            self._m_stragglers.inc(len(stragglers))
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "resilience.stragglers",
                    run=self.label,
                    round=self.rounds,
                    deadline_s=self.deadline_s,
                    stragglers=list(stragglers),
                    responders=list(responders),
                )

    def split(self, ranks: Sequence[int]) -> Tuple[List[int], List[int]]:
        """Partition ``ranks`` into (responders, stragglers).

        Before any ``begin_round`` every rank responds — a deadline-aware
        collective used without a trainer degrades to the plain path.
        """
        if not self.last_times:
            return list(ranks), []
        late = set(self.last_stragglers)
        responders = [r for r in ranks if r not in late]
        stragglers = [r for r in ranks if r in late]
        return responders, stragglers

    def state_dict(self) -> Dict[str, Any]:
        """Counters and last-round split, JSON-ready."""
        return {
            "deadline_s": self.deadline_s,
            "rounds": self.rounds,
            "total_stragglers": self.total_stragglers,
            "last_times": {str(k): v for k, v in self.last_times.items()},
            "last_responders": list(self.last_responders),
            "last_stragglers": list(self.last_stragglers),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (deadline_s is checked, not set)."""
        self.rounds = int(state["rounds"])
        self.total_stragglers = int(state["total_stragglers"])
        self.last_times = {int(k): float(v) for k, v in state["last_times"].items()}
        self.last_responders = tuple(int(r) for r in state["last_responders"])
        self.last_stragglers = tuple(int(r) for r in state["last_stragglers"])
