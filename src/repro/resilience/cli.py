"""``repro-resilience``: worker-fault training runs from the shell.

Subcommands:

* ``repro-resilience run <scenario>`` — train a small DDP job under a
  worker-scoped preset (``worker-crash``, ``straggler-storm``, or any
  scenario JSON) with deadlines + membership armed, and report
  per-epoch loss/accuracy plus straggler/eviction/rejoin counts.
* ``repro-resilience resume-check <scenario>`` — the byte-identity
  gate: run the job uninterrupted, then rerun it crashing at round R
  and resuming from a checkpoint, and fail unless both histories
  serialize to identical JSON.  CI runs exactly this.

Determinism note: the trainer's modeled clock must itself be
deterministic for resume to be byte-identical, so these commands keep
the timing model's measured-codec path off (``codec_name=None`` — the
cost model then uses only its configured constants).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..faults.scenarios import Scenario, scenario_by_name
from .plan import ResilienceConfig

if TYPE_CHECKING:  # heavy import deferred to runtime (see build_trainer)
    from ..train.ddp import DDPTrainer

logger = logging.getLogger("repro.resilience")

__all__ = ["main", "build_trainer"]


def _load_scenario(name: str) -> Scenario:
    if name.endswith(".json"):
        with open(name, "r", encoding="utf-8") as fh:
            return Scenario.from_dict(json.load(fh))
    return scenario_by_name(name)


def build_trainer(
    scenario: Scenario,
    seed: int = 0,
    epochs: int = 20,
    world_size: int = 4,
    trim_rate: float = 0.5,
    error_feedback: bool = False,
    deadline_factor: float = 1.5,
    evict_after: int = 3,
    label: str = "resilience",
) -> "DDPTrainer":
    """One standard small training job under ``scenario``'s fault plan.

    Deliberately tiny (MLP on the synthetic 8-class task) so the
    20-epoch acceptance run finishes in seconds; every component is the
    real one (RHT codec, trim channel, deadline, membership).
    """
    from ..collectives.hooks import AllReduceHook
    from ..core.codec import codec_by_name
    from ..nn.data import make_dataset
    from ..nn.models import MLP
    from ..train.ddp import DDPTrainer, TrainConfig
    from ..train.timing import RoundTimeModel, TimingConfig
    from ..train.trim_channel import TrimChannel

    train_set, test_set = make_dataset(
        num_classes=8,
        train_per_class=16,
        test_per_class=8,
        image_size=8,
        noise=1.0,
        seed=seed,
    )
    model = MLP(192, [16], 8, seed=seed + 3)
    hook = AllReduceHook(
        TrimChannel(
            codec_by_name("rht", root_seed=seed + 1, row_size=1024),
            trim_rate,
            seed=seed + 2,
        )
    )
    config = TrainConfig(
        epochs=epochs, batch_size=8, lr=0.1, seed=seed, augment=True
    )
    resilience = ResilienceConfig.from_scenario(
        scenario,
        deadline_factor=deadline_factor,
        evict_after=evict_after,
        error_feedback=error_feedback,
    )
    return DDPTrainer(
        model,
        train_set,
        test_set,
        world_size=world_size,
        hook=hook,
        config=config,
        time_model=RoundTimeModel(TimingConfig()),
        resilience=resilience,
        label=label,
    )


def _trainer_kwargs(ns: argparse.Namespace) -> Dict[str, Any]:
    return {
        "seed": ns.seed,
        "epochs": ns.epochs,
        "world_size": ns.world,
        "trim_rate": ns.trim_rate,
        "error_feedback": ns.ef,
        "deadline_factor": ns.deadline_factor,
        "evict_after": ns.evict_after,
    }


def _cmd_run(ns: argparse.Namespace) -> int:
    scenario = _load_scenario(ns.scenario)
    trainer = build_trainer(scenario, **_trainer_kwargs(ns))
    history = trainer.train()
    for record in history.records:
        logger.info(
            "epoch %2d  loss %.4f  top1 %.4f  stragglers %d  "
            "evictions %d  rejoins %d",
            record.epoch,
            record.train_loss,
            record.top1,
            record.stragglers,
            record.evictions,
            record.rejoins,
        )
    deadline = trainer.deadline
    membership = trainer.membership
    assert deadline is not None and membership is not None  # armed by build_trainer
    summary: Dict[str, Any] = {
        "scenario": scenario.name,
        "seed": ns.seed,
        "epochs": len(history.records),
        "final_top1": history.final_top1,
        "diverged": history.diverged,
        "rounds": deadline.rounds,
        "stragglers": deadline.total_stragglers,
        "evictions": membership.evictions,
        "rejoins": membership.rejoins,
        "states": {
            str(rank): state.value for rank, state in membership.states.items()
        },
        "surrendered": trainer.hook.stats.rounds_surrendered,
    }
    logger.info("%s", json.dumps(summary, sort_keys=True))
    if ns.out is not None:
        payload = {"summary": summary, "history": history.as_dicts()}
        with open(ns.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.write("\n")
        logger.info("wrote history to %s", ns.out)
    if history.diverged:
        logger.error("training diverged under %s", scenario.name)
        return 1
    if len(history.records) < ns.epochs:
        logger.error(
            "only %d/%d epochs completed", len(history.records), ns.epochs
        )
        return 1
    return 0


def _cmd_resume_check(ns: argparse.Namespace) -> int:
    scenario = _load_scenario(ns.scenario)
    kwargs = _trainer_kwargs(ns)

    uninterrupted = build_trainer(scenario, **kwargs)
    reference = uninterrupted.train().to_json()

    crashed = build_trainer(scenario, **kwargs)
    crashed.train(max_rounds=ns.crash_round)
    blob = crashed.checkpoint().to_json()

    resumed = build_trainer(scenario, **kwargs)
    from .checkpoint import TrainingCheckpoint

    resumed.restore(TrainingCheckpoint.from_json(blob))
    replay = resumed.train().to_json()

    if replay != reference:
        logger.error(
            "resume mismatch: crash at round %d diverged from the "
            "uninterrupted run",
            ns.crash_round,
        )
        return 1
    logger.info(
        "resume-check ok: %s seed=%d crash_round=%d — %d epochs "
        "byte-identical (%d bytes)",
        scenario.name,
        ns.seed,
        ns.crash_round,
        len(resumed.history.records),
        len(reference),
    )
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "scenario",
        help="a preset name (e.g. worker-crash) or a path to a scenario .json",
    )
    parser.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
    parser.add_argument("--epochs", type=int, default=20, help="epochs (default 20)")
    parser.add_argument("--world", type=int, default=4, help="workers (default 4)")
    parser.add_argument(
        "--trim-rate", type=float, default=0.5, help="channel trim rate (default 0.5)"
    )
    parser.add_argument(
        "--ef", action="store_true", help="enable error-feedback residuals"
    )
    parser.add_argument(
        "--deadline-factor",
        type=float,
        default=1.5,
        help="round budget as a multiple of the nominal round time",
    )
    parser.add_argument(
        "--evict-after",
        type=int,
        default=3,
        help="consecutive missed deadlines before eviction (default 3)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-resilience",
        description="worker-level fault tolerance for the trim-pipeline trainer",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="train under a worker-fault scenario")
    _add_common(p_run)
    p_run.add_argument("--out", default=None, help="write the history JSON here")
    p_run.set_defaults(func=_cmd_run)

    p_resume = sub.add_parser(
        "resume-check", help="verify crash+resume is byte-identical"
    )
    _add_common(p_resume)
    p_resume.add_argument(
        "--crash-round",
        type=int,
        default=7,
        help="total rounds to run before the simulated crash (default 7)",
    )
    p_resume.set_defaults(func=_cmd_resume_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    logging.basicConfig(level=logging.INFO, format="%(message)s", stream=sys.stderr)
    ns = build_parser().parse_args(argv)
    return int(ns.func(ns))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
