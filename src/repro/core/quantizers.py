"""Scalar 1-bit trimmable codecs (paper Section 3.1).

Three per-coordinate head encodings, each with ``P = 1`` head bit and
``Q = 31`` tail bits:

* :class:`SignMagnitudeCodec` — head is the sign bit, tail is the float's
  exponent+mantissa; trimmed coordinates decode to ``±σ``.
* :class:`StochasticQuantizationCodec` (SQ) — TernGrad-style unbiased
  1-bit code over the clipped range ``[-L, L]``, ``L = 2.5σ``.
* :class:`SubtractiveDitheringCodec` (SD) — shared-randomness dither
  ``ε ~ U(-L/2, L/2)``; ``Q(x) = L·sign(x+ε)``, decode ``x̃ = Q(x) - ε``.

Tail construction.  Sign-magnitude's head *is* the true sign, so head +
31 remaining float bits reconstruct the value exactly.  SQ and SD heads
are randomized and may disagree with the true sign, so their 31-bit tail
spends one bit on a *sign correction* (``head XOR true-sign``) and keeps
the top 30 of the 31 exponent+mantissa bits — untrimmed decode is then
exact up to one dropped mantissa ULP, matching the paper's note that a
reduced tail loses original precision (footnote 1).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from ..transforms.prng import shared_generator
from .codec import (
    EncodedGradient,
    GradientCodec,
    compose_float32,
    float32_rest_bits,
    float32_sign_bits,
    register_codec,
)
from .metadata import GradientMetadata

__all__ = [
    "ScalarCodec",
    "SignMagnitudeCodec",
    "StochasticQuantizationCodec",
    "SubtractiveDitheringCodec",
]

#: TernGrad-style clipping multiplier: L = 2.5 sigma.
CLIP_SIGMA_MULTIPLIER = 2.5


@lru_cache(maxsize=8)
def _cached_dither(
    root_seed: int, epoch: int, message_id: int, scale: float, n: int
) -> np.ndarray:
    """Frozen dither stream for one ``(seed, message)`` key.

    The SD codec regenerates the identical ``U(-L, L)`` stream on encode
    and again on decode of the same message; caching the (read-only)
    array means each stream is drawn once per round trip.  The cache is
    deliberately tiny — streams are gradient-sized, and only the few
    in-flight messages of the current step can hit.
    """
    gen = shared_generator(root_seed, epoch, message_id, purpose="dither")
    dither = gen.uniform(-scale, scale, size=n)
    dither.setflags(write=False)
    return dither


class ScalarCodec(GradientCodec):
    """Shared machinery for the per-coordinate (non-rotating) codecs."""

    head_bits = 1
    tail_bits = 31

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed

    def _metadata(
        self, flat: np.ndarray, epoch: int, message_id: int, scale: float
    ) -> GradientMetadata:
        return GradientMetadata(
            message_id=message_id,
            epoch=epoch,
            original_length=flat.size,
            row_size=0,
            seed=self.root_seed,
            sigma=float(np.std(flat)),
            scale=scale,
        )

    @staticmethod
    def _plus_head(values: np.ndarray) -> np.ndarray:
        """Head bit 1 for non-negative values (matches pack_signs)."""
        return (1 - float32_sign_bits(values)).astype(np.uint32)

    @staticmethod
    def _exact_tail(head: np.ndarray, values: np.ndarray) -> np.ndarray:
        """31-bit tail = exponent+mantissa; exact with a true-sign head."""
        del head  # the sign head needs no correction bit
        return float32_rest_bits(values)

    @staticmethod
    def _corrected_tail(head: np.ndarray, values: np.ndarray) -> np.ndarray:
        """31-bit tail = correction bit + top-30 exponent/mantissa bits."""
        s_plus = (1 - float32_sign_bits(values)).astype(np.uint32)
        correction = (head ^ s_plus) & np.uint32(1)
        rest30 = float32_rest_bits(values) >> np.uint32(1)
        return (correction << np.uint32(30)) | rest30

    @staticmethod
    def _decode_corrected(head: np.ndarray, tails: np.ndarray) -> np.ndarray:
        """Invert :meth:`_corrected_tail` (lowest mantissa bit lost)."""
        correction = (tails >> np.uint32(30)) & np.uint32(1)
        rest31 = (tails & np.uint32(0x3FFFFFFF)) << np.uint32(1)
        s_plus = (head ^ correction) & np.uint32(1)
        return compose_float32(1 - s_plus, rest31)


@register_codec
class SignMagnitudeCodec(ScalarCodec):
    """Head = sign bit; trimmed coordinates decode to ``±σ``.

    The paper's simplest scheme — and the one whose training diverges once
    2 % or more of the packets are trimmed, because replacing a tiny
    coordinate by ``±σ`` is a large, *biased* error.
    """

    name = "sign"
    codec_id = 1

    def encode(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0
    ) -> EncodedGradient:
        flat = self._check_finite(flat)
        heads = self._plus_head(flat)
        tails = self._exact_tail(heads, flat)
        return EncodedGradient(
            codec_id=self.codec_id,
            head_bits=self.head_bits,
            tail_bits=self.tail_bits,
            length=flat.size,
            heads=heads,
            tails=tails,
            metadata=self._metadata(flat, epoch, message_id, scale=0.0),
        )

    def decode(
        self,
        enc: EncodedGradient,
        trimmed: Optional[np.ndarray] = None,
        missing: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        self._check_encoded(enc)
        mask = self._trimmed_mask(enc, trimmed)
        lost = self._missing_mask(enc, missing)
        exact = compose_float32(1 - enc.heads, enc.tails)
        sigma = enc.metadata.sigma
        signs = enc.heads.astype(np.float64) * 2.0 - 1.0
        decoded = np.where(mask, signs * sigma, exact)
        return np.where(lost, 0.0, decoded)


@register_codec
class StochasticQuantizationCodec(ScalarCodec):
    """TernGrad-style unbiased stochastic 1-bit quantization.

    After clipping ``v`` to ``[-L, L]`` with ``L = 2.5σ``, encode ``+1``
    with probability ``(L+v)/2L`` — the decoded ``±L`` value is then an
    unbiased estimate of the (clipped) coordinate.
    """

    name = "sq"
    codec_id = 2

    def __init__(self, root_seed: int = 0, clip_multiplier: float = CLIP_SIGMA_MULTIPLIER) -> None:
        super().__init__(root_seed)
        self.clip_multiplier = clip_multiplier

    def encode(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0
    ) -> EncodedGradient:
        flat = self._check_finite(flat)
        sigma = float(np.std(flat))
        scale = self.clip_multiplier * sigma
        if scale > 0:
            clipped = np.clip(flat, -scale, scale)
            p_plus = (scale + clipped) / (2.0 * scale)
        else:
            p_plus = np.full(flat.size, 0.5)
        gen = shared_generator(self.root_seed, epoch, message_id, purpose="quantize")
        heads = (gen.random(flat.size) < p_plus).astype(np.uint32)
        tails = self._corrected_tail(heads, flat)
        enc = EncodedGradient(
            codec_id=self.codec_id,
            head_bits=self.head_bits,
            tail_bits=self.tail_bits,
            length=flat.size,
            heads=heads,
            tails=tails,
            metadata=self._metadata(flat, epoch, message_id, scale=scale),
        )
        return enc

    def decode(
        self,
        enc: EncodedGradient,
        trimmed: Optional[np.ndarray] = None,
        missing: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        self._check_encoded(enc)
        mask = self._trimmed_mask(enc, trimmed)
        lost = self._missing_mask(enc, missing)
        exact = self._decode_corrected(enc.heads, enc.tails)
        signs = enc.heads.astype(np.float64) * 2.0 - 1.0
        decoded = np.where(mask, signs * enc.metadata.scale, exact)
        return np.where(lost, 0.0, decoded)


@register_codec
class SubtractiveDitheringCodec(ScalarCodec):
    """Subtractive dithering with shared randomness.

    Sender and receiver regenerate the same dither ``ε ~ U(-L, L)``
    from the (epoch, message id)-derived stream, so only the 1-bit code
    crosses the network.  With decode levels ``±L`` this dither width
    makes the trimmed estimate ``L·sign(v+ε) − ε`` exactly unbiased for
    every ``v`` in the clip range (``E = v``) with worst-case error
    ``L`` — smaller than SQ's and independent of the input.
    """

    name = "sd"
    codec_id = 3

    def __init__(self, root_seed: int = 0, clip_multiplier: float = CLIP_SIGMA_MULTIPLIER) -> None:
        super().__init__(root_seed)
        self.clip_multiplier = clip_multiplier

    def _dither(self, n: int, scale: float, epoch: int, message_id: int) -> np.ndarray:
        # Full-width dither: levels are ±scale, so U(-scale, scale) is
        # the unique width making E[scale·sign(v+ε) − ε] = v on the
        # whole clip range (a half-width dither doubles small values).
        # Cached read-only per (seed, message): decode reuses encode's draw.
        return _cached_dither(self.root_seed, epoch, message_id, scale, n)

    def encode(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0
    ) -> EncodedGradient:
        flat = self._check_finite(flat)
        sigma = float(np.std(flat))
        scale = self.clip_multiplier * sigma
        dither = self._dither(flat.size, scale, epoch, message_id)
        clipped = np.clip(flat, -scale, scale) if scale > 0 else flat
        heads = (clipped + dither >= 0).astype(np.uint32)
        tails = self._corrected_tail(heads, flat)
        return EncodedGradient(
            codec_id=self.codec_id,
            head_bits=self.head_bits,
            tail_bits=self.tail_bits,
            length=flat.size,
            heads=heads,
            tails=tails,
            metadata=self._metadata(flat, epoch, message_id, scale=scale),
        )

    def decode(
        self,
        enc: EncodedGradient,
        trimmed: Optional[np.ndarray] = None,
        missing: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        self._check_encoded(enc)
        mask = self._trimmed_mask(enc, trimmed)
        lost = self._missing_mask(enc, missing)
        exact = self._decode_corrected(enc.heads, enc.tails)
        meta = enc.metadata
        dither = self._dither(enc.length, meta.scale, meta.epoch, meta.message_id)
        signs = enc.heads.astype(np.float64) * 2.0 - 1.0
        decoded = np.where(mask, signs * meta.scale - dither, exact)
        return np.where(lost, 0.0, decoded)
