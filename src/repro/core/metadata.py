"""Reliable metadata side-channel for trimmable gradients.

Every codec in Section 3 ships a little out-of-band state that must *not*
be trimmed: the gradient's standard deviation ``σ`` (sign-magnitude), the
clipping range ``L = 2.5σ`` (SQ/SD, TernGrad-style), or the per-row
unbiased scales ``f = ‖V‖₂²/‖R(V)‖₁`` (RHT).  The paper sends these "in a
small packet that will not be trimmed"; here :class:`GradientMetadata` is
that packet's payload, with a compact binary serialization so the
simulator can actually carry it on the wire (flagged ``FLAG_METADATA`` so
switches refuse to trim it).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

__all__ = ["GradientMetadata"]

_FIXED = struct.Struct(">IHIIQddI")


@dataclass
class GradientMetadata:
    """Out-of-band decoding state for one collective message.

    Attributes:
        message_id: collective-communication message id.
        epoch: training epoch (with message_id, derives shared randomness).
        original_length: number of coordinates in the flat gradient.
        row_size: RHT row width (power of two), 0 for scalar codecs.
        seed: shared-randomness seed for rotation / dither.
        sigma: standard deviation of the original gradient.
        scale: clipping range ``L`` (SQ/SD) — 0 when unused.
        row_scales: per-row unbiased scales ``f`` (RHT) — empty otherwise.
        aux_scales: extra per-row scales (multi-level 8-bit plane range A).
    """

    message_id: int
    epoch: int
    original_length: int
    row_size: int
    seed: int
    sigma: float
    scale: float = 0.0
    row_scales: np.ndarray = field(default_factory=lambda: np.zeros(0))
    aux_scales: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def to_bytes(self) -> bytes:
        """Serialize to the reliable small-packet payload."""
        rows = np.asarray(self.row_scales, dtype=np.float64)
        aux = np.asarray(self.aux_scales, dtype=np.float64)
        fixed = _FIXED.pack(
            self.message_id,
            self.epoch,
            self.original_length,
            self.row_size,
            self.seed,
            self.sigma,
            self.scale,
            rows.size,
        )
        return (
            fixed
            + struct.pack(">I", aux.size)
            + rows.astype(">f4").tobytes()
            + aux.astype(">f4").tobytes()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "GradientMetadata":
        """Parse :meth:`to_bytes` output."""
        if len(data) < _FIXED.size + 4:
            raise ValueError(f"metadata payload too short: {len(data)} bytes")
        (
            message_id,
            epoch,
            original_length,
            row_size,
            seed,
            sigma,
            scale,
            n_rows,
        ) = _FIXED.unpack_from(data)
        (n_aux,) = struct.unpack_from(">I", data, _FIXED.size)
        offset = _FIXED.size + 4
        need = offset + 4 * (n_rows + n_aux)
        if len(data) < need:
            raise ValueError(f"metadata payload truncated: {len(data)} < {need}")
        rows = np.frombuffer(data, dtype=">f4", count=n_rows, offset=offset).astype(
            np.float64
        )
        aux = np.frombuffer(
            data, dtype=">f4", count=n_aux, offset=offset + 4 * n_rows
        ).astype(np.float64)
        return cls(
            message_id=message_id,
            epoch=epoch,
            original_length=original_length,
            row_size=row_size,
            seed=seed,
            sigma=sigma,
            scale=scale,
            row_scales=rows,
            aux_scales=aux,
        )

    @property
    def wire_bytes(self) -> int:
        """Size of the serialized metadata payload."""
        return (
            _FIXED.size
            + 4
            + 4 * (np.asarray(self.row_scales).size + np.asarray(self.aux_scales).size)
        )
