"""Gradient statistics: why the codecs behave the way they do.

Small analysis helpers used by the experiment write-ups:

* :func:`heavy_tail_index` — the ratio ``σ / E|v|`` that predicts the
  sign codec's failure (≈1.25 for a Gaussian; ≫ that for real training
  gradients, where the message-wide σ then poisons small coordinates);
* :func:`per_parameter_scales` — the per-layer gradient RMS table that
  shows the scale heterogeneity of BN-free VGG nets;
* :func:`codec_error_profile` — NMSE of every registered codec on a
  vector, at a list of trim rates, in one call.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Protocol, Sequence

import numpy as np

from ..transforms.prng import shared_generator
from .codec import available_codecs, codec_by_name, nmse

__all__ = ["heavy_tail_index", "per_parameter_scales", "codec_error_profile"]

#: sigma / E|v| of a zero-mean Gaussian: sqrt(pi/2).
GAUSSIAN_TAIL_INDEX = float(np.sqrt(np.pi / 2))


def heavy_tail_index(flat: np.ndarray) -> float:
    """``σ / E|v|`` — 1.2533 for Gaussian, larger for heavy tails.

    The sign codec decodes trimmed coordinates to ``±σ``; when this
    index is large, σ vastly overstates the typical coordinate and the
    decode is mostly noise — the paper's divergence regime.
    """
    flat = np.asarray(flat, dtype=np.float64).reshape(-1)
    if flat.size == 0:
        raise ValueError("empty vector")
    mean_abs = float(np.mean(np.abs(flat)))
    if mean_abs <= 0.0:
        return float("inf") if np.std(flat) > 0 else 1.0
    return float(np.std(flat)) / mean_abs


class SupportsParameters(Protocol):
    """Anything exposing ``parameters()`` over grad-bearing tensors."""

    def parameters(self) -> Iterable[Any]: ...


def per_parameter_scales(model: SupportsParameters) -> List[Dict[str, object]]:
    """Gradient RMS per parameter tensor (after a backward pass).

    ``model`` is anything with a ``parameters()`` method returning
    tensors with ``data``/``grad`` (duck-typed so :mod:`repro.core`
    stays independent of :mod:`repro.nn`).

    Returns one record per parameter: shape, size, rms.  The spread of
    these values across a model is the mechanism behind the sign codec's
    global-σ damage; DDP bucketing (``bucket_coords``) localizes it.
    """
    records: List[Dict[str, object]] = []
    for index, param in enumerate(model.parameters()):
        grad = param.grad if param.grad is not None else np.zeros_like(param.data)
        records.append(
            {
                "index": index,
                "shape": str(param.shape),
                "size": int(param.size),
                "rms": float(np.sqrt(np.mean(grad**2))),
            }
        )
    return records


def codec_error_profile(
    flat: np.ndarray,
    trim_rates: Sequence[float] = (0.02, 0.1, 0.5, 1.0),
    codecs: Optional[Sequence[str]] = None,
    root_seed: int = 0,
    mask_seed: int = 1,
) -> Dict[str, Dict[float, float]]:
    """NMSE per codec per trim rate, one call.

    Args:
        flat: the gradient vector to profile.
        trim_rates: per-coordinate Bernoulli trim probabilities.
        codecs: codec names (default: every registered codec).
        root_seed / mask_seed: determinism knobs.

    Returns:
        ``{codec_name: {trim_rate: nmse}}``.
    """
    flat = np.asarray(flat, dtype=np.float64).reshape(-1)
    names = list(codecs) if codecs is not None else available_codecs()
    profile: Dict[str, Dict[float, float]] = {}
    for name in names:
        codec = codec_by_name(name, root_seed=root_seed)
        enc = codec.encode(flat, epoch=0, message_id=1)
        rng = shared_generator(mask_seed, purpose="trim")
        profile[name] = {}
        for rate in trim_rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"trim rate must be in [0, 1], got {rate}")
            mask = rng.random(enc.length) < rate
            profile[name][rate] = nmse(flat, codec.decode(enc, trimmed=mask))
    return profile
