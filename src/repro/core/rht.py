"""RHT-based trimmable codec (paper Section 3.2, DRIVE-style).

The gradient blob is split into rows of ``2^15`` coordinates (each fits
the GPU L1 working set in the paper — here, one batched numpy transform)
and each row is rotated with a Randomized Hadamard Transform.  After the
rotation the coordinates are symmetrically centred near zero, so the
1-bit *sign* of each rotated coordinate is an excellent standalone head:

* head = ``sign(r)`` (1 bit),
* tail = the remaining 31 float bits of ``r`` (exponent + mantissa), so
  untrimmed packets decode losslessly with **zero space overhead**,
* per-row unbiased scale ``f = ‖V‖₂² / ‖R_s(V)‖₁`` travels in the small
  reliable metadata packet.

Decoding builds ``r̂_i = r_i`` for untrimmed coordinates and
``r̂_i = f · sign(r_i)`` for trimmed ones, then applies the inverse RHT.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..transforms.prng import derive_seed
from ..transforms.rotation import RotatedRows, rotate_rows, unrotate_rows
from .codec import (
    EncodedGradient,
    GradientCodec,
    compose_float32,
    float32_rest_bits,
    float32_sign_bits,
    register_codec,
)
from .metadata import GradientMetadata

__all__ = ["RHTCodec", "DEFAULT_ROW_SIZE", "unbiased_row_scales"]

#: Paper default: rows of 2^15 = 32,768 entries.
DEFAULT_ROW_SIZE = 2**15


def unbiased_row_scales(rows: np.ndarray) -> np.ndarray:
    """Per-row scale ``f = ‖row‖₂² / ‖row‖₁`` (0 for all-zero rows).

    Because the RHT is orthonormal, ``‖R_s(V)‖₂ = ‖V‖₂``, so computing the
    numerator on the rotated row equals the paper's ``‖V‖₂²``.
    """
    l2sq = np.sum(rows * rows, axis=1)
    l1 = np.sum(np.abs(rows), axis=1)
    return np.divide(l2sq, l1, out=np.zeros_like(l2sq), where=l1 > 0)


@register_codec
class RHTCodec(GradientCodec):
    """Randomized-Hadamard-Transform trimmable codec."""

    name = "rht"
    codec_id = 4
    head_bits = 1
    tail_bits = 31

    def __init__(self, root_seed: int = 0, row_size: int = DEFAULT_ROW_SIZE) -> None:
        self.root_seed = root_seed
        self.row_size = row_size

    def encode(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0
    ) -> EncodedGradient:
        flat = self._check_finite(flat)
        seed = derive_seed(self.root_seed, epoch, message_id, purpose="rotation")
        rotated = rotate_rows(flat, self.row_size, seed)
        rows = rotated.rows
        scales = unbiased_row_scales(rows)
        coords = rows.reshape(-1)
        heads = (1 - float32_sign_bits(coords)).astype(np.uint32)
        tails = float32_rest_bits(coords)
        metadata = GradientMetadata(
            message_id=message_id,
            epoch=epoch,
            original_length=flat.size,
            row_size=rotated.row_size,
            seed=seed,
            sigma=float(np.std(flat)),
            scale=0.0,
            row_scales=scales,
        )
        return EncodedGradient(
            codec_id=self.codec_id,
            head_bits=self.head_bits,
            tail_bits=self.tail_bits,
            length=coords.size,
            heads=heads,
            tails=tails,
            metadata=metadata,
        )

    def decode(
        self,
        enc: EncodedGradient,
        trimmed: Optional[np.ndarray] = None,
        missing: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        self._check_encoded(enc)
        mask = self._trimmed_mask(enc, trimmed)
        lost = self._missing_mask(enc, missing)
        meta = enc.metadata
        width = meta.row_size
        if width <= 0 or enc.length % width != 0:
            raise ValueError(f"encoded length {enc.length} not a multiple of row {width}")
        exact = compose_float32(1 - enc.heads, enc.tails)
        signs = enc.heads.astype(np.float64) * 2.0 - 1.0
        num_rows = enc.length // width
        scales = np.repeat(np.asarray(meta.row_scales, dtype=np.float64), width)
        if scales.size != enc.length:
            raise ValueError(
                f"{meta.row_scales.size} row scales cannot cover "
                f"{num_rows} rows of {width}"
            )
        r_hat = np.where(mask, signs * scales, exact)
        # Dropped coordinates carry no information: their best estimate in
        # the rotated domain is the (zero) mean, applied before the IRHT.
        r_hat = np.where(lost, 0.0, r_hat).reshape(num_rows, width)
        rotated = RotatedRows(
            rows=r_hat,
            original_length=meta.original_length,
            row_size=width,
            seed=meta.seed,
        )
        return unrotate_rows(rotated)
