"""Gradient codec interface and registry.

A *codec* turns a flat gradient vector into the two-part trimmable
encoding of Section 2/3: per-coordinate ``P``-bit **heads** (the
standalone compressed form that survives trimming) and ``Q``-bit
**tails** (the refinement that restores full precision), plus the
reliable :class:`~repro.core.metadata.GradientMetadata` side-channel.

Decoding takes a per-coordinate *trimmed mask* — which coordinates
arrived head-only — so the same codec serves both the fast array-level
simulation used for training experiments (exactly the paper's own
methodology) and real packet-level decode via the packetizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Type

import numpy as np

from .metadata import GradientMetadata

__all__ = [
    "EncodedGradient",
    "GradientCodec",
    "register_codec",
    "codec_by_name",
    "codec_by_id",
    "available_codecs",
    "float32_sign_bits",
    "float32_rest_bits",
    "compose_float32",
    "nmse",
]


@dataclass
class EncodedGradient:
    """Output of :meth:`GradientCodec.encode`.

    Attributes:
        codec_id: registry id of the producing codec.
        head_bits: bits per coordinate in the head plane (``P``).
        tail_bits: bits per coordinate in the tail plane (``Q``).
        length: number of *encoded* coordinates (RHT codecs encode the
            padded rotated rows, so this can exceed the original length).
        heads: per-coordinate head codes, uint32, values < 2**head_bits.
        tails: per-coordinate tail codes, uint32, values < 2**tail_bits.
        metadata: the reliable side-channel (σ / L / row scales / seed).
    """

    codec_id: int
    head_bits: int
    tail_bits: int
    length: int
    heads: np.ndarray
    tails: np.ndarray
    metadata: GradientMetadata

    def __post_init__(self) -> None:
        if self.heads.shape != (self.length,):
            raise ValueError(f"heads shape {self.heads.shape} != ({self.length},)")
        if self.tails.shape != (self.length,):
            raise ValueError(f"tails shape {self.tails.shape} != ({self.length},)")

    @property
    def full_bits(self) -> int:
        """Bits per coordinate when nothing is trimmed."""
        return self.head_bits + self.tail_bits

    @property
    def payload_bytes(self) -> int:
        """Untrimmed payload size (heads + tails planes), in bytes."""
        return -(-self.length * self.full_bits // 8)


class GradientCodec:
    """Base class for trimmable gradient codecs.

    Subclasses set ``name``, ``codec_id``, ``head_bits`` and ``tail_bits``
    and implement :meth:`encode` / :meth:`decode`.
    """

    name: str = "abstract"
    codec_id: int = 0
    head_bits: int = 1
    tail_bits: int = 31

    def encode(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0
    ) -> EncodedGradient:
        """Encode a flat float vector into heads + tails + metadata."""
        raise NotImplementedError

    def decode(
        self,
        enc: EncodedGradient,
        trimmed: Optional[np.ndarray] = None,
        missing: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Decode; ``trimmed[i]`` marks coordinates received head-only.

        ``trimmed=None`` means nothing was trimmed.  ``missing[i]`` marks
        coordinates whose packet was dropped entirely — they decode to the
        zero-information estimate (0, applied *before* any inverse
        rotation).  Returns a float64 vector of the *original* length.
        """
        raise NotImplementedError

    # -- helpers shared by subclasses -------------------------------------

    @staticmethod
    def _check_finite(flat: np.ndarray) -> np.ndarray:
        """Reject NaN/inf inputs with a clear error.

        A non-finite gradient (diverged training, bad loss scaling) would
        otherwise poison σ / scales and decode into silent garbage.
        """
        flat = np.asarray(flat, dtype=np.float64).reshape(-1)
        if flat.size == 0:
            raise ValueError("cannot encode an empty gradient")
        if not np.all(np.isfinite(flat)):
            bad = int((~np.isfinite(flat)).sum())
            raise ValueError(
                f"gradient contains {bad} non-finite values; refusing to encode"
            )
        return flat

    def _check_encoded(self, enc: EncodedGradient) -> None:
        if enc.codec_id != self.codec_id:
            raise ValueError(
                f"{self.name} codec cannot decode codec_id={enc.codec_id} "
                f"(expected {self.codec_id})"
            )

    @staticmethod
    def _trimmed_mask(enc: EncodedGradient, trimmed: Optional[np.ndarray]) -> np.ndarray:
        if trimmed is None:
            return np.zeros(enc.length, dtype=bool)
        trimmed = np.asarray(trimmed, dtype=bool).reshape(-1)
        if trimmed.shape != (enc.length,):
            raise ValueError(f"trimmed mask shape {trimmed.shape} != ({enc.length},)")
        return trimmed

    @staticmethod
    def _missing_mask(enc: EncodedGradient, missing: Optional[np.ndarray]) -> np.ndarray:
        if missing is None:
            return np.zeros(enc.length, dtype=bool)
        missing = np.asarray(missing, dtype=bool).reshape(-1)
        if missing.shape != (enc.length,):
            raise ValueError(f"missing mask shape {missing.shape} != ({enc.length},)")
        return missing


# -- registry ---------------------------------------------------------------

_BY_NAME: Dict[str, Callable[..., GradientCodec]] = {}
_BY_ID: Dict[int, Callable[..., GradientCodec]] = {}


def register_codec(cls: Type[GradientCodec]) -> Type[GradientCodec]:
    """Class decorator adding a codec to the by-name / by-id registry."""
    if cls.name in _BY_NAME:
        raise ValueError(f"codec name {cls.name!r} already registered")
    if cls.codec_id in _BY_ID:
        raise ValueError(f"codec id {cls.codec_id} already registered")
    _BY_NAME[cls.name] = cls
    _BY_ID[cls.codec_id] = cls
    return cls


def codec_by_name(name: str, **kwargs: Any) -> GradientCodec:
    """Instantiate a registered codec by name (e.g. ``"rht"``)."""
    if name not in _BY_NAME:
        raise KeyError(f"unknown codec {name!r}; available: {available_codecs()}")
    return _BY_NAME[name](**kwargs)


def codec_by_id(codec_id: int, **kwargs: Any) -> GradientCodec:
    """Instantiate a registered codec by wire id."""
    if codec_id not in _BY_ID:
        raise KeyError(f"unknown codec id {codec_id}")
    return _BY_ID[codec_id](**kwargs)


def available_codecs() -> list[str]:
    """Registered codec names."""
    return sorted(_BY_NAME)


# -- float32 bit surgery ------------------------------------------------------


def float32_sign_bits(values: np.ndarray) -> np.ndarray:
    """Sign bit of each float32 (1 = negative), as uint32."""
    bits = np.asarray(values, dtype=np.float32).view(np.uint32)
    return (bits >> np.uint32(31)) & np.uint32(1)


def float32_rest_bits(values: np.ndarray) -> np.ndarray:
    """Exponent + mantissa (low 31 bits) of each float32, as uint32."""
    bits = np.asarray(values, dtype=np.float32).view(np.uint32)
    return bits & np.uint32(0x7FFFFFFF)


def compose_float32(sign_bits: np.ndarray, rest_bits: np.ndarray) -> np.ndarray:
    """Rebuild float32 values from sign and exponent+mantissa bits."""
    sign = (np.asarray(sign_bits, dtype=np.uint32) & np.uint32(1)) << np.uint32(31)
    rest = np.asarray(rest_bits, dtype=np.uint32) & np.uint32(0x7FFFFFFF)
    return (sign | rest).view(np.float32).astype(np.float64)


def nmse(original: np.ndarray, decoded: np.ndarray) -> float:
    """Normalized mean squared error ``‖x - x̂‖² / ‖x‖²``."""
    original = np.asarray(original, dtype=np.float64).reshape(-1)
    decoded = np.asarray(decoded, dtype=np.float64).reshape(-1)
    denom = float(np.dot(original, original))
    if denom <= 0.0:
        return float(np.dot(decoded, decoded))
    diff = original - decoded
    return float(np.dot(diff, diff) / denom)
