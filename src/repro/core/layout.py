"""Packet-layout arithmetic (paper Section 2).

Answers the questions of Figure 2 and the worked example: how many
coordinates fit in an MTU, where the trim threshold sits, and what
compression ratio trimming achieves.  Also implements the
magnitude-ordered layout the paper discusses first (MLT-style: largest
coordinates nearest the header, so plain trimming discards the smallest
20 %) before introducing the head/tail split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..packet.header import GRADIENT_HEADER_BYTES, WIRE_HEADER_BYTES

__all__ = [
    "TrimmableLayout",
    "paper_worked_example",
    "magnitude_order",
    "inverse_order",
    "coords_per_packet",
]


def coords_per_packet(
    mtu: int = 1500,
    head_bits: int = 1,
    tail_bits: int = 31,
    app_header_bytes: int = GRADIENT_HEADER_BYTES,
) -> int:
    """Coordinates that fit one packet under the head/tail layout."""
    payload_bits = (mtu - WIRE_HEADER_BYTES - app_header_bytes) * 8
    if payload_bits <= 0:
        raise ValueError(f"mtu {mtu} leaves no payload")
    n = payload_bits // (head_bits + tail_bits)
    if n <= 0:
        raise ValueError(f"mtu {mtu} cannot fit a single {head_bits + tail_bits}-bit coord")
    return n


@dataclass(frozen=True)
class TrimmableLayout:
    """Static layout facts for one (mtu, P, Q, header) configuration.

    Attributes:
        mtu: full packet size in bytes.
        head_bits: bits per coordinate kept after trimming (``P``).
        tail_bits: refinement bits per coordinate (``Q``).
        app_header_bytes: application (gradient) header size; 0 reproduces
            the paper's minimal-header arithmetic.
    """

    mtu: int = 1500
    head_bits: int = 1
    tail_bits: int = 31
    app_header_bytes: int = GRADIENT_HEADER_BYTES

    @property
    def coords(self) -> int:
        """Coordinates per packet (``n``)."""
        return coords_per_packet(
            self.mtu, self.head_bits, self.tail_bits, self.app_header_bytes
        )

    @property
    def heads_bytes(self) -> int:
        """Bytes of packed heads (``ceil(P·n/8)``)."""
        return -(-self.head_bits * self.coords // 8)

    @property
    def trim_threshold(self) -> int:
        """Bytes a switch keeps when trimming (wire hdr + app hdr + heads)."""
        return WIRE_HEADER_BYTES + self.app_header_bytes + self.heads_bytes

    @property
    def compression_ratio(self) -> float:
        """Fraction of the packet removed by trimming, ``1 - trimmed/full``."""
        return 1.0 - self.trim_threshold / self.mtu

    @property
    def trim_fraction_of_payload(self) -> float:
        """Approximate payload shrink ``Q / (P + Q)`` from the paper."""
        return self.tail_bits / (self.head_bits + self.tail_bits)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"MTU {self.mtu} B, P={self.head_bits}, Q={self.tail_bits}: "
            f"n={self.coords} coords, trim at {self.trim_threshold} B, "
            f"compression {self.compression_ratio:.1%}"
        )


def paper_worked_example() -> TrimmableLayout:
    """The exact Section 2 arithmetic: 1500 B MTU, 42 B header, P=1.

    The paper's example counts only the Ethernet/IP/UDP header (no
    application header), packs n≈365 coordinates, trims to 87 bytes and
    reports a 94.2 % compression ratio.
    """
    return TrimmableLayout(mtu=1500, head_bits=1, tail_bits=31, app_header_bytes=0)


def magnitude_order(flat: np.ndarray, coords_per_pkt: int) -> np.ndarray:
    """Permutation implementing the Section 2 magnitude-aware layout.

    Sorts coordinates by descending magnitude and deals them round-robin
    into packets, so each packet holds its largest coordinates first:
    position ``k`` within every packet has globally-larger magnitude than
    position ``k+1`` of any packet.  Plain (non head/tail) trimming then
    discards the globally smallest coordinates first, as MLT observes the
    training can tolerate.

    Returns an index array ``order`` such that ``flat[order]`` is the
    on-wire coordinate sequence.
    """
    flat = np.asarray(flat).reshape(-1)
    n = flat.size
    if coords_per_pkt <= 0:
        raise ValueError("coords_per_pkt must be positive")
    by_magnitude = np.argsort(-np.abs(flat), kind="stable")
    num_packets = -(-n // coords_per_pkt)
    # Deal sorted indices row-major into a (depth, num_packets) grid, then
    # read packet-by-packet (column-major): packet p gets ranks
    # p, p+num_packets, p+2*num_packets, ... in decreasing magnitude.
    order = np.empty(n, dtype=np.int64)
    position = 0
    for packet in range(num_packets):
        ranks = np.arange(packet, n, num_packets)
        order[position : position + ranks.size] = by_magnitude[ranks]
        position += ranks.size
    return order


def inverse_order(order: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``flat == wire[inverse_order(order)]``."""
    inverse = np.empty_like(order)
    inverse[order] = np.arange(order.size)
    return inverse
