"""The paper's contribution: trimmable gradient encodings and packet layout."""

from .analysis import codec_error_profile, heavy_tail_index, per_parameter_scales
from .codec import (
    EncodedGradient,
    GradientCodec,
    available_codecs,
    codec_by_id,
    codec_by_name,
    compose_float32,
    float32_rest_bits,
    float32_sign_bits,
    nmse,
    register_codec,
)
from .eden import EdenCodec, lloyd_max_centroids
from .layout import (
    TrimmableLayout,
    coords_per_packet,
    inverse_order,
    magnitude_order,
    paper_worked_example,
)
from .metadata import GradientMetadata
from .multilevel import (
    LEVEL_BITS,
    MULTILEVEL_CODEC_ID,
    PLANE_BITS,
    MultiLevelCodec,
    MultiLevelEncoded,
)
from .packetizer import GradientMessage, decode_packets, depacketize, packetize
from .quantizers import (
    ScalarCodec,
    SignMagnitudeCodec,
    StochasticQuantizationCodec,
    SubtractiveDitheringCodec,
)
from .rht import DEFAULT_ROW_SIZE, RHTCodec, unbiased_row_scales

__all__ = [
    "codec_error_profile",
    "heavy_tail_index",
    "per_parameter_scales",
    "EdenCodec",
    "lloyd_max_centroids",
    "EncodedGradient",
    "GradientCodec",
    "available_codecs",
    "codec_by_id",
    "codec_by_name",
    "compose_float32",
    "float32_rest_bits",
    "float32_sign_bits",
    "nmse",
    "register_codec",
    "TrimmableLayout",
    "coords_per_packet",
    "inverse_order",
    "magnitude_order",
    "paper_worked_example",
    "GradientMetadata",
    "LEVEL_BITS",
    "MULTILEVEL_CODEC_ID",
    "PLANE_BITS",
    "MultiLevelCodec",
    "MultiLevelEncoded",
    "GradientMessage",
    "decode_packets",
    "depacketize",
    "packetize",
    "ScalarCodec",
    "SignMagnitudeCodec",
    "StochasticQuantizationCodec",
    "SubtractiveDitheringCodec",
    "DEFAULT_ROW_SIZE",
    "RHTCodec",
    "unbiased_row_scales",
]
