"""EDEN-style multi-bit trimmable codec (paper footnote 2 + Section 5.1).

DRIVE's 1-bit sign quantization was extended to any bit width by EDEN;
the paper's Section 5.1 asks for exactly such *versatile* encodings so a
switch can trim to different depths.  :class:`EdenCodec` generalizes
:class:`~repro.core.rht.RHTCodec` to ``P``-bit heads:

* rotate rows with the RHT (coordinates become ~N(0, σ_r²));
* head = the coordinate's cell in a **Lloyd–Max quantizer** for the
  standard normal with ``2^P`` levels (the MMSE scalar quantizer for the
  post-rotation distribution; exact tables for P ≤ 4, uniform beyond);
* tail = the residual against the head's reconstruction, uniformly
  quantized over ``±4σ_r`` with the remaining ``32-P`` bits — so an
  untrimmed packet still decodes to (well below) fp32 precision;
* per-row scale ``σ_r`` travels in the reliable metadata packet.

Because heads and tails live in separate packed planes, the existing
packetizer and ``Packet.trim()`` work unchanged for any ``P``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..transforms.prng import derive_seed
from ..transforms.rotation import RotatedRows, rotate_rows, unrotate_rows
from .codec import EncodedGradient, GradientCodec, register_codec
from .metadata import GradientMetadata
from .rht import DEFAULT_ROW_SIZE

__all__ = ["EdenCodec", "lloyd_max_centroids"]

# Lloyd-Max quantizer centroids for the standard normal (positive half;
# negatives mirror).  Max (1960) / standard tables.
_LLOYD_MAX_POSITIVE = {
    1: np.array([0.7978845608]),
    2: np.array([0.4527800398, 1.5104176087]),
    3: np.array([0.2450708915, 0.7560052489, 1.3438932487, 2.1519457574]),
    4: np.array(
        [
            0.1284368706, 0.3880762953, 0.6568083710, 0.9423403306,
            1.2562311512, 1.6180718635, 2.0690116706, 2.7326340780,
        ]
    ),
}


def lloyd_max_centroids(bits: int) -> np.ndarray:
    """All ``2**bits`` centroids, ascending, for a standard normal.

    Exact Lloyd-Max tables for ``bits <= 4``; mid-rise uniform centroids
    over ``[-4, 4]`` beyond (the extra levels make uniform near-optimal).
    """
    if not 1 <= bits <= 8:
        raise ValueError(f"bits must be in [1, 8], got {bits}")
    if bits in _LLOYD_MAX_POSITIVE:
        positive = _LLOYD_MAX_POSITIVE[bits]
        return np.concatenate([-positive[::-1], positive])
    levels = 1 << bits
    step = 8.0 / levels
    return -4.0 + step / 2 + step * np.arange(levels)


@register_codec
class EdenCodec(GradientCodec):
    """RHT rotation + P-bit Lloyd-Max heads + residual tails."""

    name = "eden"
    codec_id = 6

    def __init__(
        self,
        root_seed: int = 0,
        head_bits: int = 4,
        row_size: int = DEFAULT_ROW_SIZE,
    ) -> None:
        if not 1 <= head_bits <= 8:
            raise ValueError(f"head_bits must be in [1, 8], got {head_bits}")
        self.root_seed = root_seed
        self.head_bits = head_bits
        self.tail_bits = 32 - head_bits
        self.row_size = row_size
        self._centroids = lloyd_max_centroids(head_bits)
        # Cell boundaries: midpoints between adjacent centroids.
        self._boundaries = (self._centroids[1:] + self._centroids[:-1]) / 2.0
        #: Residual range in units of the row sigma (generous: covers
        #: the unbounded outer Lloyd-Max cells up to ~4+4 sigma).
        self._residual_range = 4.0

    # -- encode --------------------------------------------------------------

    def encode(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0
    ) -> EncodedGradient:
        flat = self._check_finite(flat)
        seed = derive_seed(self.root_seed, epoch, message_id, purpose="rotation")
        rotated = rotate_rows(flat, self.row_size, seed)
        rows = rotated.rows
        width = rotated.row_size
        sigmas = np.sqrt(np.mean(rows * rows, axis=1))
        sigmas = np.where(sigmas > 0, sigmas, 1.0)

        normalized = rows / sigmas[:, None]
        heads = np.searchsorted(self._boundaries, normalized).astype(np.uint32)
        approx = self._centroids[heads] * sigmas[:, None]
        residual = rows - approx
        max_tail = (1 << self.tail_bits) - 1
        span = self._residual_range * sigmas[:, None]
        tail_norm = np.clip((residual / span + 1.0) / 2.0, 0.0, 1.0)
        tails = np.rint(tail_norm * max_tail).astype(np.uint64).astype(np.uint32)

        metadata = GradientMetadata(
            message_id=message_id,
            epoch=epoch,
            original_length=flat.size,
            row_size=width,
            seed=seed,
            sigma=float(np.std(flat)),
            row_scales=sigmas,
        )
        return EncodedGradient(
            codec_id=self.codec_id,
            head_bits=self.head_bits,
            tail_bits=self.tail_bits,
            length=rows.size,
            heads=heads.reshape(-1),
            tails=tails.reshape(-1),
            metadata=metadata,
        )

    # -- decode ---------------------------------------------------------------

    def decode(
        self,
        enc: EncodedGradient,
        trimmed: Optional[np.ndarray] = None,
        missing: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        self._check_encoded(enc)
        # Decode is self-describing: the head width travels in the
        # encoding, so one EdenCodec instance can decode messages encoded
        # at any P (needed when the receiver reconstructs the codec from
        # the wire codec id alone).
        centroids = (
            self._centroids
            if enc.head_bits == self.head_bits
            else lloyd_max_centroids(enc.head_bits)
        )
        mask = self._trimmed_mask(enc, trimmed)
        lost = self._missing_mask(enc, missing)
        meta = enc.metadata
        width = meta.row_size
        num_rows = enc.length // width
        sigmas = np.repeat(np.asarray(meta.row_scales, dtype=np.float64), width)

        approx = centroids[enc.heads] * sigmas
        max_tail = (1 << enc.tail_bits) - 1
        span = self._residual_range * sigmas
        residual = (enc.tails.astype(np.float64) / max_tail * 2.0 - 1.0) * span
        r_hat = np.where(mask, approx, approx + residual)
        r_hat = np.where(lost, 0.0, r_hat)

        rotated = RotatedRows(
            rows=r_hat.reshape(num_rows, width),
            original_length=meta.original_length,
            row_size=width,
            seed=meta.seed,
        )
        return unrotate_rows(rotated)
