"""Multi-level trimmable encoding (paper Section 5.1, future work).

The paper's two-tier code supports exactly one trim depth (keep ``P`` of
``P+Q`` bits).  Section 5.1 asks for *versatile* encodings where a switch
can choose among several trim depths according to congestion — e.g. trim
a packet to ~25 % size (8 bits/coordinate) under mild congestion or ~3 %
(1 bit) under heavy congestion.

This module implements a three-plane tiered code over RHT-rotated rows:

* **plane 0 — 1 bit**: ``sign(r)``; decodes as ``f·sign(r)`` with the
  DRIVE scale ``f`` (identical to :class:`~repro.core.rht.RHTCodec`).
* **plane 1 — 7 bits**: magnitude ``m = ⌊|r|/A·128⌋`` against the per-row
  range ``A = max|r|``; together with the sign it decodes as the midpoint
  ``±(m+½)·A/128`` — an 8-bit uniform quantizer.
* **plane 2 — 24 bits**: the residual ``r - r̂₈`` uniformly quantized over
  ``±A/128``, restoring near-full precision (error ≤ A·2⁻³², below fp32
  resolution for these rows).

Planes are laid out contiguously (all signs, then all magnitudes, then
all residuals), so a switch can cut at the 1-bit or 8-bit plane boundary
with :func:`repro.packet.trim.trim_to_bits` — no arithmetic needed, just
a shorter keep-length, exactly the paper's "trim to 25 % or 3 %".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..packet.bitpack import pack_bits, packed_size, unpack_bits
from ..packet.header import FLAG_METADATA, GRADIENT_HEADER_BYTES, GradientHeader
from ..packet.packet import DEFAULT_MTU_BYTES, Packet
from ..transforms.prng import derive_seed
from ..transforms.rotation import RotatedRows, rotate_rows, unrotate_rows
from .metadata import GradientMetadata
from .rht import DEFAULT_ROW_SIZE, unbiased_row_scales

__all__ = [
    "MULTILEVEL_CODEC_ID",
    "PLANE_BITS",
    "LEVEL_BITS",
    "MultiLevelEncoded",
    "MultiLevelCodec",
]

MULTILEVEL_CODEC_ID = 5
#: Bit width of each plane, front-of-packet first.
PLANE_BITS = (1, 7, 24)
#: Decodable prefix depths: sign-only, sign+magnitude, full.
LEVEL_BITS = (1, 8, 32)

_MAG_STEPS = 128  # 7-bit magnitude plane resolution
_RES_LEVELS = (1 << 24) - 1  # 24-bit residual plane resolution


@dataclass
class MultiLevelEncoded:
    """Three-plane encoding of one gradient blob.

    Attributes:
        signs: plane 0, 1-bit codes (1 = non-negative rotated coord).
        magnitudes: plane 1, 7-bit codes.
        residuals: plane 2, 24-bit codes.
        metadata: row scales ``f`` (1-bit decode) in ``row_scales`` and
            ranges ``A`` (8-bit decode) in ``aux_scales``.
        length: padded coordinate count (multiple of the row size).
    """

    signs: np.ndarray
    magnitudes: np.ndarray
    residuals: np.ndarray
    metadata: GradientMetadata
    length: int


class MultiLevelCodec:
    """Tiered 1/8/32-bit trimmable codec (Section 5.1)."""

    name = "multilevel"
    codec_id = MULTILEVEL_CODEC_ID

    def __init__(self, root_seed: int = 0, row_size: int = DEFAULT_ROW_SIZE) -> None:
        self.root_seed = root_seed
        self.row_size = row_size

    # -- array level -------------------------------------------------------

    def encode(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0
    ) -> MultiLevelEncoded:
        """Rotate, then split every coordinate into the three planes."""
        flat = np.asarray(flat, dtype=np.float64).reshape(-1)
        seed = derive_seed(self.root_seed, epoch, message_id, purpose="rotation")
        rotated = rotate_rows(flat, self.row_size, seed)
        rows = rotated.rows
        f_scales = unbiased_row_scales(rows)
        ranges = np.abs(rows).max(axis=1)
        ranges = np.where(ranges > 0, ranges, 1.0)

        signs = (rows >= 0).astype(np.uint32)
        step = ranges[:, None] / _MAG_STEPS
        mags = np.minimum(
            (np.abs(rows) / step).astype(np.int64), _MAG_STEPS - 1
        ).astype(np.uint32)
        mid = (mags.astype(np.float64) + 0.5) * step
        r8 = np.where(signs == 1, mid, -mid)
        residual = rows - r8
        # Residual lies in ±step/2 by construction; quantize over ±step to
        # keep headroom for float rounding at the clamp boundary.
        res_norm = np.clip((residual / step + 1.0) / 2.0, 0.0, 1.0)
        res_codes = np.rint(res_norm * _RES_LEVELS).astype(np.uint32)

        metadata = GradientMetadata(
            message_id=message_id,
            epoch=epoch,
            original_length=flat.size,
            row_size=rotated.row_size,
            seed=seed,
            sigma=float(np.std(flat)),
            row_scales=f_scales,
            aux_scales=ranges,
        )
        return MultiLevelEncoded(
            signs=signs.reshape(-1),
            magnitudes=mags.reshape(-1),
            residuals=res_codes.reshape(-1),
            metadata=metadata,
            length=rows.size,
        )

    def decode(self, enc: MultiLevelEncoded, levels: Optional[np.ndarray] = None) -> np.ndarray:
        """Decode given the per-coordinate received depth.

        ``levels[i]`` is the number of code bits that survived for
        coordinate ``i``: 32 (full), 8, 1, or 0 (packet lost).  ``None``
        means everything arrived untrimmed.
        """
        meta = enc.metadata
        width = meta.row_size
        num_rows = enc.length // width
        if levels is None:
            levels = np.full(enc.length, LEVEL_BITS[-1], dtype=np.int64)
        levels = np.asarray(levels, dtype=np.int64).reshape(-1)
        if levels.shape != (enc.length,):
            raise ValueError(f"levels shape {levels.shape} != ({enc.length},)")
        bad = ~np.isin(levels, (0,) + LEVEL_BITS)
        if bad.any():
            raise ValueError(f"invalid level values: {np.unique(levels[bad])}")

        sign_values = enc.signs.astype(np.float64) * 2.0 - 1.0
        f_scales = np.repeat(np.asarray(meta.row_scales, dtype=np.float64), width)
        ranges = np.repeat(np.asarray(meta.aux_scales, dtype=np.float64), width)
        step = ranges / _MAG_STEPS

        mid = (enc.magnitudes.astype(np.float64) + 0.5) * step
        r8 = sign_values * mid
        residual = (enc.residuals.astype(np.float64) / _RES_LEVELS * 2.0 - 1.0) * step
        r_full = r8 + residual
        r1 = sign_values * f_scales

        r_hat = np.zeros(enc.length, dtype=np.float64)
        r_hat = np.where(levels == 1, r1, r_hat)
        r_hat = np.where(levels == 8, r8, r_hat)
        r_hat = np.where(levels == 32, r_full, r_hat)

        rotated = RotatedRows(
            rows=r_hat.reshape(num_rows, width),
            original_length=meta.original_length,
            row_size=width,
            seed=meta.seed,
        )
        return unrotate_rows(rotated)

    # -- packet level --------------------------------------------------------

    def packetize(
        self,
        enc: MultiLevelEncoded,
        src: str = "",
        dst: str = "",
        mtu: int = DEFAULT_MTU_BYTES,
        flow_id: int = 0,
    ) -> list[Packet]:
        """Wire layout: gradient header, sign plane, magnitude plane, residual plane."""
        meta = enc.metadata
        payload_bits = (mtu - 42 - GRADIENT_HEADER_BYTES) * 8
        n_per_packet = payload_bits // sum(PLANE_BITS)
        packets: list[Packet] = []

        meta_header = GradientHeader(
            codec_id=self.codec_id,
            head_bits=PLANE_BITS[0],
            tail_bits=sum(PLANE_BITS) - PLANE_BITS[0],
            message_id=meta.message_id,
            epoch=meta.epoch,
            chunk_index=0,
            coord_offset=0,
            coord_count=0,
            seed=meta.seed,
            flags=FLAG_METADATA,
        )
        packets.append(
            Packet(
                src=src,
                dst=dst,
                payload=meta_header.to_bytes() + meta.to_bytes(),
                grad_header=meta_header,
                priority=1,
                flow_id=flow_id,
            )
        )
        for chunk, offset in enumerate(range(0, enc.length, n_per_packet)):
            end = min(offset + n_per_packet, enc.length)
            count = end - offset
            header = GradientHeader(
                codec_id=self.codec_id,
                head_bits=PLANE_BITS[0],
                tail_bits=sum(PLANE_BITS) - PLANE_BITS[0],
                message_id=meta.message_id,
                epoch=meta.epoch,
                chunk_index=chunk + 1,
                coord_offset=offset,
                coord_count=count,
                seed=meta.seed,
            )
            payload = (
                header.to_bytes()
                + pack_bits(enc.signs[offset:end], PLANE_BITS[0])
                + pack_bits(enc.magnitudes[offset:end], PLANE_BITS[1])
                + pack_bits(enc.residuals[offset:end], PLANE_BITS[2])
            )
            packets.append(
                Packet(
                    src=src,
                    dst=dst,
                    payload=payload,
                    grad_header=header,
                    flow_id=flow_id,
                    seq=chunk + 1,
                )
            )
        return packets

    def depacketize(
        self, packets: Iterable[Packet]
    ) -> tuple[MultiLevelEncoded, np.ndarray]:
        """Reassemble packets into planes plus the per-coordinate level array.

        A packet trimmed with :func:`~repro.packet.trim.trim_to_bits` to 8
        or 1 bits contributes the corresponding prefix planes; coordinates
        never seen get level 0.
        """
        metadata: Optional[GradientMetadata] = None
        data: list[tuple[GradientHeader, Packet]] = []
        for pkt in packets:
            header = pkt.grad_header or GradientHeader.from_bytes(pkt.payload)
            if header.is_metadata:
                metadata = GradientMetadata.from_bytes(pkt.payload[GRADIENT_HEADER_BYTES:])
            else:
                data.append((header, pkt))
        if metadata is None:
            raise ValueError("metadata packet missing; multilevel decode needs row scales")
        width = metadata.row_size
        length = -(-metadata.original_length // width) * width

        signs = np.zeros(length, dtype=np.uint32)
        mags = np.zeros(length, dtype=np.uint32)
        residuals = np.zeros(length, dtype=np.uint32)
        levels = np.zeros(length, dtype=np.int64)

        for hdr, pkt in data:
            body = pkt.payload[GRADIENT_HEADER_BYTES:]
            lo, hi = hdr.coord_offset, hdr.coord_offset + hdr.coord_count
            arrived_bits = hdr.head_bits if hdr.trimmed else hdr.head_bits + hdr.tail_bits
            if arrived_bits not in LEVEL_BITS:
                raise ValueError(f"packet trimmed to unsupported depth {arrived_bits}")
            signs[lo:hi] = unpack_bits(body, hdr.coord_count, PLANE_BITS[0])
            cursor = packed_size(hdr.coord_count, PLANE_BITS[0])
            if arrived_bits >= 8:
                mags[lo:hi] = unpack_bits(body[cursor:], hdr.coord_count, PLANE_BITS[1])
                cursor += packed_size(hdr.coord_count, PLANE_BITS[1])
            if arrived_bits >= 32:
                residuals[lo:hi] = unpack_bits(body[cursor:], hdr.coord_count, PLANE_BITS[2])
            levels[lo:hi] = arrived_bits

        enc = MultiLevelEncoded(
            signs=signs,
            magnitudes=mags,
            residuals=residuals,
            metadata=metadata,
            length=length,
        )
        return enc, levels
