"""Gradient blob ⇄ trimmable packets.

``packetize`` lays an :class:`~repro.core.codec.EncodedGradient` out on
the wire exactly as Figure 2(b) prescribes: every packet carries its
32-byte self-describing gradient header, then the packed ``P``-bit heads
of its ``n`` coordinates, then their ``Q``-bit tails.  A switch that trims
the packet after the heads leaves a decodable prefix.

``depacketize`` reassembles whatever arrived — full packets, trimmed
packets, or holes where packets were dropped — into per-coordinate head /
tail arrays plus masks, ready for the codec's decoder.

Both directions run on the training hot path (once per gradient per
step), so they are whole-message vectorized (see docs/performance.md):

* ``packetize`` packs every packet's heads and tails in one batched
  :func:`~repro.packet.bitpack.pack_segments` call each, writes all
  payloads (headers included, via the precompiled struct template) into
  one contiguous message buffer, and hands each packet a read-only
  zero-copy ``memoryview`` slice of that buffer.
* ``depacketize`` parses each gradient header exactly once, groups the
  arrived packets by geometry, and inverts every group's packed planes
  with one batched :func:`~repro.packet.bitpack.unpack_batch` call
  instead of two ``unpack_bits`` calls per packet.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..obs.int_telemetry import INTExtension, int_capacity
from ..obs.trace import get_tracer
from ..packet import arena as _arena
from ..packet.bitpack import pack_segments, packed_size, unpack_batch
from ..packet.header import (
    FLAG_INT,
    FLAG_METADATA,
    GRADIENT_HEADER_BYTES,
    GradientHeader,
)
from ..packet.packet import DEFAULT_MTU_BYTES, Packet
from .codec import EncodedGradient, GradientCodec, codec_by_id
from .layout import coords_per_packet
from .metadata import GradientMetadata

__all__ = ["GradientMessage", "packetize", "depacketize", "decode_packets"]


@dataclass
class GradientMessage:
    """Receiver-side view of one collective message's packets.

    Attributes:
        heads: per-coordinate head codes (0 where the packet is missing).
        tails: per-coordinate tail codes (0 where trimmed or missing).
        trimmed: True for coordinates that arrived head-only.
        missing: True for coordinates whose packet never arrived.
        metadata: the reliable side-channel, if its packet arrived.
        codec_id / head_bits / tail_bits / length: message geometry.
    """

    heads: np.ndarray
    tails: np.ndarray
    trimmed: np.ndarray
    missing: np.ndarray
    metadata: Optional[GradientMetadata]
    codec_id: int
    head_bits: int
    tail_bits: int
    length: int

    @property
    def trim_fraction(self) -> float:
        """Fraction of coordinates that arrived head-only."""
        return float(self.trimmed.mean()) if self.length else 0.0

    def to_encoded(self) -> EncodedGradient:
        """Package as an :class:`EncodedGradient` for codec decoding."""
        if self.metadata is None:
            raise ValueError("metadata packet missing; cannot decode")
        return EncodedGradient(
            codec_id=self.codec_id,
            head_bits=self.head_bits,
            tail_bits=self.tail_bits,
            length=self.length,
            heads=self.heads,
            tails=self.tails,
            metadata=self.metadata,
        )


def packetize(
    enc: EncodedGradient,
    src: str = "",
    dst: str = "",
    mtu: int = DEFAULT_MTU_BYTES,
    flow_id: int = 0,
) -> list[Packet]:
    """Serialize an encoded gradient into wire packets.

    The first returned packet is the small reliable metadata packet
    (flagged so switches never trim it); the rest are trimmable data
    packets in coordinate order.
    """
    meta = enc.metadata
    n_per_packet = coords_per_packet(mtu, enc.head_bits, enc.tail_bits)
    packets: list[Packet] = []

    # When INT is enabled, every packet of this message carries a
    # fixed-size telemetry band.  The FLAG_INT bit is baked into the
    # headers *now*, before they are serialized into the shared read-only
    # buffer — the payload bytes and the parsed header must agree.
    capacity = int_capacity()
    int_flag = FLAG_INT if capacity is not None else 0

    meta_header = GradientHeader(
        codec_id=enc.codec_id,
        head_bits=enc.head_bits,
        tail_bits=enc.tail_bits,
        message_id=meta.message_id,
        epoch=meta.epoch,
        chunk_index=0,
        coord_offset=0,
        coord_count=0,
        seed=meta.seed,
        flags=FLAG_METADATA | int_flag,
    )
    # Message-kind packets: the transport sender retains them for
    # retransmission, so only the transfer owner (the channel/driver)
    # may recycle them — network sinks refuse (see repro.packet.arena).
    pool = _arena._ARENA
    packets.append(
        pool.acquire(
            _arena.KIND_MESSAGE,
            src=src,
            dst=dst,
            payload=meta_header.to_bytes() + meta.to_bytes(),
            grad_header=meta_header,
            priority=1,
            flow_id=flow_id,
            int_ext=INTExtension(capacity) if capacity is not None else None,
        )
    )

    # Pack the whole head and tail planes in one batched call each, with
    # byte-aligned per-packet segments, then lay every payload out in a
    # single contiguous message buffer.  Each packet's payload is a
    # read-only zero-copy view into that buffer (owned bytes only appear
    # again when a switch trims — see Packet.trim).
    heads_plane = pack_segments(enc.heads, enc.head_bits, n_per_packet)
    tails_plane = pack_segments(enc.tails, enc.tail_bits, n_per_packet)
    num_chunks = heads_plane.num_segments
    # Every segment but the last has identical geometry; hoist the size
    # arithmetic out of the per-packet loop (packed_size per packet shows
    # up in profiles at this call rate).
    full_head_bytes = packed_size(n_per_packet, enc.head_bits)
    full_tail_bytes = packed_size(n_per_packet, enc.tail_bits)
    last_count = heads_plane.segment_count(num_chunks - 1)
    last_head_bytes = packed_size(last_count, enc.head_bits)
    last_tail_bytes = packed_size(last_count, enc.tail_bits)
    full_payload = GRADIENT_HEADER_BYTES + full_head_bytes + full_tail_bytes
    last_payload = GRADIENT_HEADER_BYTES + last_head_bytes + last_tail_bytes
    buf = bytearray(full_payload * (num_chunks - 1) + last_payload)
    heads_buf = memoryview(heads_plane.buffer)
    tails_buf = memoryview(tails_plane.buffer)
    views = memoryview(buf).toreadonly()
    head_seg_bytes = heads_plane.seg_bytes
    tail_seg_bytes = tails_plane.seg_bytes

    pos = 0
    for chunk in range(num_chunks):
        last = chunk == num_chunks - 1
        count = last_count if last else n_per_packet
        head_bytes = last_head_bytes if last else full_head_bytes
        tail_bytes = last_tail_bytes if last else full_tail_bytes
        payload_size = last_payload if last else full_payload
        header = GradientHeader(
            codec_id=enc.codec_id,
            head_bits=enc.head_bits,
            tail_bits=enc.tail_bits,
            message_id=meta.message_id,
            epoch=meta.epoch,
            chunk_index=chunk + 1,
            coord_offset=chunk * n_per_packet,
            coord_count=count,
            seed=meta.seed,
            flags=int_flag,
        )
        header.pack_into(buf, pos)
        cursor = pos + GRADIENT_HEADER_BYTES
        hs = chunk * head_seg_bytes
        ts = chunk * tail_seg_bytes
        buf[cursor : cursor + head_bytes] = heads_buf[hs : hs + head_bytes]
        cursor += head_bytes
        buf[cursor : cursor + tail_bytes] = tails_buf[ts : ts + tail_bytes]
        packets.append(
            pool.acquire(
                _arena.KIND_MESSAGE,
                src=src,
                dst=dst,
                payload=views[pos : pos + payload_size],
                grad_header=header,
                flow_id=flow_id,
                seq=chunk + 1,
                int_ext=INTExtension(capacity) if capacity is not None else None,
            )
        )
        pos += payload_size
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "packetize",
            message_id=meta.message_id,
            epoch=meta.epoch,
            coords=enc.length,
            packets=len(packets),
            bytes=sum(p.wire_size for p in packets),
            src=src,
            dst=dst,
            flow_id=flow_id,
        )
    return packets


def depacketize(packets: Iterable[Packet], length: Optional[int] = None) -> GradientMessage:
    """Reassemble received packets into a :class:`GradientMessage`.

    Packets may arrive in any order; trimmed packets contribute heads
    only; coordinates not covered by any packet are flagged missing.
    ``length`` overrides the total coordinate count (otherwise inferred
    from the highest coordinate range seen plus the metadata packet).
    """
    # Parse every gradient header exactly once up front (satellite of the
    # fast-path rework: the old code re-parsed headers up to three times
    # per packet during length inference).
    data_packets: list[tuple[GradientHeader, Packet]] = []
    metadata: Optional[GradientMetadata] = None
    geometry: Optional[GradientHeader] = None

    for pkt in packets:
        header = pkt.grad_header or GradientHeader.from_bytes(pkt.payload)
        if header.is_metadata:
            metadata = GradientMetadata.from_bytes(pkt.payload[GRADIENT_HEADER_BYTES:])
            geometry = geometry or header
        else:
            data_packets.append((header, pkt))
            geometry = header if geometry is None or geometry.is_metadata else geometry

    if geometry is None:
        raise ValueError("no gradient packets to depacketize")

    if length is None:
        length = max(
            (hdr.coord_offset + hdr.coord_count for hdr, _ in data_packets),
            default=0,
        )

    # Geometry fields for the *untrimmed* encoding come from any data
    # packet: a trimmed packet reports its post-trim head_bits, so derive
    # the full split from head_bits + tail_bits which trim preserves.
    full_head_bits = None
    full_tail_bits = None
    for hdr, _ in data_packets:
        if not hdr.trimmed:
            full_head_bits, full_tail_bits = hdr.head_bits, hdr.tail_bits
            break
    if full_head_bits is None or full_tail_bits is None:
        # All packets trimmed: the head plane width is whatever survived.
        full_head_bits = geometry.head_bits
        full_tail_bits = geometry.tail_bits

    heads = np.zeros(length, dtype=np.uint32)
    tails = np.zeros(length, dtype=np.uint32)
    trimmed = np.zeros(length, dtype=bool)
    covered = np.zeros(length, dtype=bool)

    # Group arrived packets by geometry and invert each group's packed
    # planes in one batched call; a message's packets share one geometry
    # (plus a possibly-smaller final chunk and the trimmed variants), so
    # this collapses the per-packet unpack loop into a handful of calls.
    groups: dict[tuple[int, int, int, bool], tuple[list[int], list[memoryview]]] = {}
    for hdr, pkt in data_packets:
        lo, hi = hdr.coord_offset, hdr.coord_offset + hdr.coord_count
        if hi > length:
            raise ValueError(f"packet covers coords [{lo},{hi}) beyond length {length}")
        body = memoryview(pkt.payload)[GRADIENT_HEADER_BYTES:]
        need = packed_size(hdr.coord_count, hdr.head_bits)
        if not hdr.trimmed:
            need += packed_size(hdr.coord_count, hdr.tail_bits)
        if len(body) < need:
            raise ValueError(
                f"need {need} payload bytes for {hdr.coord_count} coords "
                f"({hdr.head_bits}+{0 if hdr.trimmed else hdr.tail_bits} bits), "
                f"got {len(body)}"
            )
        key = (hdr.coord_count, hdr.head_bits, hdr.tail_bits, hdr.trimmed)
        offsets, bodies = groups.setdefault(key, ([], []))
        offsets.append(lo)
        bodies.append(body[:need])

    for (count, head_bits, tail_bits, was_trimmed), (offsets, bodies) in groups.items():
        span = np.asarray(offsets, dtype=np.int64)[:, None] + np.arange(count)
        head_need = packed_size(count, head_bits)
        head_vals = unpack_batch([b[:head_need] for b in bodies], count, head_bits)
        flat = span.reshape(-1)
        heads[flat] = head_vals.reshape(-1)
        covered[flat] = True
        if was_trimmed:
            trimmed[flat] = True
        else:
            tail_vals = unpack_batch([b[head_need:] for b in bodies], count, tail_bits)
            tails[flat] = tail_vals.reshape(-1)

    return GradientMessage(
        heads=heads,
        tails=tails,
        trimmed=trimmed,
        missing=~covered,
        metadata=metadata,
        codec_id=geometry.codec_id,
        head_bits=full_head_bits,
        tail_bits=full_tail_bits,
        length=length,
    )


def decode_packets(
    packets: Sequence[Packet],
    codec: Optional[GradientCodec] = None,
    length: Optional[int] = None,
) -> np.ndarray:
    """One-call receive path: depacketize then codec-decode.

    When ``codec`` is omitted it is instantiated from the wire codec id.
    """
    start = time.perf_counter()
    message = depacketize(packets, length=length)
    if codec is None:
        codec = codec_by_id(message.codec_id)
    enc = message.to_encoded()
    decoded = codec.decode(enc, trimmed=message.trimmed, missing=message.missing)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "decode",
            duration_s=time.perf_counter() - start,
            codec=type(codec).__name__,
            coords=int(decoded.size),
            packets=len(packets),
            packets_trimmed=sum(1 for p in packets if p.is_trimmed),
            coords_trimmed=int(np.count_nonzero(message.trimmed)),
            coords_missing=int(np.count_nonzero(message.missing)),
        )
    return decoded
