"""Gradient blob ⇄ trimmable packets.

``packetize`` lays an :class:`~repro.core.codec.EncodedGradient` out on
the wire exactly as Figure 2(b) prescribes: every packet carries its
32-byte self-describing gradient header, then the packed ``P``-bit heads
of its ``n`` coordinates, then their ``Q``-bit tails.  A switch that trims
the packet after the heads leaves a decodable prefix.

``depacketize`` reassembles whatever arrived — full packets, trimmed
packets, or holes where packets were dropped — into per-coordinate head /
tail arrays plus masks, ready for the codec's decoder.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..obs.trace import get_tracer
from ..packet.bitpack import pack_bits, packed_size, unpack_bits
from ..packet.header import (
    FLAG_METADATA,
    GRADIENT_HEADER_BYTES,
    GradientHeader,
)
from ..packet.packet import DEFAULT_MTU_BYTES, Packet
from .codec import EncodedGradient, GradientCodec, codec_by_id
from .layout import coords_per_packet
from .metadata import GradientMetadata

__all__ = ["GradientMessage", "packetize", "depacketize", "decode_packets"]


@dataclass
class GradientMessage:
    """Receiver-side view of one collective message's packets.

    Attributes:
        heads: per-coordinate head codes (0 where the packet is missing).
        tails: per-coordinate tail codes (0 where trimmed or missing).
        trimmed: True for coordinates that arrived head-only.
        missing: True for coordinates whose packet never arrived.
        metadata: the reliable side-channel, if its packet arrived.
        codec_id / head_bits / tail_bits / length: message geometry.
    """

    heads: np.ndarray
    tails: np.ndarray
    trimmed: np.ndarray
    missing: np.ndarray
    metadata: Optional[GradientMetadata]
    codec_id: int
    head_bits: int
    tail_bits: int
    length: int

    @property
    def trim_fraction(self) -> float:
        """Fraction of coordinates that arrived head-only."""
        return float(self.trimmed.mean()) if self.length else 0.0

    def to_encoded(self) -> EncodedGradient:
        """Package as an :class:`EncodedGradient` for codec decoding."""
        if self.metadata is None:
            raise ValueError("metadata packet missing; cannot decode")
        return EncodedGradient(
            codec_id=self.codec_id,
            head_bits=self.head_bits,
            tail_bits=self.tail_bits,
            length=self.length,
            heads=self.heads,
            tails=self.tails,
            metadata=self.metadata,
        )


def packetize(
    enc: EncodedGradient,
    src: str = "",
    dst: str = "",
    mtu: int = DEFAULT_MTU_BYTES,
    flow_id: int = 0,
) -> list[Packet]:
    """Serialize an encoded gradient into wire packets.

    The first returned packet is the small reliable metadata packet
    (flagged so switches never trim it); the rest are trimmable data
    packets in coordinate order.
    """
    meta = enc.metadata
    n_per_packet = coords_per_packet(mtu, enc.head_bits, enc.tail_bits)
    packets: list[Packet] = []

    meta_header = GradientHeader(
        codec_id=enc.codec_id,
        head_bits=enc.head_bits,
        tail_bits=enc.tail_bits,
        message_id=meta.message_id,
        epoch=meta.epoch,
        chunk_index=0,
        coord_offset=0,
        coord_count=0,
        seed=meta.seed,
        flags=FLAG_METADATA,
    )
    packets.append(
        Packet(
            src=src,
            dst=dst,
            payload=meta_header.to_bytes() + meta.to_bytes(),
            grad_header=meta_header,
            priority=1,
            flow_id=flow_id,
        )
    )

    for chunk, offset in enumerate(range(0, enc.length, n_per_packet)):
        end = min(offset + n_per_packet, enc.length)
        count = end - offset
        header = GradientHeader(
            codec_id=enc.codec_id,
            head_bits=enc.head_bits,
            tail_bits=enc.tail_bits,
            message_id=meta.message_id,
            epoch=meta.epoch,
            chunk_index=chunk + 1,
            coord_offset=offset,
            coord_count=count,
            seed=meta.seed,
        )
        payload = (
            header.to_bytes()
            + pack_bits(enc.heads[offset:end], enc.head_bits)
            + pack_bits(enc.tails[offset:end], enc.tail_bits)
        )
        packets.append(
            Packet(
                src=src,
                dst=dst,
                payload=payload,
                grad_header=header,
                flow_id=flow_id,
                seq=chunk + 1,
            )
        )
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "packetize",
            message_id=meta.message_id,
            epoch=meta.epoch,
            coords=enc.length,
            packets=len(packets),
            bytes=sum(p.wire_size for p in packets),
            src=src,
            dst=dst,
            flow_id=flow_id,
        )
    return packets


def depacketize(packets: Iterable[Packet], length: Optional[int] = None) -> GradientMessage:
    """Reassemble received packets into a :class:`GradientMessage`.

    Packets may arrive in any order; trimmed packets contribute heads
    only; coordinates not covered by any packet are flagged missing.
    ``length`` overrides the total coordinate count (otherwise inferred
    from the highest coordinate range seen plus the metadata packet).
    """
    data_packets: list[Packet] = []
    metadata: Optional[GradientMetadata] = None
    geometry: Optional[GradientHeader] = None

    for pkt in packets:
        header = pkt.grad_header or GradientHeader.from_bytes(pkt.payload)
        if header.is_metadata:
            metadata = GradientMetadata.from_bytes(pkt.payload[GRADIENT_HEADER_BYTES:])
            geometry = geometry or header
        else:
            data_packets.append(pkt)
            geometry = header if geometry is None or geometry.is_metadata else geometry

    if geometry is None:
        raise ValueError("no gradient packets to depacketize")

    if length is None:
        seen_end = max(
            (
                (p.grad_header or GradientHeader.from_bytes(p.payload)).coord_offset
                + (p.grad_header or GradientHeader.from_bytes(p.payload)).coord_count
                for p in data_packets
            ),
            default=0,
        )
        length = seen_end

    head_bits = geometry.head_bits + geometry.tail_bits  # full width
    # Geometry fields for the *untrimmed* encoding come from any data
    # packet: a trimmed packet reports its post-trim head_bits, so derive
    # the full split from head_bits + tail_bits which trim preserves.
    full_head_bits = None
    full_tail_bits = None
    for pkt in data_packets:
        hdr = pkt.grad_header or GradientHeader.from_bytes(pkt.payload)
        if not hdr.trimmed:
            full_head_bits, full_tail_bits = hdr.head_bits, hdr.tail_bits
            break
    if full_head_bits is None:
        # All packets trimmed: the head plane width is whatever survived.
        full_head_bits = geometry.head_bits
        full_tail_bits = geometry.tail_bits
    del head_bits

    heads = np.zeros(length, dtype=np.uint32)
    tails = np.zeros(length, dtype=np.uint32)
    trimmed = np.zeros(length, dtype=bool)
    covered = np.zeros(length, dtype=bool)

    for pkt in data_packets:
        hdr = pkt.grad_header or GradientHeader.from_bytes(pkt.payload)
        body = pkt.payload[GRADIENT_HEADER_BYTES:]
        lo, hi = hdr.coord_offset, hdr.coord_offset + hdr.coord_count
        if hi > length:
            raise ValueError(f"packet covers coords [{lo},{hi}) beyond length {length}")
        heads[lo:hi] = unpack_bits(body, hdr.coord_count, hdr.head_bits)
        covered[lo:hi] = True
        if hdr.trimmed:
            trimmed[lo:hi] = True
        else:
            tail_start = packed_size(hdr.coord_count, hdr.head_bits)
            tails[lo:hi] = unpack_bits(body[tail_start:], hdr.coord_count, hdr.tail_bits)

    return GradientMessage(
        heads=heads,
        tails=tails,
        trimmed=trimmed,
        missing=~covered,
        metadata=metadata,
        codec_id=geometry.codec_id,
        head_bits=full_head_bits,
        tail_bits=full_tail_bits,
        length=length,
    )


def decode_packets(
    packets: Sequence[Packet],
    codec: Optional[GradientCodec] = None,
    length: Optional[int] = None,
) -> np.ndarray:
    """One-call receive path: depacketize then codec-decode.

    When ``codec`` is omitted it is instantiated from the wire codec id.
    """
    start = time.perf_counter()
    message = depacketize(packets, length=length)
    if codec is None:
        codec = codec_by_id(message.codec_id)
    enc = message.to_encoded()
    decoded = codec.decode(enc, trimmed=message.trimmed, missing=message.missing)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "decode",
            duration_s=time.perf_counter() - start,
            codec=type(codec).__name__,
            coords=int(decoded.size),
            packets=len(packets),
            packets_trimmed=sum(1 for p in packets if p.is_trimmed),
            coords_trimmed=int(np.count_nonzero(message.trimmed)),
            coords_missing=int(np.count_nonzero(message.missing)),
        )
    return decoded
