"""Calibrated round-time cost model (wall clock for Figures 3-5).

Our substrate is a CPU simulator, so absolute GPU wall-clock cannot be
measured directly.  Figures 3-5 compare *relative* per-round times, and
those are reconstructed from three ingredients:

1. **Compute** — a fixed per-round cost representing the forward+backward
   pass on the paper's GPU (configurable; the default is calibrated to a
   VGG-19/CIFAR-100 batch).
2. **Encode/decode** — anchored to the paper's measured fact that the
   hook adds ~42-68 % per round for scalar codecs, with the *relative*
   cost between codecs taken from this machine's measured per-coordinate
   throughput (RHT costs more than SQ/SD by the FWHT's O(log n) factor —
   the paper measured ≈18 %).
3. **Communication** — bytes on the wire over the link bandwidth.
   Trimming *reduces* bytes (trimmed packets are ~1/32 size); drops on
   the baseline *add* go-back-N retransmission stalls, calibrated to the
   Section 4.4 observation (0.15-0.25 % drops tolerable, 1-2 % drops
   5-10x slower).

The knobs live in :class:`TimingConfig` and every default is documented,
so EXPERIMENTS.md can state exactly what was assumed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..transforms.prng import shared_generator

__all__ = ["TimingConfig", "RoundTime", "RoundTimeModel", "measure_codec_throughput"]


@dataclass
class TimingConfig:
    """Every constant of the cost model, with provenance.

    Attributes:
        bandwidth_bps: testbed link rate (paper: 100 Gb/s DAC).
        base_rtt_s: propagation + switching latency per message.
        compute_s: GPU forward+backward per round (order of VGG-19 @ 64).
        hook_overhead_s: fixed DDP-hook callback cost per round (the
            paper attributes much of its 42-68 % overhead to this).
        encode_fraction_scalar: encode+decode cost of the *scalar* codecs
            as a fraction of compute_s (anchors the 42-68 % range
            together with hook_overhead_s).
        mtu_bytes: packet size.
        gbn_window: baseline go-back-N window (packets re-sent per drop).
        fast_retx_s: cheap recovery cost per isolated drop (dup-ACK
            rewind, ~RTTs).
        rto_s: retransmission timeout charged when a second loss lands
            in the same window (probability ≈ drop_rate·window) — the
            super-linear regime that makes 1-2 % drops 5-10x slower
            while ~0.2 % stays tolerable, as §4.4 reports.
    """

    bandwidth_bps: float = 100e9
    base_rtt_s: float = 10e-6
    compute_s: float = 40e-3
    hook_overhead_s: float = 12e-3
    encode_fraction_scalar: float = 0.2
    mtu_bytes: int = 1500
    gbn_window: int = 64
    fast_retx_s: float = 30e-6
    rto_s: float = 1e-3


@dataclass
class RoundTime:
    """Per-round wall-clock breakdown (the Figure 5 bars)."""

    compute_s: float
    encode_s: float
    comm_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.encode_s + self.comm_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute_s": self.compute_s,
            "encode_s": self.encode_s,
            "comm_s": self.comm_s,
            "total_s": self.total_s,
        }


def measure_codec_throughput(
    codec_names=("sign", "sq", "sd", "rht"),
    num_coords: int = 2**17,
    repeats: int = 3,
    seed: int = 0,
) -> Dict[str, float]:
    """Measured encode+decode nanoseconds per coordinate, per codec.

    This is the *relative* cost input of the timing model — the same
    measurement the paper performs on its GPU, run here on the numpy
    implementations.
    """
    from ..core.codec import codec_by_name

    rng = shared_generator(seed, purpose="data")
    flat = rng.standard_normal(num_coords)
    results: Dict[str, float] = {}
    for name in codec_names:
        codec = codec_by_name(name, root_seed=seed)
        best = float("inf")
        for rep in range(repeats):
            start = time.perf_counter()
            enc = codec.encode(flat, epoch=rep, message_id=1)
            codec.decode(enc)
            best = min(best, time.perf_counter() - start)
        results[name] = best / num_coords * 1e9
    return results


class RoundTimeModel:
    """Convert per-round counters into modeled wall-clock seconds."""

    def __init__(
        self,
        config: Optional[TimingConfig] = None,
        codec_ns_per_coord: Optional[Dict[str, float]] = None,
    ) -> None:
        self.config = config or TimingConfig()
        # Relative codec costs; measured lazily on first use if absent.
        self._codec_ns = codec_ns_per_coord

    @property
    def codec_ns_per_coord(self) -> Dict[str, float]:
        if self._codec_ns is None:
            self._codec_ns = measure_codec_throughput()
        return self._codec_ns

    def _encode_seconds(self, codec_name: Optional[str], num_coords: int) -> float:
        """Encode+decode cost, anchored to scalar == fraction of compute."""
        if codec_name is None:
            return 0.0
        cfg = self.config
        table = self.codec_ns_per_coord
        if codec_name not in table:
            raise KeyError(f"no throughput measurement for codec {codec_name!r}")
        scalar_ns = table.get("sq", min(table.values()))
        relative = table[codec_name] / scalar_ns
        return cfg.encode_fraction_scalar * cfg.compute_s * relative

    def _message_bytes(
        self, num_coords: int, trim_rate: float, codec_name: Optional[str]
    ) -> float:
        cfg = self.config
        payload = cfg.mtu_bytes - 42
        if codec_name is None:
            return num_coords * 4 * (cfg.mtu_bytes / payload)
        # Trimmed packets carry 1 bit per coordinate instead of 32.
        full = num_coords * 4 * (cfg.mtu_bytes / payload)
        trimmed_size_fraction = 1.0 / 32.0 + 74.0 / cfg.mtu_bytes  # heads + headers
        return full * ((1 - trim_rate) + trim_rate * trimmed_size_fraction)

    def round_time(
        self,
        num_coords: int,
        codec_name: Optional[str] = None,
        trim_rate: float = 0.0,
        drop_rate: float = 0.0,
        world_size: int = 2,
    ) -> RoundTime:
        """Model one synchronous training round.

        Args:
            num_coords: gradient length (all workers equal).
            codec_name: None for the uncompressed baseline.
            trim_rate: fraction of packets trimmed (trimmable path).
            drop_rate: fraction of packets dropped (baseline path).
            world_size: ring width — bytes scale with the all-reduce's
                2(N-1)/N factor.
        """
        cfg = self.config
        encode = self._encode_seconds(codec_name, num_coords)
        hook = cfg.hook_overhead_s if codec_name is not None else 0.0
        bytes_on_wire = self._message_bytes(num_coords, trim_rate, codec_name)
        bytes_on_wire *= 2.0 * (world_size - 1) / world_size
        comm = bytes_on_wire * 8.0 / cfg.bandwidth_bps + cfg.base_rtt_s
        if drop_rate > 0.0:
            num_packets = bytes_on_wire / cfg.mtu_bytes
            drops = num_packets * drop_rate
            # Each drop rewinds ~W/2 packets; with probability
            # ~drop_rate*W a second loss hits the same window and the
            # sender stalls a full RTO (the super-linear §4.4 regime).
            rewind_bytes = drops * cfg.gbn_window / 2 * cfg.mtu_bytes
            rto_probability = min(1.0, drop_rate * cfg.gbn_window)
            stall_per_drop = cfg.fast_retx_s + rto_probability * cfg.rto_s
            comm += rewind_bytes * 8.0 / cfg.bandwidth_bps + drops * stall_per_drop
        return RoundTime(
            compute_s=cfg.compute_s, encode_s=encode + hook, comm_s=comm
        )

    def baseline_slowdown(self, num_coords: int, drop_rate: float) -> float:
        """Round-time ratio of the lossy baseline to the clean baseline."""
        clean = self.round_time(num_coords).total_s
        lossy = self.round_time(num_coords, drop_rate=drop_rate).total_s
        return lossy / clean
