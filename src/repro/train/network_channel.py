"""Gradient aggregation through the full packet-level simulator.

The paper's evaluation simulates trimming probabilistically because
NCCL's wire format is closed.  This module is the step the paper could
not take: every gradient transfer of a training round is **actually
packetized, transmitted through the discrete-event network — shallow
trimming switches, cross traffic and all — and decoded from whatever
bytes arrive**.

:class:`NetworkChannel` plugs into the same
:class:`~repro.collectives.channel.GradientChannel` seam as the
Bernoulli :class:`~repro.train.trim_channel.TrimChannel`, so the DDP
trainer runs unmodified on top of the real simulated fabric, and the
channel additionally reports flow completion times per transfer.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..collectives.channel import GradientChannel
from ..core.codec import GradientCodec, nmse
from ..core.packetizer import decode_packets, packetize
from ..net.topology import Network
from ..packet import arena as _arena
from ..obs.spans import get_span_tracer
from ..obs.trace import get_tracer
from ..transport.base import TransportSurrender
from ..transport.congestion import CongestionControl, FixedWindow
from ..transport.trimming import TrimmingReceiver, TrimmingSender

__all__ = ["NetworkChannel"]


class NetworkChannel(GradientChannel):
    """Carry each gradient message over a simulated network.

    Args:
        network_factory: builds a fresh :class:`Network` per transfer
            (fresh queues/state keep transfers independent and
            deterministic); the factory may install cross-traffic before
            returning.
        codec: trimmable codec used on the wire.
        src / dst: host names inside the built network.
        make_cc: congestion-control factory for the sender.
        mtu: packet size.
        deadline_s: simulation-time budget per transfer; an incomplete
            transfer raises (a lost metadata packet would otherwise hang
            training silently).
        degraded_step: when True, a transport surrender or missed
            deadline yields a zero gradient (and bumps
            ``stats.rounds_surrendered``) instead of raising — the
            training loop skips the round and keeps going, the behaviour
            a production job wants under a transient network fault.
        max_retries: per-packet retry budget forwarded to the sender
            (None keeps the transport default).
    """

    def __init__(
        self,
        network_factory: Callable[[], Network],
        codec: GradientCodec,
        src: str,
        dst: str,
        make_cc: Optional[Callable[[], CongestionControl]] = None,
        mtu: int = 1500,
        deadline_s: float = 30.0,
        degraded_step: bool = False,
        max_retries: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.network_factory = network_factory
        self.codec = codec
        self.src = src
        self.dst = dst
        self.make_cc = make_cc or (lambda: FixedWindow(initial_window=128))
        self.mtu = mtu
        self.deadline_s = deadline_s
        self.degraded_step = degraded_step
        self.max_retries = max_retries
        self.fcts: List[float] = []
        self.last_trim_fraction = 0.0

    def _degrade(
        self, flat: np.ndarray, reason: str, epoch: int, message_id: int, worker: int
    ) -> np.ndarray:
        """Zero-gradient fallback for a round the transport gave up on."""
        self.count_surrender()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "channel.degraded_step",
                epoch=epoch,
                message_id=message_id,
                worker=worker,
                reason=reason,
            )
        return np.zeros_like(flat)

    def transfer(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0, worker: int = 0
    ) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.float64)
        tracer = get_tracer()
        with tracer.span(
            "encode",
            codec=type(self.codec).__name__,
            coords=int(flat.size),
            epoch=epoch,
            message_id=message_id,
            worker=worker,
        ):
            enc = self.codec.encode(flat, epoch=epoch, message_id=message_id)
        net = self.network_factory()
        flow_id = 77_000 + worker
        packets = packetize(
            enc, src=self.src, dst=self.dst, mtu=self.mtu, flow_id=flow_id
        )

        delivered: List[List] = []
        surrendered: List[TransportSurrender] = []
        sender = TrimmingSender(
            net.hosts[self.src], flow_id=flow_id, cc=self.make_cc()
        )
        if self.max_retries is not None:
            sender.max_retries = self.max_retries
        TrimmingReceiver(
            net.hosts[self.dst], flow_id=flow_id, on_message=delivered.append
        )
        start = net.sim.now
        st = get_span_tracer()
        span = st.begin(
            "channel.transfer",
            t=start,
            epoch=epoch,
            message_id=message_id,
            worker=worker,
            packets=len(packets),
        )
        with st.context(span):
            sender.send_message(packets, on_failure=surrendered.append)
        net.sim.run(until=start + self.deadline_s)
        if not delivered:
            self.stats.messages += 1
            self.stats.coordinates += flat.size
            if surrendered:
                st.end(span, t=net.sim.now, outcome="surrendered")
                if self.degraded_step:
                    # Degraded step: this network never runs again, so
                    # the transfer owner recycles its message packets.
                    _arena._ARENA.release_all(packets)
                    return self._degrade(
                        flat, surrendered[0].reason, epoch, message_id, worker
                    )
                raise surrendered[0]
            st.end(span, t=net.sim.now, outcome="deadline")
            if self.degraded_step:
                _arena._ARENA.release_all(packets)
                return self._degrade(flat, "deadline", epoch, message_id, worker)
            raise RuntimeError(
                f"gradient transfer (epoch {epoch}, message {message_id}, "
                f"worker {worker}) missed its {self.deadline_s}s deadline"
            )
        wire = delivered[0]
        decoded = decode_packets(wire, self.codec)

        data_packets = [p for p in wire if p.grad_header and not p.grad_header.is_metadata]
        trimmed = sum(1 for p in data_packets if p.is_trimmed)
        self.fcts.append(net.sim.now - start)
        self.last_trim_fraction = trimmed / max(1, len(data_packets))
        st.end(
            span,
            t=net.sim.now,
            outcome="delivered",
            fct_s=self.fcts[-1],
            trim_fraction=self.last_trim_fraction,
        )
        self.stats.messages += 1
        self.stats.coordinates += flat.size
        self.stats.packets_total += len(data_packets)
        self.stats.packets_trimmed += trimmed
        self.stats.bytes_sent += sum(p.wire_size for p in wire)
        if tracer.enabled:
            tracer.event(
                "channel.transfer",
                sim_time=net.sim.now,
                epoch=epoch,
                message_id=message_id,
                worker=worker,
                fct_s=self.fcts[-1],
                trim_fraction=self.last_trim_fraction,
                nmse=float(nmse(flat, decoded)),
            )
        # Transfer decoded and accounted: the channel owns the transfer,
        # so every message packet goes back to the arena.  The sender's
        # retransmit list and the delivered wire list overlap (trim
        # remnants are un-pooled twins) — release_all dedups by identity.
        _arena._ARENA.release_all(packets)
        _arena._ARENA.release_all(wire)
        return decoded

    @property
    def mean_fct(self) -> float:
        """Mean flow completion time across all transfers so far."""
        return float(np.mean(self.fcts)) if self.fcts else 0.0
