"""Trim-transcript record & replay (paper Section 5.4).

With trimmable gradients every run is unique — congestion decides which
packets get trimmed.  For reproducibility the paper proposes recording
the indices of trimmed packets per collective message and replaying the
transcript in a later run (with trimming simulated at the receiver).

:class:`TrimTranscript` is that record: keyed by
``(epoch, message_id, worker)``, holding the sorted list of trimmed
packet indices, JSON-serializable for archival.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

__all__ = ["TrimTranscript"]

Key = Tuple[int, int, int]


class TrimTranscript:
    """Which packets were trimmed, for every message of a training run."""

    def __init__(self) -> None:
        self._entries: Dict[Key, List[int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, epoch: int, message_id: int, worker: int, trimmed: List[int]) -> None:
        """Store the trimmed packet indices of one message."""
        key = (epoch, message_id, worker)
        if key in self._entries:
            raise ValueError(f"transcript already has an entry for {key}")
        self._entries[key] = sorted(int(i) for i in trimmed)

    def lookup(self, epoch: int, message_id: int, worker: int) -> List[int]:
        """Trimmed packet indices for one message (raises if unknown)."""
        key = (epoch, message_id, worker)
        if key not in self._entries:
            raise KeyError(
                f"transcript has no entry for epoch={epoch}, "
                f"message={message_id}, worker={worker} — replay ran out of script"
            )
        return list(self._entries[key])

    def total_trimmed(self) -> int:
        """Total trimmed packets across the run."""
        return sum(len(v) for v in self._entries.values())

    # -- persistence --------------------------------------------------------

    def to_json(self) -> str:
        """Serialize; keys become ``"epoch:message:worker"`` strings."""
        payload = {
            f"{e}:{m}:{w}": trimmed for (e, m, w), trimmed in sorted(self._entries.items())
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "TrimTranscript":
        transcript = cls()
        for key, trimmed in json.loads(text).items():
            epoch, message, worker = (int(part) for part in key.split(":"))
            transcript.record(epoch, message, worker, trimmed)
        return transcript

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TrimTranscript":
        return cls.from_json(Path(path).read_text())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrimTranscript):
            return NotImplemented
        return self._entries == other._entries
