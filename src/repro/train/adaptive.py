"""Ahead-of-time Q adaptation + just-in-time trimming (Section 5.3).

The paper's Section 5.3 sketches the full control loop:

* a **coarse-grained congestion-control signal** lets the sender adjust
  the tail width ``Q`` ahead of time (send fewer bits when the path is
  known to be busy);
* the switch still applies **just-in-time trimming** when unpredictable
  congestion hits anyway;
* crucially, the sender should "always slightly under-compress and
  over-send so that the gradient traffic always saturates the link",
  letting the switch do the fine-grained cutting.

Implemented here over the Section 5.1 tiered (1/8/32-bit) codec, whose
plane boundaries give both the sender and the switch the same trim
depths:

* :class:`BudgetedLinkChannel` — a bottleneck with a per-message byte
  budget: packets beyond the budget are trimmed to the next shallower
  plane (the JIT reaction), packets that cannot shrink further are
  dropped.
* :class:`AdaptiveQController` — adjusts the sender's ahead-of-time
  depth from the observed JIT trim fraction, biased toward
  under-compression exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..collectives.channel import GradientChannel
from ..core.multilevel import LEVEL_BITS, MultiLevelCodec
from ..packet.trim import trim_to_bits

__all__ = ["BudgetedLinkChannel", "AdaptiveQController"]


class AdaptiveQController:
    """Pick the ahead-of-time send depth from JIT-trim feedback.

    Policy: if the link trimmed more than ``high_water`` of last
    message's packets, the coarse signal says "congested" — step down
    one depth.  Only after ``patience`` consecutive messages with trim
    fraction below ``low_water`` step back up.  The asymmetric
    thresholds implement the paper's "slightly under-compress and
    over-send" bias: a small, steady JIT trim fraction is the *desired*
    operating point, not an error.
    """

    def __init__(
        self,
        levels: tuple = LEVEL_BITS[::-1],  # (32, 8, 1)
        high_water: float = 0.5,
        low_water: float = 0.05,
        patience: int = 2,
    ) -> None:
        if not levels or sorted(levels, reverse=True) != list(levels):
            raise ValueError("levels must be non-increasing bit depths")
        self.levels = tuple(levels)
        self.high_water = high_water
        self.low_water = low_water
        self.patience = patience
        self._index = 0  # start at full depth: over-send first
        self._calm_streak = 0

    @property
    def send_bits(self) -> int:
        """Current ahead-of-time bits per coordinate."""
        return self.levels[self._index]

    def update(self, trim_fraction: float) -> int:
        """Fold in the last message's observed JIT trim fraction."""
        if trim_fraction > self.high_water:
            if self._index < len(self.levels) - 1:
                self._index += 1
            self._calm_streak = 0
        elif trim_fraction < self.low_water:
            self._calm_streak += 1
            if self._calm_streak >= self.patience and self._index > 0:
                self._index -= 1
                self._calm_streak = 0
        else:
            # In the target band: slight trimming, link saturated.
            self._calm_streak = 0
        return self.send_bits


class BudgetedLinkChannel(GradientChannel):
    """A byte-budgeted bottleneck over the tiered multi-level codec.

    Each message crosses a link that can carry ``capacity_bytes``.
    Packets are sent at the controller's ahead-of-time depth; once the
    running total exceeds the budget, every further packet is trimmed
    one plane shallower (JIT), and packets already at the deepest plane
    are dropped.  The controller (if any) sees the resulting JIT trim
    fraction after every message.
    """

    def __init__(
        self,
        codec: MultiLevelCodec,
        capacity_bytes: int,
        controller: Optional[AdaptiveQController] = None,
        static_send_bits: int = 32,
    ) -> None:
        super().__init__()
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if static_send_bits not in LEVEL_BITS:
            raise ValueError(f"static_send_bits must be one of {LEVEL_BITS}")
        self.codec = codec
        self.capacity_bytes = capacity_bytes
        self.controller = controller
        self.static_send_bits = static_send_bits
        self.last_trim_fraction = 0.0
        self.last_send_bits = static_send_bits
        self.packets_dropped_total = 0

    def _next_lower(self, bits: int) -> Optional[int]:
        lower = [b for b in LEVEL_BITS if b < bits]
        return max(lower) if lower else None

    def transfer(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0, worker: int = 0
    ) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.float64)
        send_bits = (
            self.controller.send_bits if self.controller else self.static_send_bits
        )
        self.last_send_bits = send_bits
        enc = self.codec.encode(flat, epoch=epoch, message_id=message_id)
        packets = self.codec.packetize(enc, "tx", "rx")
        meta, data = packets[0], packets[1:]

        wire = [meta]
        used = meta.wire_size
        jit_trimmed = 0
        dropped = 0
        for pkt in data:
            shaped = pkt if send_bits >= 32 else trim_to_bits(pkt, send_bits)
            if used + shaped.wire_size <= self.capacity_bytes:
                wire.append(shaped)
                used += shaped.wire_size
                continue
            # JIT reaction: cascade down the plane boundaries until the
            # remnant fits; a packet that cannot fit even at the deepest
            # plane is dropped (buffer exhausted).
            placed = False
            deeper = self._next_lower(send_bits)
            while deeper is not None:
                remnant = trim_to_bits(pkt, deeper)
                if used + remnant.wire_size <= self.capacity_bytes:
                    wire.append(remnant)
                    used += remnant.wire_size
                    jit_trimmed += 1
                    placed = True
                    break
                deeper = self._next_lower(deeper)
            if not placed:
                dropped += 1

        back, levels = self.codec.depacketize(wire)
        decoded = self.codec.decode(back, levels)

        self.last_trim_fraction = (jit_trimmed + dropped) / max(1, len(data))
        if self.controller is not None:
            self.controller.update(self.last_trim_fraction)
        self.packets_dropped_total += dropped
        self.stats.messages += 1
        self.stats.coordinates += flat.size
        self.stats.packets_total += len(data)
        self.stats.packets_trimmed += jit_trimmed
        self.stats.packets_dropped += dropped
        self.stats.bytes_sent += used
        return decoded
