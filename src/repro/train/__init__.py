"""Distributed training on top of the codecs, collectives, and cost model."""

from .adaptive import AdaptiveQController, BudgetedLinkChannel
from .ddp import (
    DDPTrainer,
    EpochRecord,
    TrainConfig,
    TrainingHistory,
    shard_dataset,
)
from .fsdp import FSDPTrainer
from .network_channel import NetworkChannel
from .replay import TrimTranscript
from .timing import RoundTime, RoundTimeModel, TimingConfig, measure_codec_throughput
from .trim_channel import BaselineDropChannel, TrimChannel

__all__ = [
    "AdaptiveQController",
    "BudgetedLinkChannel",
    "NetworkChannel",
    "DDPTrainer",
    "EpochRecord",
    "TrainConfig",
    "TrainingHistory",
    "shard_dataset",
    "FSDPTrainer",
    "TrimTranscript",
    "RoundTime",
    "RoundTimeModel",
    "TimingConfig",
    "measure_codec_throughput",
    "BaselineDropChannel",
    "TrimChannel",
]
