"""Distributed data-parallel training with pluggable gradient channels.

The experiment engine behind Figures 3 and 4.  Faithful to the paper's
methodology: hold every hyper-parameter fixed ("SGD with momentum 0.9,
initial learning rate 1e-3 with StepLR, cross-entropy, batch size 64,
data augmentation") and vary only how gradients are aggregated between
workers — baseline, or a trimmable codec at some trim rate.

Implementation note: because synchronous DDP keeps all replicas
bit-identical (same aggregated gradient, same optimizer state), we hold
*one* model and run the per-worker forward/backward passes sequentially
on each worker's shard — mathematically identical to N replicas at 1/N
memory.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..collectives.hooks import AllReduceHook, CommHook
from ..collectives.ring import broadcast
from ..nn.data import DataLoader, SyntheticImages
from ..nn.functional import cross_entropy
from ..nn.layers import Module
from ..nn.metrics import evaluate
from ..nn.optim import SGD, StepLR
from ..nn.tensor import Tensor
from ..obs.metrics import get_registry
from ..obs.spans import get_span_tracer
from ..obs.trace import get_tracer
from ..resilience import (
    EFChannel,
    Membership,
    ResilienceConfig,
    RoundDeadline,
    TrainingCheckpoint,
)
from .timing import RoundTime, RoundTimeModel

__all__ = ["TrainConfig", "EpochRecord", "TrainingHistory", "DDPTrainer", "shard_dataset"]


@dataclass
class TrainConfig:
    """Hyper-parameters, defaulting to the paper's recipe (footnote 4).

    ``freeze_momentum_on_surrender`` controls the degraded-step
    interaction with momentum: by default a surrendered round's zero
    gradient still decays the velocity buffers (``v <- mu*v``); with the
    flag set the optimizer step is skipped entirely when a surrender
    left the aggregated gradient all-zero, freezing both parameters and
    momentum for that round.
    """

    epochs: int = 20
    batch_size: int = 64
    lr: float = 1e-3
    momentum: float = 0.9
    weight_decay: float = 0.0
    step_size: int = 50
    gamma: float = 0.1
    label_smoothing: float = 0.0
    augment: bool = True
    seed: int = 0
    freeze_momentum_on_surrender: bool = False


@dataclass
class EpochRecord:
    """One epoch's results: quality, modeled wall-clock, channel stats."""

    epoch: int
    train_loss: float
    top1: float
    top5: float
    round_time: RoundTime
    wall_clock_s: float  # cumulative modeled time at epoch end
    trim_fraction: float
    diverged: bool = False
    stragglers: int = 0  # worker-rounds excluded by the deadline
    evictions: int = 0
    rejoins: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by checkpoints and the CLI)."""
        return {
            "epoch": self.epoch,
            "train_loss": self.train_loss,
            "top1": self.top1,
            "top5": self.top5,
            "round_time": self.round_time.as_dict(),
            "wall_clock_s": self.wall_clock_s,
            "trim_fraction": self.trim_fraction,
            "diverged": self.diverged,
            "stragglers": self.stragglers,
            "evictions": self.evictions,
            "rejoins": self.rejoins,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EpochRecord":
        """Inverse of :meth:`as_dict`."""
        rt = data["round_time"]
        return cls(
            epoch=int(data["epoch"]),
            train_loss=float(data["train_loss"]),
            top1=float(data["top1"]),
            top5=float(data["top5"]),
            round_time=RoundTime(
                compute_s=float(rt["compute_s"]),
                encode_s=float(rt["encode_s"]),
                comm_s=float(rt["comm_s"]),
            ),
            wall_clock_s=float(data["wall_clock_s"]),
            trim_fraction=float(data["trim_fraction"]),
            diverged=bool(data["diverged"]),
            stragglers=int(data.get("stragglers", 0)),
            evictions=int(data.get("evictions", 0)),
            rejoins=int(data.get("rejoins", 0)),
        )


class TrainingHistory:
    """Per-epoch records plus the Figure 3/4 query helpers."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.records: List[EpochRecord] = []

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def final_top1(self) -> float:
        return self.records[-1].top1 if self.records else 0.0

    @property
    def final_top5(self) -> float:
        return self.records[-1].top5 if self.records else 0.0

    @property
    def best_top1(self) -> float:
        return max((r.top1 for r in self.records), default=0.0)

    @property
    def diverged(self) -> bool:
        return any(r.diverged for r in self.records)

    def accuracy_curve(self) -> List[tuple[float, float]]:
        """(wall_clock_s, top1) series — one Figure 3 line."""
        return [(r.wall_clock_s, r.top1) for r in self.records]

    def time_to_accuracy(self, target_top1: float) -> Optional[float]:
        """Modeled seconds until top-1 first reaches ``target`` (Fig. 4)."""
        for record in self.records:
            if record.top1 >= target_top1:
                return record.wall_clock_s
        return None

    def total_time(self) -> float:
        return self.records[-1].wall_clock_s if self.records else 0.0

    def as_dicts(self) -> List[Dict[str, Any]]:
        """All records in JSON-ready form."""
        return [record.as_dict() for record in self.records]

    def to_json(self) -> str:
        """Canonical JSON — byte-identical across identical runs."""
        return json.dumps(
            {"label": self.label, "records": self.as_dicts()}, sort_keys=True
        )


def shard_dataset(dataset: SyntheticImages, world_size: int) -> List[SyntheticImages]:
    """Round-robin split, the DistributedSampler equivalent."""
    if world_size < 1:
        raise ValueError("world_size must be at least 1")
    shards = []
    for rank in range(world_size):
        shards.append(
            SyntheticImages(
                images=dataset.images[rank::world_size],
                labels=dataset.labels[rank::world_size],
            )
        )
    return shards


class DDPTrainer:
    """Synchronous data-parallel training through a gradient hook.

    Args:
        model: the network (single copy; see module docstring).
        train_set / test_set: dataset splits.
        world_size: number of simulated workers.
        hook: gradient aggregation hook (None = perfect all-reduce).
        config: hyper-parameters.
        time_model: wall-clock cost model (None = count no time).
        codec_name: codec label for the time model (None = baseline).
        trim_rate / drop_rate: congestion levels for the time model.
        divergence_loss: abort threshold — training whose epoch loss
            exceeds this (or goes NaN) is flagged diverged, like the
            sign codec at >= 2 % trim in the paper.
        optimizer_factory: callable mapping the parameter list to an
            optimizer (default: the paper's SGD+momentum from config) —
            used by the optimizer-sensitivity ablation.
        resilience: arm worker-level fault tolerance — a round deadline
            with partial aggregation, phi-accrual membership with
            eviction/rejoin, optional error feedback, and the fault plan
            evaluated on the modeled clock (see
            :class:`repro.resilience.ResilienceConfig`).  Requires a
            time model; a default one is created if none was given.
    """

    def __init__(
        self,
        model: Module,
        train_set: SyntheticImages,
        test_set: SyntheticImages,
        world_size: int = 2,
        hook: Optional[CommHook] = None,
        config: Optional[TrainConfig] = None,
        time_model: Optional[RoundTimeModel] = None,
        codec_name: Optional[str] = None,
        trim_rate: float = 0.0,
        drop_rate: float = 0.0,
        divergence_loss: float = 50.0,
        label: Optional[str] = None,
        optimizer_factory=None,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        self.model = model
        self.test_set = test_set
        self.world_size = world_size
        self.hook = hook or AllReduceHook()
        self.config = config or TrainConfig()
        self.resilience = resilience
        if resilience is not None and time_model is None:
            time_model = RoundTimeModel()
        self.time_model = time_model
        self.codec_name = codec_name
        self.trim_rate = trim_rate
        self.drop_rate = drop_rate
        self.divergence_loss = divergence_loss
        self.label = label or (codec_name or "baseline")

        cfg = self.config
        if optimizer_factory is not None:
            self.optimizer = optimizer_factory(model.parameters())
        else:
            self.optimizer = SGD(
                model.parameters(),
                lr=cfg.lr,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
            )
        self.scheduler = StepLR(self.optimizer, step_size=cfg.step_size, gamma=cfg.gamma)
        self.loaders = [
            DataLoader(
                shard,
                batch_size=cfg.batch_size,
                shuffle=True,
                augment=cfg.augment,
                seed=cfg.seed + rank,
            )
            for rank, shard in enumerate(shard_dataset(train_set, world_size))
        ]
        self.num_coords = model.num_parameters()
        self.history = TrainingHistory(self.label)
        self._rounds_run = 0
        # Per-run mutable state (all checkpointable).
        self._wall_clock = 0.0
        self._cur_epoch = 1
        self._epoch_losses: List[float] = []
        self._epoch_start_wall = 0.0
        self._epoch_loader_states: Optional[List[dict]] = None
        self._skip_rounds = 0
        self._epoch_stragglers = 0
        self._epoch_evictions = 0
        self._epoch_rejoins = 0
        # Resilience wiring: deadline + membership from the cost model.
        self.deadline: Optional[RoundDeadline] = None
        self.membership: Optional[Membership] = None
        if resilience is not None:
            self.deadline = RoundDeadline.from_time_model(
                self.time_model,
                self.num_coords,
                factor=resilience.deadline_factor,
                label=self.label,
                codec_name=codec_name,
                trim_rate=trim_rate,
                drop_rate=drop_rate,
                world_size=world_size,
            )
            self.membership = Membership(
                world_size,
                evict_after=resilience.evict_after,
                suspect_phi=resilience.suspect_phi,
                label=self.label,
            )
            self.hook.deadline = self.deadline
            if resilience.error_feedback and not isinstance(
                self.hook.channel, EFChannel
            ):
                self.hook.channel = EFChannel(self.hook.channel, label=self.label)
        registry = get_registry()
        self._m_rounds = registry.counter(
            "repro_train_rounds_total", "synchronous rounds completed", ("run",)
        ).bind(run=self.label)
        self._m_round_seconds = registry.histogram(
            "repro_train_round_seconds",
            "wall time of one synchronous round (compute + aggregate)",
            ("run",),
        ).bind(run=self.label)
        self._m_epoch = registry.gauge(
            "repro_train_epoch", "last completed epoch", ("run",)
        ).bind(run=self.label)
        self._m_loss = registry.gauge(
            "repro_train_loss", "mean train loss of the last epoch", ("run",)
        ).bind(run=self.label)
        self._m_top1 = registry.gauge(
            "repro_train_top1", "test top-1 after the last epoch", ("run",)
        ).bind(run=self.label)

    # -- one synchronous round -------------------------------------------------

    def _worker_times(self, base_s: float, now_s: float) -> Dict[int, float]:
        """Modeled per-worker round times under the fault plan.

        Evicted workers and workers inside a crash window get ``inf``
        (they do no compute and miss every deadline); stragglers get the
        plan's stretched time.
        """
        assert self.resilience is not None and self.membership is not None
        plan = self.resilience.plan
        times: Dict[int, float] = {}
        for rank in range(self.world_size):
            if self.membership.is_dead(rank):
                times[rank] = math.inf
            else:
                times[rank] = plan.round_time(rank, base_s, now_s)
        return times

    def _maybe_rejoin(self, base_s: float, now_s: float, epoch: int) -> None:
        """Re-admit evicted workers whose fault window has closed."""
        assert self.resilience is not None
        if not self.resilience.rejoin:
            return
        membership, deadline = self.membership, self.deadline
        assert membership is not None and deadline is not None
        plan = self.resilience.plan
        for rank in range(self.world_size):
            if not membership.is_dead(rank):
                continue
            if plan.round_time(rank, base_s, now_s) > deadline.deadline_s:
                continue  # still crashed or too slow to make the deadline
            # Rejoin protocol: the live workers broadcast the current
            # model so the returning worker resumes from fresh params.
            # Error feedback is bypassed (parameters are not gradients)
            # and the rejoiner's stale residuals are discarded.
            channel = self.hook.channel
            if isinstance(channel, EFChannel):
                channel.drop_worker(rank)
                channel = channel.inner
            broadcast(
                self.model.flat_parameters(),
                self.world_size,
                channel,
                epoch=epoch,
                message_id=self.hook.next_message_id(),
            )
            membership.readmit(rank)
            self._epoch_rejoins += 1

    def _round(self, batches, epoch: int, now_s: float = 0.0) -> float:
        """Forward/backward per worker, aggregate, step.  Returns loss."""
        round_start = time.perf_counter()
        times: Optional[Dict[int, float]] = None
        if self.resilience is not None:
            base_s = self._epoch_round_time().total_s
            self._maybe_rejoin(base_s, now_s, epoch)
            times = self._worker_times(base_s, now_s)
            assert self.deadline is not None
            self.deadline.begin_round(times)
        grads: List[np.ndarray] = []
        losses: List[float] = []
        for rank, (images, labels) in enumerate(batches):
            if times is not None and not math.isfinite(times[rank]):
                # Crashed/evicted workers do no compute; the deadline
                # keeps their placeholder out of the collective.
                grads.append(np.zeros(self.num_coords))
                continue
            self.model.zero_grad()
            loss = cross_entropy(
                self.model(Tensor(images)),
                labels,
                label_smoothing=self.config.label_smoothing,
            )
            loss.backward()
            grads.append(self.model.flat_gradient())
            losses.append(loss.item())
        surrendered_before = self.hook.stats.rounds_surrendered
        # Root of the causal span tree; timed on the *modeled* clock so
        # span JSONL is byte-identical across same-seed runs.
        st = get_span_tracer()
        round_span = st.begin(
            "train.round",
            t=now_s,
            run=self.label,
            epoch=epoch,
            round=self._rounds_run + 1,
        )
        with st.context(round_span):
            aggregated = self.hook.aggregate(grads, epoch=epoch)
        if round_span is not None:
            st.end(
                round_span,
                t=now_s + self._epoch_round_time().total_s,
                surrendered=self.hook.stats.rounds_surrendered - surrendered_before,
            )
        surrendered = self.hook.stats.rounds_surrendered - surrendered_before
        if (
            self.config.freeze_momentum_on_surrender
            and surrendered > 0
            and not np.any(aggregated)
        ):
            # The whole round was lost: freeze parameters AND momentum
            # instead of letting a zero gradient decay the velocity.
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "train.momentum_frozen",
                    run=self.label,
                    epoch=epoch,
                    round=self._rounds_run + 1,
                )
        else:
            self.model.load_flat_gradient(aggregated)
            self.optimizer.step()
        if times is not None:
            self._update_membership(times)
        self._rounds_run += 1
        self._m_rounds.inc()
        round_seconds = time.perf_counter() - round_start
        self._m_round_seconds.observe(round_seconds)
        mean_loss = float(np.mean(losses)) if losses else float("nan")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "train.round",
                duration_s=round_seconds,
                run=self.label,
                epoch=epoch,
                round=self._rounds_run,
                loss=mean_loss,
            )
        return mean_loss

    def _update_membership(self, times: Dict[int, float]) -> None:
        """Feed the detector with this round's outcome per worker."""
        membership, deadline = self.membership, self.deadline
        assert membership is not None and deadline is not None
        evictions_before = membership.evictions
        for rank in deadline.last_stragglers:
            membership.miss(rank)
        for rank in deadline.last_responders:
            membership.observe(rank, times[rank])
        self._epoch_stragglers += len(deadline.last_stragglers)
        self._epoch_evictions += membership.evictions - evictions_before

    def _epoch_round_time(self) -> RoundTime:
        if self.time_model is None:
            return RoundTime(0.0, 0.0, 0.0)
        return self.time_model.round_time(
            self.num_coords,
            codec_name=self.codec_name,
            trim_rate=self.trim_rate,
            drop_rate=self.drop_rate,
            world_size=self.world_size,
        )

    # -- training loop --------------------------------------------------------------

    def train(
        self, epochs: Optional[int] = None, max_rounds: Optional[int] = None
    ) -> TrainingHistory:
        """Run the configured number of epochs; returns the history.

        ``max_rounds`` stops after that many *total* rounds (counting
        any restored from a checkpoint) without recording a partial
        epoch — the crash-at-round-R half of the resume test.  Calling
        :meth:`train` again (or restoring a checkpoint first) continues
        exactly where the run stopped.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        round_time = self._epoch_round_time()
        epoch = self._cur_epoch
        while epoch <= epochs:
            skip = self._skip_rounds
            self._skip_rounds = 0
            if skip == 0:
                # Epoch start: snapshot everything a mid-epoch resume
                # needs to rewind to this exact point.
                self._epoch_loader_states = [ld.state() for ld in self.loaders]
                self._epoch_losses = []
                self._epoch_start_wall = self._wall_clock
                self._epoch_stragglers = 0
                self._epoch_evictions = 0
                self._epoch_rejoins = 0
            diverged = False
            batch_iter = zip(*self.loaders)
            for _ in range(skip):
                # Resume path: loaders were rewound to the epoch start,
                # so replay (and discard) the already-trained rounds to
                # realign every RNG draw.
                if next(batch_iter, None) is None:
                    break
            for batches in batch_iter:
                now_s = (
                    self._epoch_start_wall
                    + len(self._epoch_losses) * round_time.total_s
                )
                loss = self._round(batches, epoch=epoch, now_s=now_s)
                self._epoch_losses.append(loss)
                if not np.isfinite(loss) or loss > self.divergence_loss:
                    diverged = True
                    break
                if max_rounds is not None and self._rounds_run >= max_rounds:
                    return self.history
            rounds_this_epoch = len(self._epoch_losses)
            self._wall_clock = (
                self._epoch_start_wall + rounds_this_epoch * round_time.total_s
            )
            accuracy = evaluate(self.model, self.test_set)
            mean_loss = (
                float(np.mean(self._epoch_losses))
                if self._epoch_losses
                else float("nan")
            )
            self.history.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=mean_loss,
                    top1=accuracy[1],
                    top5=accuracy.get(5, accuracy[1]),
                    round_time=round_time,
                    wall_clock_s=self._wall_clock,
                    trim_fraction=self.hook.stats.trim_fraction,
                    diverged=diverged,
                    stragglers=self._epoch_stragglers,
                    evictions=self._epoch_evictions,
                    rejoins=self._epoch_rejoins,
                )
            )
            self._m_epoch.set(epoch)
            self._m_loss.set(mean_loss)
            self._m_top1.set(accuracy[1])
            self.hook.stats.publish(label=self.label)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "train.epoch",
                    run=self.label,
                    epoch=epoch,
                    loss=mean_loss,
                    top1=accuracy[1],
                    trim_fraction=self.hook.stats.trim_fraction,
                    modeled_wall_clock_s=self._wall_clock,
                    diverged=diverged,
                    stragglers=self._epoch_stragglers,
                    evictions=self._epoch_evictions,
                    rejoins=self._epoch_rejoins,
                )
            self._cur_epoch = epoch + 1
            if diverged:
                break
            self.scheduler.step()
            epoch += 1
        return self.history

    # -- checkpoint / resume ---------------------------------------------------

    def checkpoint(self) -> TrainingCheckpoint:
        """Snapshot the full training state (see :mod:`repro.resilience`)."""
        state_dict = getattr(self.optimizer, "state_dict", None)
        if not callable(state_dict):
            raise TypeError(
                f"{type(self.optimizer).__name__} does not support "
                "state_dict(); checkpointing requires SGD"
            )
        loader_states = self._epoch_loader_states
        if loader_states is None:  # checkpoint before any training
            loader_states = [ld.state() for ld in self.loaders]
        stats = {
            key: value
            for key, value in self.hook.stats.as_dict().items()
            if key != "trim_fraction"  # derived
        }
        ckpt = TrainingCheckpoint(
            label=self.label,
            seed=self.config.seed,
            epoch=self._cur_epoch,
            rounds_run=self._rounds_run,
            rounds_in_epoch=len(self._epoch_losses),
            wall_clock_s=self._epoch_start_wall,
            epoch_losses=list(self._epoch_losses),
            model_flat=self.model.flat_parameters().tolist(),
            optimizer=state_dict(),
            scheduler_epoch=self.scheduler.epoch,
            loader_states=[dict(s) for s in loader_states],
            message_counter=self.hook._message_counter,
            channel_stats=stats,
            history=self.history.as_dicts(),
            epoch_stragglers=self._epoch_stragglers,
            epoch_evictions=self._epoch_evictions,
            epoch_rejoins=self._epoch_rejoins,
        )
        if self.deadline is not None:
            ckpt.deadline = self.deadline.state_dict()
        if self.membership is not None:
            ckpt.membership = self.membership.state_dict()
        if isinstance(self.hook.channel, EFChannel):
            ckpt.ef = self.hook.channel.state_dict()
        return ckpt

    def restore(self, ckpt: TrainingCheckpoint) -> None:
        """Load a checkpoint; the next :meth:`train` continues the run.

        Restores parameters, momentum, scheduler, loader RNGs (rewound
        to the epoch start — :meth:`train` replays the finished rounds),
        all counters, and the resilience state, so the continued run is
        byte-identical to one that never stopped.
        """
        if ckpt.label != self.label:
            raise ValueError(f"checkpoint is for {ckpt.label!r}, not {self.label!r}")
        if ckpt.seed != self.config.seed:
            raise ValueError(
                f"checkpoint seed {ckpt.seed} != config seed {self.config.seed}"
            )
        if len(ckpt.loader_states) != len(self.loaders):
            raise ValueError(
                f"checkpoint has {len(ckpt.loader_states)} loaders, "
                f"trainer has {len(self.loaders)}"
            )
        self.model.load_flat_parameters(
            np.asarray(ckpt.model_flat, dtype=np.float64)
        )
        self.optimizer.load_state_dict(ckpt.optimizer)
        self.scheduler.set_epoch(ckpt.scheduler_epoch)
        for loader, state in zip(self.loaders, ckpt.loader_states):
            loader.set_state(state)
        self._epoch_loader_states = [dict(s) for s in ckpt.loader_states]
        self.hook._message_counter = ckpt.message_counter
        stats = self.hook.stats
        for key, value in ckpt.channel_stats.items():
            if not hasattr(stats, key):
                raise ValueError(f"unknown channel stat {key!r}")
            setattr(stats, key, value)
        self.history = TrainingHistory(self.label)
        for record in ckpt.history:
            self.history.append(EpochRecord.from_dict(record))
        self._rounds_run = ckpt.rounds_run
        self._cur_epoch = ckpt.epoch
        self._epoch_losses = list(ckpt.epoch_losses)
        self._epoch_start_wall = ckpt.wall_clock_s
        self._wall_clock = ckpt.wall_clock_s
        self._skip_rounds = ckpt.rounds_in_epoch
        self._epoch_stragglers = ckpt.epoch_stragglers
        self._epoch_evictions = ckpt.epoch_evictions
        self._epoch_rejoins = ckpt.epoch_rejoins
        if self.deadline is not None and ckpt.deadline:
            self.deadline.load_state_dict(ckpt.deadline)
        if self.membership is not None and ckpt.membership:
            self.membership.load_state_dict(ckpt.membership)
        if isinstance(self.hook.channel, EFChannel) and ckpt.ef:
            self.hook.channel.load_state_dict(ckpt.ef)
