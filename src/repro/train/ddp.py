"""Distributed data-parallel training with pluggable gradient channels.

The experiment engine behind Figures 3 and 4.  Faithful to the paper's
methodology: hold every hyper-parameter fixed ("SGD with momentum 0.9,
initial learning rate 1e-3 with StepLR, cross-entropy, batch size 64,
data augmentation") and vary only how gradients are aggregated between
workers — baseline, or a trimmable codec at some trim rate.

Implementation note: because synchronous DDP keeps all replicas
bit-identical (same aggregated gradient, same optimizer state), we hold
*one* model and run the per-worker forward/backward passes sequentially
on each worker's shard — mathematically identical to N replicas at 1/N
memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..collectives.hooks import AllReduceHook, CommHook
from ..nn.data import DataLoader, SyntheticImages
from ..nn.functional import cross_entropy
from ..nn.layers import Module
from ..nn.metrics import evaluate
from ..nn.optim import SGD, StepLR
from ..nn.tensor import Tensor
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .timing import RoundTime, RoundTimeModel

__all__ = ["TrainConfig", "EpochRecord", "TrainingHistory", "DDPTrainer", "shard_dataset"]


@dataclass
class TrainConfig:
    """Hyper-parameters, defaulting to the paper's recipe (footnote 4)."""

    epochs: int = 20
    batch_size: int = 64
    lr: float = 1e-3
    momentum: float = 0.9
    weight_decay: float = 0.0
    step_size: int = 50
    gamma: float = 0.1
    label_smoothing: float = 0.0
    augment: bool = True
    seed: int = 0


@dataclass
class EpochRecord:
    """One epoch's results: quality, modeled wall-clock, channel stats."""

    epoch: int
    train_loss: float
    top1: float
    top5: float
    round_time: RoundTime
    wall_clock_s: float  # cumulative modeled time at epoch end
    trim_fraction: float
    diverged: bool = False


class TrainingHistory:
    """Per-epoch records plus the Figure 3/4 query helpers."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.records: List[EpochRecord] = []

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def final_top1(self) -> float:
        return self.records[-1].top1 if self.records else 0.0

    @property
    def final_top5(self) -> float:
        return self.records[-1].top5 if self.records else 0.0

    @property
    def best_top1(self) -> float:
        return max((r.top1 for r in self.records), default=0.0)

    @property
    def diverged(self) -> bool:
        return any(r.diverged for r in self.records)

    def accuracy_curve(self) -> List[tuple[float, float]]:
        """(wall_clock_s, top1) series — one Figure 3 line."""
        return [(r.wall_clock_s, r.top1) for r in self.records]

    def time_to_accuracy(self, target_top1: float) -> Optional[float]:
        """Modeled seconds until top-1 first reaches ``target`` (Fig. 4)."""
        for record in self.records:
            if record.top1 >= target_top1:
                return record.wall_clock_s
        return None

    def total_time(self) -> float:
        return self.records[-1].wall_clock_s if self.records else 0.0


def shard_dataset(dataset: SyntheticImages, world_size: int) -> List[SyntheticImages]:
    """Round-robin split, the DistributedSampler equivalent."""
    if world_size < 1:
        raise ValueError("world_size must be at least 1")
    shards = []
    for rank in range(world_size):
        shards.append(
            SyntheticImages(
                images=dataset.images[rank::world_size],
                labels=dataset.labels[rank::world_size],
            )
        )
    return shards


class DDPTrainer:
    """Synchronous data-parallel training through a gradient hook.

    Args:
        model: the network (single copy; see module docstring).
        train_set / test_set: dataset splits.
        world_size: number of simulated workers.
        hook: gradient aggregation hook (None = perfect all-reduce).
        config: hyper-parameters.
        time_model: wall-clock cost model (None = count no time).
        codec_name: codec label for the time model (None = baseline).
        trim_rate / drop_rate: congestion levels for the time model.
        divergence_loss: abort threshold — training whose epoch loss
            exceeds this (or goes NaN) is flagged diverged, like the
            sign codec at >= 2 % trim in the paper.
        optimizer_factory: callable mapping the parameter list to an
            optimizer (default: the paper's SGD+momentum from config) —
            used by the optimizer-sensitivity ablation.
    """

    def __init__(
        self,
        model: Module,
        train_set: SyntheticImages,
        test_set: SyntheticImages,
        world_size: int = 2,
        hook: Optional[CommHook] = None,
        config: Optional[TrainConfig] = None,
        time_model: Optional[RoundTimeModel] = None,
        codec_name: Optional[str] = None,
        trim_rate: float = 0.0,
        drop_rate: float = 0.0,
        divergence_loss: float = 50.0,
        label: Optional[str] = None,
        optimizer_factory=None,
    ) -> None:
        self.model = model
        self.test_set = test_set
        self.world_size = world_size
        self.hook = hook or AllReduceHook()
        self.config = config or TrainConfig()
        self.time_model = time_model
        self.codec_name = codec_name
        self.trim_rate = trim_rate
        self.drop_rate = drop_rate
        self.divergence_loss = divergence_loss
        self.label = label or (codec_name or "baseline")

        cfg = self.config
        if optimizer_factory is not None:
            self.optimizer = optimizer_factory(model.parameters())
        else:
            self.optimizer = SGD(
                model.parameters(),
                lr=cfg.lr,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
            )
        self.scheduler = StepLR(self.optimizer, step_size=cfg.step_size, gamma=cfg.gamma)
        self.loaders = [
            DataLoader(
                shard,
                batch_size=cfg.batch_size,
                shuffle=True,
                augment=cfg.augment,
                seed=cfg.seed + rank,
            )
            for rank, shard in enumerate(shard_dataset(train_set, world_size))
        ]
        self.num_coords = model.num_parameters()
        self.history = TrainingHistory(self.label)
        self._rounds_run = 0
        registry = get_registry()
        self._m_rounds = registry.counter(
            "repro_train_rounds_total", "synchronous rounds completed", ("run",)
        ).bind(run=self.label)
        self._m_round_seconds = registry.histogram(
            "repro_train_round_seconds",
            "wall time of one synchronous round (compute + aggregate)",
            ("run",),
        ).bind(run=self.label)
        self._m_epoch = registry.gauge(
            "repro_train_epoch", "last completed epoch", ("run",)
        ).bind(run=self.label)
        self._m_loss = registry.gauge(
            "repro_train_loss", "mean train loss of the last epoch", ("run",)
        ).bind(run=self.label)
        self._m_top1 = registry.gauge(
            "repro_train_top1", "test top-1 after the last epoch", ("run",)
        ).bind(run=self.label)

    # -- one synchronous round -------------------------------------------------

    def _round(self, batches, epoch: int) -> float:
        """Forward/backward per worker, aggregate, step.  Returns loss."""
        round_start = time.perf_counter()
        grads: List[np.ndarray] = []
        losses: List[float] = []
        for images, labels in batches:
            self.model.zero_grad()
            loss = cross_entropy(
                self.model(Tensor(images)),
                labels,
                label_smoothing=self.config.label_smoothing,
            )
            loss.backward()
            grads.append(self.model.flat_gradient())
            losses.append(loss.item())
        aggregated = self.hook.aggregate(grads, epoch=epoch)
        self.model.load_flat_gradient(aggregated)
        self.optimizer.step()
        self._rounds_run += 1
        self._m_rounds.inc()
        round_seconds = time.perf_counter() - round_start
        self._m_round_seconds.observe(round_seconds)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "train.round",
                duration_s=round_seconds,
                run=self.label,
                epoch=epoch,
                round=self._rounds_run,
                loss=float(np.mean(losses)),
            )
        return float(np.mean(losses))

    def _epoch_round_time(self) -> RoundTime:
        if self.time_model is None:
            return RoundTime(0.0, 0.0, 0.0)
        return self.time_model.round_time(
            self.num_coords,
            codec_name=self.codec_name,
            trim_rate=self.trim_rate,
            drop_rate=self.drop_rate,
            world_size=self.world_size,
        )

    # -- training loop --------------------------------------------------------------

    def train(self, epochs: Optional[int] = None) -> TrainingHistory:
        """Run the configured number of epochs; returns the history."""
        epochs = epochs if epochs is not None else self.config.epochs
        round_time = self._epoch_round_time()
        wall_clock = 0.0
        for epoch in range(1, epochs + 1):
            epoch_losses: List[float] = []
            diverged = False
            for batches in zip(*self.loaders):
                loss = self._round(batches, epoch=epoch)
                epoch_losses.append(loss)
                if not np.isfinite(loss) or loss > self.divergence_loss:
                    diverged = True
                    break
            rounds_this_epoch = len(epoch_losses)
            wall_clock += rounds_this_epoch * round_time.total_s
            accuracy = evaluate(self.model, self.test_set)
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
            self.history.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=mean_loss,
                    top1=accuracy[1],
                    top5=accuracy.get(5, accuracy[1]),
                    round_time=round_time,
                    wall_clock_s=wall_clock,
                    trim_fraction=self.hook.stats.trim_fraction,
                    diverged=diverged,
                )
            )
            self._m_epoch.set(epoch)
            self._m_loss.set(mean_loss)
            self._m_top1.set(accuracy[1])
            self.hook.stats.publish(label=self.label)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "train.epoch",
                    run=self.label,
                    epoch=epoch,
                    loss=mean_loss,
                    top1=accuracy[1],
                    trim_fraction=self.hook.stats.trim_fraction,
                    modeled_wall_clock_s=wall_clock,
                    diverged=diverged,
                )
            if diverged:
                break
            self.scheduler.step()
        return self.history
