"""Fully Sharded Data Parallel with trimmable weight gathering (§5.5).

The paper conjectures that trimmable packets help FSDP too: weight
*gathers* dominate FSDP traffic, and "a small fraction of imperfection
in copied weights has limited impact on training quality".

:class:`FSDPTrainer` implements the sharded loop on the numpy substrate:

1. model parameters are sharded evenly across workers;
2. before each worker's forward pass, the full flat parameter vector is
   **all-gathered** — every remote shard crosses the gradient channel
   (and may arrive trimmed/quantized);
3. gradients are **reduce-scattered** back through the channel;
4. each worker updates only its own shard (exactly, locally).

Like the DDP trainer we exploit replica equivalence to hold one model:
each worker's forward runs with its own (imperfect) gathered weights.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..collectives.channel import GradientChannel, PerfectChannel
from ..nn.data import DataLoader, SyntheticImages
from ..nn.functional import cross_entropy
from ..nn.layers import Module
from ..nn.metrics import evaluate
from ..nn.tensor import Tensor
from .ddp import TrainConfig, shard_dataset

__all__ = ["FSDPTrainer"]


class FSDPTrainer:
    """Sharded-weights trainer with channel-mediated gathers.

    Args:
        model: the network (holds the authoritative full parameters).
        train_set / test_set: data.
        world_size: number of shards/workers.
        gather_channel: channel the weight all-gather crosses (trimmable).
        grad_channel: channel the gradient reduce-scatter crosses.
        config: hyper-parameters (SGD without momentum for shard locality).
    """

    def __init__(
        self,
        model: Module,
        train_set: SyntheticImages,
        test_set: SyntheticImages,
        world_size: int = 2,
        gather_channel: Optional[GradientChannel] = None,
        grad_channel: Optional[GradientChannel] = None,
        config: Optional[TrainConfig] = None,
    ) -> None:
        self.model = model
        self.test_set = test_set
        self.world_size = world_size
        self.gather_channel = gather_channel or PerfectChannel()
        self.grad_channel = grad_channel or PerfectChannel()
        self.config = config or TrainConfig()
        cfg = self.config
        self.loaders = [
            DataLoader(
                shard,
                batch_size=cfg.batch_size,
                shuffle=True,
                augment=cfg.augment,
                seed=cfg.seed + rank,
            )
            for rank, shard in enumerate(shard_dataset(train_set, world_size))
        ]
        flat = model.flat_parameters()
        self._bounds = np.linspace(0, flat.size, world_size + 1).astype(int)
        self._message_counter = 0

    def _shards(self, flat: np.ndarray) -> List[np.ndarray]:
        return [
            flat[self._bounds[r] : self._bounds[r + 1]] for r in range(self.world_size)
        ]

    def _gathered_params(self, epoch: int, receiver: int) -> np.ndarray:
        """Receiver's view of the full weights: remote shards may degrade."""
        flat = self.model.flat_parameters()
        parts = []
        for sender, shard in enumerate(self._shards(flat)):
            if sender == receiver:
                parts.append(shard)
            else:
                parts.append(
                    self.gather_channel.transfer(
                        shard,
                        epoch=epoch,
                        message_id=self._message_counter * 100 + sender,
                        worker=sender * self.world_size + receiver,
                    )
                )
        return np.concatenate(parts)

    def _round(self, batches, epoch: int) -> float:
        """One synchronous FSDP round.  Returns the mean worker loss."""
        self._message_counter += 1
        authoritative = self.model.flat_parameters()
        worker_grads: List[np.ndarray] = []
        losses: List[float] = []
        for rank, (images, labels) in enumerate(batches):
            # All-gather (possibly trimmed) weights for this worker.
            self.model.load_flat_parameters(self._gathered_params(epoch, rank))
            self.model.zero_grad()
            loss = cross_entropy(self.model(Tensor(images)), labels)
            loss.backward()
            worker_grads.append(self.model.flat_gradient())
            losses.append(loss.item())
            # Restore the authoritative weights before the next worker.
            self.model.load_flat_parameters(authoritative)
        # Reduce-scatter gradients: each shard owner gets its mean chunk.
        new_flat = authoritative.copy()
        for owner in range(self.world_size):
            lo, hi = self._bounds[owner], self._bounds[owner + 1]
            acc = np.zeros(hi - lo)
            for sender, grad in enumerate(worker_grads):
                chunk = grad[lo:hi]
                if sender == owner:
                    acc += chunk
                else:
                    acc += self.grad_channel.transfer(
                        chunk,
                        epoch=epoch,
                        message_id=self._message_counter * 100 + 50 + sender,
                        worker=sender * self.world_size + owner,
                    )
            mean_grad = acc / self.world_size
            new_flat[lo:hi] -= self.config.lr * mean_grad
        self.model.load_flat_parameters(new_flat)
        return float(np.mean(losses))

    def train(self, epochs: Optional[int] = None) -> List[dict]:
        """Run epochs; returns per-epoch dicts (loss, top1, top5)."""
        epochs = epochs if epochs is not None else self.config.epochs
        history: List[dict] = []
        for epoch in range(1, epochs + 1):
            losses = [self._round(batches, epoch) for batches in zip(*self.loaders)]
            accuracy = evaluate(self.model, self.test_set)
            history.append(
                {
                    "epoch": epoch,
                    "train_loss": float(np.mean(losses)),
                    "top1": accuracy[1],
                    "top5": accuracy.get(5, accuracy[1]),
                }
            )
        return history
