"""Bernoulli packet-trim channel — the paper's congestion emulation.

The authors could not change NCCL's wire format, so their evaluation
"simulate[s] the effect of congestion using pre-set random probabilistic
dropping/trimming": each gradient packet is independently trimmed with a
fixed probability, and trimmed coordinates are replaced by their decoded
quantized value.  :class:`TrimChannel` reproduces that exactly on top of
the real codecs: encode → per-packet Bernoulli trim → decode, with
wall-clock encode/decode timing captured for the Figure 5 breakdown, and
an optional Section 5.4 transcript for record/replay.

:class:`BaselineDropChannel` models the unmodified-NCCL baseline: data
always arrives bit-exact (reliability), but drops are counted so the
timing model can charge the retransmission stalls of Section 4.4.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..collectives.channel import GradientChannel
from ..core.codec import GradientCodec
from ..core.layout import coords_per_packet
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..packet.header import GRADIENT_HEADER_BYTES, WIRE_HEADER_BYTES
from ..transforms.prng import shared_generator
from .replay import TrimTranscript

__all__ = ["TrimChannel", "BaselineDropChannel"]


class TrimChannel(GradientChannel):
    """Codec + per-packet Bernoulli trimming.

    Args:
        codec: any registered :class:`GradientCodec` (sign/sq/sd/rht).
        trim_rate: probability each data packet is trimmed to its heads.
        drop_rate: probability each data packet is *lost outright* —
            its coordinates arrive as missing, the fault-injection
            analogue of an unrecovered corruption.  A message that loses
            every packet surrenders the round: the channel returns a
            zero gradient and counts ``stats.rounds_surrendered``.
        mtu: packet size used to derive coordinates-per-packet.
        seed: trim-pattern seed (independent of the codec's seed).
        record: transcript to append trim decisions to (Section 5.4).
        replay: transcript to *read* trim decisions from instead of
            drawing random ones — reproduces a previous run exactly.
    """

    def __init__(
        self,
        codec: GradientCodec,
        trim_rate: float,
        drop_rate: float = 0.0,
        mtu: int = 1500,
        seed: int = 0,
        record: Optional[TrimTranscript] = None,
        replay: Optional[TrimTranscript] = None,
    ) -> None:
        super().__init__()
        if not 0.0 <= trim_rate <= 1.0:
            raise ValueError(f"trim_rate must be in [0, 1], got {trim_rate}")
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        if record is not None and replay is not None:
            raise ValueError("cannot record and replay the same run")
        self.codec = codec
        self.trim_rate = trim_rate
        self.drop_rate = drop_rate
        self.mtu = mtu
        self.seed = seed
        self.record = record
        self.replay = replay
        self.coords_per_pkt = coords_per_packet(mtu, codec.head_bits, codec.tail_bits)
        # Wire sizes for byte accounting (per full/trimmed data packet).
        full_bits = (codec.head_bits + codec.tail_bits) * self.coords_per_pkt
        head_bits = codec.head_bits * self.coords_per_pkt
        self._full_packet_bytes = WIRE_HEADER_BYTES + GRADIENT_HEADER_BYTES + (
            -(-full_bits // 8)
        )
        self._trimmed_packet_bytes = WIRE_HEADER_BYTES + GRADIENT_HEADER_BYTES + (
            -(-head_bits // 8)
        )
        registry = get_registry()
        codec_name = type(codec).__name__
        self._m_encode_seconds = registry.histogram(
            "repro_encode_seconds", "wall time of one codec encode", ("codec",)
        ).bind(codec=codec_name)
        self._m_decode_seconds = registry.histogram(
            "repro_decode_seconds", "wall time of one codec decode", ("codec",)
        ).bind(codec=codec_name)
        self._codec_label = codec_name

    def _trim_mask(
        self, num_packets: int, epoch: int, message_id: int, worker: int
    ) -> np.ndarray:
        if self.replay is not None:
            indices = self.replay.lookup(epoch, message_id, worker)
            mask = np.zeros(num_packets, dtype=bool)
            mask[np.asarray(indices, dtype=int)] = True
            return mask
        gen = shared_generator(
            self.seed * 1_000_003 + worker, epoch, message_id, purpose="trim"
        )
        mask = gen.random(num_packets) < self.trim_rate
        if self.record is not None:
            self.record.record(epoch, message_id, worker, np.flatnonzero(mask).tolist())
        return mask

    def transfer(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0, worker: int = 0
    ) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.float64)

        t0 = time.perf_counter()
        enc = self.codec.encode(flat, epoch=epoch, message_id=message_id)
        t1 = time.perf_counter()

        num_packets = -(-enc.length // self.coords_per_pkt)
        packet_mask = self._trim_mask(num_packets, epoch, message_id, worker)
        drop_mask = np.zeros(num_packets, dtype=bool)
        if self.drop_rate > 0.0:
            # An independent stream (purpose="fault") so adding drops
            # never perturbs an existing trim pattern or a replay.
            drop_gen = shared_generator(
                self.seed * 1_000_003 + worker, epoch, message_id, purpose="fault"
            )
            drop_mask = drop_gen.random(num_packets) < self.drop_rate
            packet_mask = packet_mask & ~drop_mask
        coord_mask = np.repeat(packet_mask, self.coords_per_pkt)[: enc.length]
        missing_mask = np.repeat(drop_mask, self.coords_per_pkt)[: enc.length]
        dropped_count = int(drop_mask.sum())

        if dropped_count == num_packets:
            # Nothing survived the wire: surrender the round with a zero
            # gradient instead of decoding garbage or hanging.
            self.stats.messages += 1
            self.stats.coordinates += flat.size
            self.stats.packets_total += num_packets
            self.count_dropped(dropped_count)
            self.stats.bytes_sent += num_packets * self._full_packet_bytes
            self.count_surrender()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "channel.degraded_step",
                    epoch=epoch,
                    message_id=message_id,
                    worker=worker,
                    reason="all packets dropped",
                )
            return np.zeros_like(flat)

        t2 = time.perf_counter()
        decoded = self.codec.decode(
            enc,
            trimmed=coord_mask,
            missing=missing_mask if dropped_count else None,
        )
        t3 = time.perf_counter()

        trimmed_count = int(packet_mask.sum())
        self.stats.messages += 1
        self.stats.coordinates += flat.size
        self.stats.packets_total += num_packets
        self.stats.packets_trimmed += trimmed_count
        self.count_dropped(dropped_count)
        # Dropped packets were transmitted at full size before they died.
        self.stats.bytes_sent += (
            (num_packets - trimmed_count - dropped_count) * self._full_packet_bytes
            + trimmed_count * self._trimmed_packet_bytes
            + dropped_count * self._full_packet_bytes
        )
        self.stats.bytes_saved_by_trim += trimmed_count * (
            self._full_packet_bytes - self._trimmed_packet_bytes
        )
        self.stats.encode_seconds += t1 - t0
        self.stats.decode_seconds += t3 - t2
        self._m_encode_seconds.observe(t1 - t0)
        self._m_decode_seconds.observe(t3 - t2)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "encode",
                duration_s=t1 - t0,
                codec=self._codec_label,
                coords=int(flat.size),
                epoch=epoch,
                message_id=message_id,
                worker=worker,
            )
            from ..core.codec import nmse

            tracer.event(
                "decode",
                duration_s=t3 - t2,
                codec=self._codec_label,
                coords=int(flat.size),
                epoch=epoch,
                message_id=message_id,
                worker=worker,
                packets_trimmed=trimmed_count,
                packets_total=num_packets,
                nmse=float(nmse(flat, decoded)),
            )
        return decoded


class BaselineDropChannel(GradientChannel):
    """Unmodified-NCCL baseline: bit-exact delivery, drops cost time.

    A reliable transport retransmits every dropped packet, so the
    *values* are unaffected; the damage is pure latency.  The channel
    counts Bernoulli drops so :class:`repro.train.timing.RoundTimeModel`
    can convert them into the go-back-N stalls of Section 4.4.
    """

    def __init__(self, drop_rate: float = 0.0, mtu: int = 1500, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        self.drop_rate = drop_rate
        self.mtu = mtu
        self.seed = seed
        self._payload_bytes = mtu - WIRE_HEADER_BYTES

    def transfer(
        self, flat: np.ndarray, *, epoch: int = 0, message_id: int = 0, worker: int = 0
    ) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.float64)
        num_packets = -(-flat.size * 4 // self._payload_bytes)
        gen = shared_generator(
            self.seed * 1_000_003 + worker, epoch, message_id, purpose="trim"
        )
        dropped = int((gen.random(num_packets) < self.drop_rate).sum())
        self.stats.messages += 1
        self.stats.coordinates += flat.size
        self.stats.packets_total += num_packets
        self.count_dropped(dropped)
        # Retransmissions put the dropped packets on the wire again.
        self.stats.bytes_sent += (num_packets + dropped) * self.mtu
        return flat.copy()
