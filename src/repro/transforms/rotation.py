"""Randomized Hadamard Transform (RHT) and its inverse.

The RHT rotates a vector ``x`` by ``R_s(x) = H D_s x`` where ``H`` is the
orthonormal Hadamard matrix and ``D_s`` a diagonal of i.i.d. random signs
drawn from seed ``s``.  After the rotation the coordinates are
approximately i.i.d. zero-mean Gaussian regardless of the input's shape,
which is what makes 1-bit (sign) quantization accurate (DRIVE, the basis
of the paper's Section 3.2 codec).

Because both ``H`` and ``D_s`` are involutions up to transposition, the
inverse is simply ``R_s^{-1}(y) = D_s H y`` — the receiver only needs the
seed ``s``, which the paper derives from (epoch, message id) on every
worker (see :mod:`repro.transforms.prng`).

Vectors whose length is not a power of two are zero-padded; the padded
length travels with the metadata so the receiver can truncate.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .hadamard import fwht_inplace, is_power_of_two, next_power_of_two
from .prng import shared_generator

__all__ = ["random_signs", "rht", "irht", "RotatedRows", "rotate_rows", "unrotate_rows"]


@lru_cache(maxsize=64)
def _cached_signs(d: int, seed: int) -> np.ndarray:
    """Frozen ±1 diagonal for ``(d, seed)``.

    Encode and decode of the same message rebuild the identical diagonal
    from the shared seed; caching it (read-only, so a hit can be used
    in-place safely) halves the PRNG work per round trip and serves
    repeated decodes (e.g. an all-reduce fan-in) for free.
    """
    gen = shared_generator(seed, purpose="rotation")
    signs = gen.integers(0, 2, size=d).astype(np.float64) * 2.0 - 1.0
    signs.setflags(write=False)
    return signs


def random_signs(d: int, seed: int) -> np.ndarray:
    """Deterministic ±1 diagonal of length ``d`` for seed ``seed``.

    The returned array is cached and marked read-only; copy before
    mutating.
    """
    return _cached_signs(d, seed)


def rht(x: np.ndarray, seed: int) -> np.ndarray:
    """Apply the randomized Hadamard rotation along the last axis.

    The last dimension must be a power of two (callers pad first; see
    :func:`rotate_rows` for the padding version).
    """
    d = x.shape[-1]
    if not is_power_of_two(d):
        raise ValueError(f"RHT length must be a power of two, got {d}")
    signs = random_signs(d, seed)
    out = np.asarray(x, dtype=np.float64) * signs
    return fwht_inplace(out)


def irht(y: np.ndarray, seed: int) -> np.ndarray:
    """Invert :func:`rht` (same seed)."""
    d = y.shape[-1]
    if not is_power_of_two(d):
        raise ValueError(f"IRHT length must be a power of two, got {d}")
    signs = random_signs(d, seed)
    out = np.array(y, dtype=np.float64, copy=True)
    fwht_inplace(out)
    out *= signs
    return out


@dataclass(frozen=True)
class RotatedRows:
    """A gradient blob rotated row-by-row.

    Attributes:
        rows: 2-D array (num_rows, row_size) of rotated coordinates.
        original_length: length of the flat input before padding.
        row_size: power-of-two row width used for the per-row transform.
        seed: rotation seed shared by sender and receiver.
    """

    rows: np.ndarray
    original_length: int
    row_size: int
    seed: int


def rotate_rows(flat: np.ndarray, row_size: int, seed: int) -> RotatedRows:
    """Split ``flat`` into rows of ``row_size`` and RHT each row.

    This is the paper's key RHT optimization (Section 3.2): rather than
    rotating the whole 25 MB message, split it into rows of e.g. 2^15
    entries that fit in GPU L1, and rotate rows independently (and, on a
    GPU, in parallel — here, in one batched numpy call).

    The final partial row is zero-padded to ``row_size``.
    """
    flat = np.asarray(flat, dtype=np.float64).reshape(-1)
    n = flat.size
    if n == 0:
        raise ValueError("cannot rotate an empty vector")
    width, num_rows = _row_plan(n, row_size)
    padded = np.zeros(num_rows * width, dtype=np.float64)
    padded[:n] = flat
    rows = padded.reshape(num_rows, width)
    rotated = rht(rows, seed)
    return RotatedRows(rows=rotated, original_length=n, row_size=width, seed=seed)


@lru_cache(maxsize=256)
def _row_plan(n: int, row_size: int) -> tuple[int, int]:
    """Cached (row width, row count) plan for an ``n``-coordinate blob.

    Short blobs use a single row padded to the next power of two, so tiny
    layers do not pay for a full ``row_size`` transform.  The plan is
    recomputed every step for every layer of the model, hence the cache.
    """
    if not is_power_of_two(row_size):
        raise ValueError(f"row_size must be a power of two, got {row_size}")
    if n < row_size:
        return next_power_of_two(n), 1
    return row_size, -(-n // row_size)  # ceil division


def unrotate_rows(rotated: RotatedRows) -> np.ndarray:
    """Invert :func:`rotate_rows`, returning the flat vector (unpadded)."""
    rows = irht(rotated.rows, rotated.seed)
    return rows.reshape(-1)[: rotated.original_length]
