"""Math substrate: fast Hadamard transforms and shared-randomness streams."""

from .hadamard import (
    fwht,
    fwht_inplace,
    hadamard_matrix,
    is_power_of_two,
    next_power_of_two,
)
from .prng import StreamKey, derive_seed, purposes, shared_generator
from .rotation import RotatedRows, irht, random_signs, rht, rotate_rows, unrotate_rows

__all__ = [
    "fwht",
    "fwht_inplace",
    "hadamard_matrix",
    "is_power_of_two",
    "next_power_of_two",
    "StreamKey",
    "derive_seed",
    "purposes",
    "shared_generator",
    "RotatedRows",
    "irht",
    "random_signs",
    "rht",
    "rotate_rows",
    "unrotate_rows",
]
