"""Fast Walsh-Hadamard transform (FWHT).

The paper's RHT codec (Section 3.2) uses the ``fast-hadamard-transform``
CUDA kernel; this module is the numpy substitute.  The transform is the
classic in-place butterfly: for a vector of length ``d = 2**k`` it runs in
``O(d log d)`` and is fully vectorized over a batch of rows, which plays
the role of GPU parallelism (each row fits the GPU L1 working set in the
paper; here each row is one numpy slice).

We use the *orthonormal* convention ``H_d = H / sqrt(d)`` where ``H`` is
the {+1,-1} Hadamard matrix, so the transform is an involution:
``fwht(fwht(x)) == x`` and norms are preserved.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_power_of_two",
    "next_power_of_two",
    "fwht",
    "fwht_inplace",
    "hadamard_matrix",
]


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (n must be positive)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return 1 << (n - 1).bit_length()


def fwht_inplace(x: np.ndarray) -> np.ndarray:
    """In-place orthonormal FWHT along the last axis.

    Args:
        x: float array whose last dimension is a power of two.  Modified
            in place and also returned for convenience.

    Returns:
        The same array, transformed.
    """
    d = x.shape[-1]
    if not is_power_of_two(d):
        raise ValueError(f"last dimension must be a power of two, got {d}")
    h = 1
    # Standard iterative butterfly.  Each pass combines pairs of blocks of
    # width h; numpy slicing vectorizes over all rows and blocks at once.
    while h < d:
        shaped = x.reshape(*x.shape[:-1], d // (2 * h), 2, h)
        a = shaped[..., 0, :].copy()
        b = shaped[..., 1, :]
        shaped[..., 0, :] = a + b
        shaped[..., 1, :] = a - b
        h *= 2
    x *= 1.0 / np.sqrt(d)
    return x


def fwht(x: np.ndarray) -> np.ndarray:
    """Orthonormal FWHT along the last axis (returns a new array).

    Works on any float dtype; integer inputs are promoted to float64.
    """
    out = np.array(x, dtype=np.result_type(x.dtype, np.float32), copy=True)
    return fwht_inplace(out)


def hadamard_matrix(d: int) -> np.ndarray:
    """Dense orthonormal Hadamard matrix of size ``d`` (power of two).

    Only used by tests and documentation examples — the transform itself
    never materializes the matrix.
    """
    if not is_power_of_two(d):
        raise ValueError(f"d must be a power of two, got {d}")
    h = np.array([[1.0]])
    while h.shape[0] < d:
        h = np.block([[h, h], [h, -h]])
    return h / np.sqrt(d)
