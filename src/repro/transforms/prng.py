"""Shared-randomness pseudo-random streams.

Subtractive dithering (SD) and the Randomized Hadamard Transform (RHT)
both rely on the sender and the receiver drawing *identical* random values
without communicating them.  The paper (Section 4) achieves this by calling
``torch.cuda.manual_seed`` with a combination of the training epoch number
and the collective-communication message id on every worker.

This module provides the equivalent facility for the numpy substrate: a
deterministic mapping from a structured key — ``(root_seed, epoch,
message_id, purpose)`` — to an independent ``numpy.random.Generator``.
The mapping is counter-based (Philox under the hood via ``SeedSequence``),
so any party that knows the key can regenerate the stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Distinct sub-stream purposes.  Using disjoint integers (rather than
# hashing strings) keeps the seed derivation portable and reproducible
# across Python versions and processes.
_PURPOSES = {
    "dither": 1,
    "rotation": 2,
    "quantize": 3,
    "trim": 4,
    "data": 5,
    "init": 6,
    "crosstraffic": 7,
    "fault": 8,
    "ecmp": 9,
    "campaign": 10,
}


@dataclass(frozen=True)
class StreamKey:
    """Identifies one shared pseudo-random stream.

    Attributes:
        root_seed: experiment-wide seed, agreed out of band.
        epoch: training epoch (or any coarse round counter).
        message_id: collective-communication message id within the epoch.
        purpose: one of ``purposes()`` — keeps e.g. dither and rotation
            streams independent even for the same message.
    """

    root_seed: int
    epoch: int = 0
    message_id: int = 0
    purpose: str = "dither"

    def __post_init__(self) -> None:
        if self.purpose not in _PURPOSES:
            raise ValueError(
                f"unknown purpose {self.purpose!r}; expected one of {sorted(_PURPOSES)}"
            )

    def spawn(self) -> np.random.Generator:
        """Create the generator for this key (identical on all parties)."""
        seq = np.random.SeedSequence(
            entropy=self.root_seed,
            spawn_key=(self.epoch, self.message_id, _PURPOSES[self.purpose]),
        )
        return np.random.Generator(np.random.Philox(seq))


def purposes() -> list[str]:
    """Names of the available independent sub-streams."""
    return sorted(_PURPOSES)


def shared_generator(
    root_seed: int, epoch: int = 0, message_id: int = 0, purpose: str = "dither"
) -> np.random.Generator:
    """Convenience wrapper: build the generator for a :class:`StreamKey`."""
    return StreamKey(root_seed, epoch, message_id, purpose).spawn()


def derive_seed(
    root_seed: int, epoch: int = 0, message_id: int = 0, purpose: str = "rotation"
) -> int:
    """Derive a single 63-bit integer seed from a stream key.

    Useful where an API takes a plain integer seed (e.g. the packetizer
    header carries the rotation seed so a late-joining receiver can decode).
    """
    gen = shared_generator(root_seed, epoch, message_id, purpose)
    return int(gen.integers(0, 2**63 - 1))
