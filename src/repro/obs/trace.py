"""Span-based tracing of the gradient path.

One gradient's journey — encode → packetize → switch enqueue/trim/drop
→ transport delivery → decode — becomes a stream of structured
:class:`TraceEvent` records carrying both clocks that matter here:

* ``sim_time`` — the discrete-event simulator's clock, for events that
  happen *inside* the simulated fabric (switch decisions, deliveries);
* ``wall_time`` + ``duration_s`` — the host's clock, for stages that
  cost real CPU (encode, decode, aggregate).

Tracing is **off by default** (a disabled tracer costs one attribute
check per call site) and is enabled either programmatically
(:func:`trace_to`) or by pointing ``REPRO_OBS_TRACE`` at a JSONL path.
Events stream to the JSONL sink as they happen, so a crashed run still
leaves a usable trace.

Event names used by the built-in instrumentation are listed in
``docs/observability.md``; they are plain strings, so new layers can
add their own without touching this module.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional

__all__ = [
    "TraceEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "trace_to",
]


@dataclass
class TraceEvent:
    """One structured event on the gradient path."""

    name: str
    seq: int
    wall_time: float
    sim_time: Optional[float] = None
    duration_s: Optional[float] = None
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "seq": self.seq,
            "wall_time": self.wall_time,
        }
        if self.sim_time is not None:
            record["sim_time"] = self.sim_time
        if self.duration_s is not None:
            record["duration_s"] = self.duration_s
        if self.fields:
            record["fields"] = self.fields
        return record


class Tracer:
    """Collects :class:`TraceEvent` records and streams them to JSONL.

    Args:
        enabled: record events (False = every call is a cheap no-op).
        jsonl_path: stream each event to this file as one JSON line
            (opened lazily on the first event).
        keep_events: also keep events in ``self.events`` for in-process
            report generation; cap with ``max_events``.
        max_events: in-memory cap — the JSONL sink keeps receiving
            events after the cap, the list just stops growing.
        jsonl_max_bytes: rotate the JSONL sink once it grows past this
            many bytes (None = never; rotation keeps long chaos runs
            from growing unbounded trace files).
        jsonl_max_events: rotate after this many events per file.
        jsonl_backups: rotated generations kept as ``path.1`` …
            ``path.N``; events in a generation pushed past N are gone
            and counted in ``jsonl_dropped_events``.
    """

    def __init__(
        self,
        enabled: bool = False,
        jsonl_path: Optional[str] = None,
        keep_events: bool = True,
        max_events: int = 1_000_000,
        jsonl_max_bytes: Optional[int] = None,
        jsonl_max_events: Optional[int] = None,
        jsonl_backups: int = 1,
    ) -> None:
        if jsonl_max_bytes is not None and jsonl_max_bytes <= 0:
            raise ValueError(f"jsonl_max_bytes must be positive, got {jsonl_max_bytes}")
        if jsonl_max_events is not None and jsonl_max_events <= 0:
            raise ValueError(f"jsonl_max_events must be positive, got {jsonl_max_events}")
        if jsonl_backups < 1:
            raise ValueError(f"jsonl_backups must be >= 1, got {jsonl_backups}")
        self.enabled = enabled
        self.jsonl_path = jsonl_path
        self.keep_events = keep_events
        self.max_events = max_events
        self.jsonl_max_bytes = jsonl_max_bytes
        self.jsonl_max_events = jsonl_max_events
        self.jsonl_backups = jsonl_backups
        self.events: List[TraceEvent] = []
        self.dropped_events = 0
        #: Completed rotations (path -> path.1 -> … -> discarded).
        self.jsonl_rotations = 0
        #: Events whose JSONL lines were discarded when a rotated
        #: generation fell off the end of the backup chain.
        self.jsonl_dropped_events = 0
        self._seq = 0
        self._sink: Optional[IO[str]] = None
        self._sink_bytes = 0
        self._sink_events = 0
        # Event counts of path.1 … path.N, newest first, so the tracer
        # knows exactly how many events each discarded generation held.
        self._backup_events: List[int] = []

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def clear(self) -> None:
        self.events.clear()
        self.dropped_events = 0

    # -- recording ----------------------------------------------------------

    def event(
        self,
        name: str,
        sim_time: Optional[float] = None,
        duration_s: Optional[float] = None,
        **fields: Any,
    ) -> Optional[TraceEvent]:
        """Record one event; returns it, or None when disabled."""
        if not self.enabled:
            return None
        self._seq += 1
        ev = TraceEvent(
            name=name,
            seq=self._seq,
            wall_time=time.time(),
            sim_time=sim_time,
            duration_s=duration_s,
            fields=fields,
        )
        if self.keep_events:
            if len(self.events) < self.max_events:
                self.events.append(ev)
            else:
                self.dropped_events += 1
        if self.jsonl_path is not None:
            if self._sink is None:
                # Truncate: each tracer owns its file, and a rerun to the
                # same path must not double-count the previous run.
                self._sink = open(self.jsonl_path, "w", encoding="utf-8")
                self._sink_bytes = 0
                self._sink_events = 0
            line = json.dumps(ev.to_json()) + "\n"
            self._sink.write(line)
            self._sink_bytes += len(line)
            self._sink_events += 1
            if (
                self.jsonl_max_bytes is not None
                and self._sink_bytes >= self.jsonl_max_bytes
            ) or (
                self.jsonl_max_events is not None
                and self._sink_events >= self.jsonl_max_events
            ):
                self._rotate()
        return ev

    def _rotate(self) -> None:
        """Shift the active JSONL file into the backup chain.

        ``path`` becomes ``path.1``, pushing older generations down;
        the generation past ``jsonl_backups`` is deleted and its events
        are added to ``jsonl_dropped_events``.
        """
        assert self.jsonl_path is not None and self._sink is not None
        self._sink.close()
        self._sink = None
        # Drop the oldest generation if the chain is full.
        oldest = f"{self.jsonl_path}.{self.jsonl_backups}"
        if len(self._backup_events) >= self.jsonl_backups:
            if os.path.exists(oldest):
                os.remove(oldest)
            self.jsonl_dropped_events += self._backup_events.pop()
        # Shift the survivors down: path.N-1 -> path.N, ...
        for gen in range(len(self._backup_events), 0, -1):
            os.replace(f"{self.jsonl_path}.{gen}", f"{self.jsonl_path}.{gen + 1}")
        os.replace(self.jsonl_path, f"{self.jsonl_path}.1")
        self._backup_events.insert(0, self._sink_events)
        self._sink_bytes = 0
        self._sink_events = 0
        self.jsonl_rotations += 1

    @contextmanager
    def span(self, name: str, sim_time: Optional[float] = None, **fields: Any):
        """Wall-clock a stage; emits one event with ``duration_s`` set.

        Yields the mutable fields dict so the body can attach results::

            with tracer.span("encode", codec="rht") as f:
                enc = codec.encode(flat)
                f["coords"] = enc.length
        """
        if not self.enabled:
            yield fields
            return
        start = time.perf_counter()
        try:
            yield fields
        finally:
            self.event(
                name,
                sim_time=sim_time,
                duration_s=time.perf_counter() - start,
                **fields,
            )

    # -- export -------------------------------------------------------------

    def to_jsonl(self, path: str) -> int:
        """Write the in-memory events to ``path``; returns the count."""
        with open(path, "w", encoding="utf-8") as fh:
            for ev in self.events:
                fh.write(json.dumps(ev.to_json()) + "\n")
        return len(self.events)


_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled unless someone enabled it)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process default; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def trace_to(
    path: Optional[str],
    keep_events: bool = True,
    jsonl_max_bytes: Optional[int] = None,
    jsonl_max_events: Optional[int] = None,
    jsonl_backups: int = 1,
) -> Tracer:
    """Enable process-wide tracing, streaming to ``path`` (None = memory only)."""
    tracer = Tracer(
        enabled=True,
        jsonl_path=path,
        keep_events=keep_events,
        jsonl_max_bytes=jsonl_max_bytes,
        jsonl_max_events=jsonl_max_events,
        jsonl_backups=jsonl_backups,
    )
    set_tracer(tracer)
    return tracer
