"""Unified observability: metrics registry, gradient-path tracing, exporters.

The paper's claims are rate claims — trim fraction, bytes saved, NMSE,
per-stage time — and this package is where the pipeline reports them:

* :mod:`repro.obs.metrics` — process-wide counters/gauges/log-scale
  histograms, always-on by default and a no-op when disabled;
* :mod:`repro.obs.trace` — span events along the gradient path
  (encode → packetize → switch enqueue/trim/drop → transport delivery →
  decode) with sim-time and wall-time, streamed to JSONL;
* :mod:`repro.obs.export` — Prometheus text dump, JSONL IO, and the
  human-readable per-run report;
* :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``.

Typical use::

    from repro.obs import trace_to, get_registry, build_report

    tracer = trace_to("trace.jsonl")      # enable span tracing
    ...run a congested simulation...
    print(build_report([e.to_json() for e in tracer.events],
                       registry=get_registry()))
"""

from .export import build_report, prometheus_text, read_jsonl
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .trace import TraceEvent, Tracer, get_tracer, set_tracer, trace_to

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
    "build_report",
    "get_registry",
    "get_tracer",
    "prometheus_text",
    "read_jsonl",
    "set_registry",
    "set_tracer",
    "trace_to",
]
