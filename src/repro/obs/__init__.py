"""Unified observability: metrics, tracing, INT telemetry, spans, exporters.

The paper's claims are rate claims — trim fraction, bytes saved, NMSE,
per-stage time — and this package is where the pipeline reports them:

* :mod:`repro.obs.metrics` — process-wide counters/gauges/log-scale
  histograms, always-on by default and a no-op when disabled;
* :mod:`repro.obs.trace` — span events along the gradient path
  (encode → packetize → switch enqueue/trim/drop → transport delivery →
  decode) with sim-time and wall-time, streamed to JSONL;
* :mod:`repro.obs.int_telemetry` — in-band network telemetry: switches
  stamp per-hop congestion records into a trim-survivable metadata band
  of every gradient packet; receivers sink them into per-(job, layer,
  hop) series;
* :mod:`repro.obs.spans` — causal span tracing of the round → message →
  packet lifecycle on the modeled clock (byte-identical per seed);
* :mod:`repro.obs.profile` — event-loop profiler attributing modeled
  and wall time to pipeline stages;
* :mod:`repro.obs.export` — Prometheus text dump, JSONL IO, the
  human-readable per-run report, and the static HTML timeline;
* :mod:`repro.obs.timeline` — ``repro-timeline`` per-round congestion
  timeline CLI;
* :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``.

Typical use::

    from repro.obs import trace_to, get_registry, build_report

    tracer = trace_to("trace.jsonl")      # enable span tracing
    ...run a congested simulation...
    print(build_report([e.to_json() for e in tracer.events],
                       registry=get_registry()))
"""

from .export import build_report, prometheus_text, read_jsonl, timeline_html
from .int_telemetry import (
    INTCollector,
    INTExtension,
    INTHopRecord,
    disable_int,
    enable_int,
    get_int_collector,
    int_capacity,
    int_to,
    set_int_collector,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .profile import SimProfiler
from .spans import Span, SpanTracer, get_span_tracer, set_span_tracer, spans_to
from .trace import TraceEvent, Tracer, get_tracer, set_tracer, trace_to

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "INTCollector",
    "INTExtension",
    "INTHopRecord",
    "MetricsRegistry",
    "SimProfiler",
    "Span",
    "SpanTracer",
    "TraceEvent",
    "Tracer",
    "build_report",
    "disable_int",
    "enable_int",
    "get_int_collector",
    "get_registry",
    "get_span_tracer",
    "get_tracer",
    "int_capacity",
    "int_to",
    "prometheus_text",
    "read_jsonl",
    "set_int_collector",
    "set_registry",
    "set_span_tracer",
    "set_tracer",
    "spans_to",
    "timeline_html",
    "trace_to",
]
