"""``repro-timeline``: per-round congestion timeline for the trim pipeline.

Turns a trace event stream (live or from a ``trace.jsonl`` file) into a
time-binned picture of one run:

* a **queue-depth heatmap** per watched egress queue (block characters
  in the terminal, a color grid in the static HTML export);
* per-bin **forward / trim / drop / blackhole / retransmit** activity
  rows — blackhole drops (packets a stale FIB hashed onto a dead leg)
  get their own row so fabric failures read differently from plain
  queue-full congestion;
* **event markers** for surrenders, ECMP failover reroutes, link-down
  losses and other exceptional moments;
* a **per-layer table** — trim fraction per gradient message when
  ``channel.transfer`` events are present, per-flow trim counts
  otherwise.

Subcommands:

* ``repro-timeline record <scenario>`` — run a fault preset with full
  telemetry armed (Tracer, SpanTracer, INT collector, QueueMonitor) and
  render the timeline from the recorded run.  Artifacts land in
  ``--out-dir``: ``trace.jsonl``, ``spans.jsonl``, ``int.jsonl``,
  ``int_summary.json``, ``timeline.txt`` and (with ``--html``)
  ``timeline.html``.  Same (scenario, transport, seed) → byte-identical
  span/INT JSONL.
* ``repro-timeline render <trace.jsonl>`` — rebuild the timeline from a
  previously recorded trace.

``--profile`` (record only) attaches the
:class:`~repro.obs.profile.SimProfiler` event-loop profiler and reports
where the simulation's modeled and wall time went, per pipeline stage.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .export import _fmt_s, _rows, read_jsonl, timeline_html
from .int_telemetry import (
    DEFAULT_INT_CAPACITY,
    INTCollector,
    disable_int,
    enable_int,
    get_int_collector,
    set_int_collector,
)
from .profile import SimProfiler
from .spans import SpanTracer, get_span_tracer, set_span_tracer
from .trace import Tracer, get_tracer, set_tracer

logger = logging.getLogger("repro.obs.timeline")

__all__ = ["Timeline", "build_timeline", "render_timeline", "main"]

#: Depth glyphs, blank → full block.
_BLOCKS = " ▁▂▃▄▅▆▇█"

#: Events folded into the per-bin activity rows: name -> row key.
_ACTIVITY = {
    "switch.forward": "forward",
    "switch.trim": "trim",
    "link.trim": "trim",
    "switch.drop": "drop",
    "link.drop": "drop",
    "link.down_loss": "drop",
    "transport.retransmit": "retransmit",
}

#: Activity rows in render order.
_ACTIVITY_ROWS = ("forward", "trim", "drop", "blackhole", "retransmit")

#: Events surfaced as point markers under the heatmap.
_MARKS = ("transport.surrender", "channel.degraded_step", "switch.reroute")

#: Mark fields surfaced in the detail suffix, in this order.
_MARK_FIELDS = ("flow_id", "worker", "reason", "switch", "old_hop", "new_hop")


@dataclass
class Timeline:
    """A binned view of one run's congestion behaviour."""

    t0: float
    t1: float
    bins: int
    bin_s: float
    #: queue label -> peak bytes_queued per bin.
    queues: Dict[str, List[float]] = field(default_factory=dict)
    #: activity row -> event count per bin (forward/trim/drop/retransmit).
    activity: Dict[str, List[int]] = field(default_factory=dict)
    #: (sim_time, event name, detail) for exceptional moments.
    marks: List[Tuple[float, str, str]] = field(default_factory=list)
    #: per-layer rows (dicts; schema depends on the available events).
    layers: List[Dict[str, Any]] = field(default_factory=list)
    events_seen: int = 0


def _bin_index(t: float, t0: float, bin_s: float, bins: int) -> int:
    idx = int((t - t0) / bin_s)
    return min(max(idx, 0), bins - 1)


def build_timeline(events: Sequence[Mapping[str, Any]], bins: int = 60) -> Timeline:
    """Fold a trace event stream into a :class:`Timeline`.

    ``events`` are dicts in the ``TraceEvent.to_json`` schema; only
    events carrying ``sim_time`` participate in binning.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    sim_times = [e["sim_time"] for e in events if e.get("sim_time") is not None]
    if not sim_times:
        raise ValueError("no events with sim_time; nothing to bin")
    t0, t1 = min(sim_times), max(sim_times)
    bin_s = max((t1 - t0) / bins, 1e-12)
    tl = Timeline(t0=t0, t1=t1, bins=bins, bin_s=bin_s, events_seen=len(events))

    transfers: List[Mapping[str, Any]] = []
    flow_trims: Dict[int, int] = {}
    flow_totals: Dict[int, int] = {}
    for ev in events:
        name = ev.get("name", "?")
        t = ev.get("sim_time")
        fields = ev.get("fields", {})
        if name == "queue.sample" and t is not None:
            label = str(fields.get("queue", "?"))
            series = tl.queues.setdefault(label, [0.0] * bins)
            idx = _bin_index(t, t0, bin_s, bins)
            series[idx] = max(series[idx], float(fields.get("bytes_queued", 0)))
        elif name in _ACTIVITY and t is not None:
            key = _ACTIVITY[name]
            if name == "switch.drop" and fields.get("kind") == "blackhole":
                # Stale-FIB losses during reroute convergence are a
                # fabric-health signal, not congestion: separate row.
                key = "blackhole"
            row = tl.activity.setdefault(key, [0] * bins)
            row[_bin_index(t, t0, bin_s, bins)] += 1
        elif name in _MARKS:
            detail = ", ".join(
                f"{k}={fields[k]}" for k in _MARK_FIELDS if k in fields
            )
            tl.marks.append((t if t is not None else t1, name, detail))
        if name == "channel.transfer":
            transfers.append(ev)
        if name in ("switch.trim", "link.trim"):
            flow = fields.get("flow_id")
            if flow is not None:
                flow_trims[int(flow)] = flow_trims.get(int(flow), 0) + 1
        if name in ("switch.forward", "switch.trim", "link.trim"):
            flow = fields.get("flow_id")
            if flow is not None:
                flow_totals[int(flow)] = flow_totals.get(int(flow), 0) + 1
    tl.marks.sort()

    # Per-layer rows: gradient messages when the train loop was involved,
    # per-flow switch decisions otherwise (the fault harness's view).
    if transfers:
        for ev in transfers:
            f = ev.get("fields", {})
            tl.layers.append(
                {
                    "layer": f.get("message_id", "?"),
                    "worker": f.get("worker", "?"),
                    "fct_s": f.get("fct_s"),
                    "trim_fraction": f.get("trim_fraction"),
                    "nmse": f.get("nmse"),
                }
            )
    else:
        for flow in sorted(flow_totals):
            total = flow_totals[flow]
            trims = flow_trims.get(flow, 0)
            tl.layers.append(
                {
                    "flow": flow,
                    "switch_decisions": total,
                    "trims": trims,
                    "trim_fraction": trims / total if total else 0.0,
                }
            )
    return tl


def _spark(values: Sequence[float], peak: float) -> str:
    if peak <= 0:
        return " " * len(values)
    out = []
    for v in values:
        level = 0 if v <= 0 else 1 + int(v / peak * (len(_BLOCKS) - 2))
        out.append(_BLOCKS[min(level, len(_BLOCKS) - 1)])
    return "".join(out)


def render_timeline(tl: Timeline) -> List[str]:
    """Terminal rendering: heatmap rows, activity rows, marks, layers."""
    lines = [
        "== congestion timeline ==",
        f"{tl.events_seen} events, sim span {_fmt_s(tl.t1 - tl.t0)} "
        f"({tl.bins} bins of {_fmt_s(tl.bin_s)})",
    ]
    width = max(
        [len(label) for label in tl.queues] + [len("retransmit")] + [5]
    )
    if tl.queues:
        lines.append("")
        lines.append("-- queue depth (peak bytes per bin) --")
        for label in sorted(tl.queues):
            series = tl.queues[label]
            peak = max(series)
            lines.append(
                f"  {label.ljust(width)} |{_spark(series, peak)}| peak {int(peak)}"
            )
    if tl.activity:
        lines.append("")
        lines.append("-- switch/transport activity (events per bin) --")
        for row in _ACTIVITY_ROWS:
            series = tl.activity.get(row)
            if series is None:
                continue
            peak = float(max(series))
            lines.append(
                f"  {row.ljust(width)} |{_spark([float(v) for v in series], peak)}|"
                f" total {sum(series)}"
            )
    if tl.marks:
        lines.append("")
        lines.append("-- events --")
        for t, name, detail in tl.marks:
            suffix = f" ({detail})" if detail else ""
            lines.append(f"  t={t:.6f}s {name}{suffix}")
    if tl.layers:
        lines.append("")
        headers = list(tl.layers[0].keys())
        title = "per-layer" if "layer" in headers else "per-flow"
        lines.append(f"-- {title} trimming --")
        rows = []
        for row in tl.layers:
            rendered = []
            for key in headers:
                value = row.get(key)
                if isinstance(value, float):
                    rendered.append(f"{value:.4f}")
                else:
                    rendered.append(str(value))
            rows.append(rendered)
        lines.extend(_rows(headers, rows))
    return lines


# -- CLI ----------------------------------------------------------------------


def _cmd_render(ns: argparse.Namespace) -> int:
    events = read_jsonl(ns.trace)
    tl = build_timeline(events, bins=ns.bins)
    for line in render_timeline(tl):
        logger.info("%s", line)
    if ns.html is not None:
        Path(ns.html).write_text(
            timeline_html(tl, title=f"timeline of {ns.trace}"), encoding="utf-8"
        )
        logger.info("wrote %s", ns.html)
    return 0


def _cmd_record(ns: argparse.Namespace) -> int:
    # Imported here: the faults harness pulls in the whole simulator
    # stack, which `repro-timeline render` does not need.
    from ..faults.harness import run_scenario
    from ..faults.scenarios import Scenario, scenario_by_name
    from ..net.telemetry import QueueMonitor

    if ns.scenario.endswith(".json"):
        with open(ns.scenario, "r", encoding="utf-8") as fh:
            scenario = Scenario.from_dict(json.load(fh))
    else:
        scenario = scenario_by_name(ns.scenario)

    out = Path(ns.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    # The monitor only reschedules while other simulation work is
    # pending, so a fine default period is bounded by actual traffic
    # activity, not by the scenario's (much longer) nominal duration.
    period = ns.sample_period if ns.sample_period is not None else 2e-5

    prev_tracer = set_tracer(Tracer(enabled=True, jsonl_path=str(out / "trace.jsonl")))
    prev_spans = set_span_tracer(
        SpanTracer(enabled=True, jsonl_path=str(out / "spans.jsonl"))
    )
    prev_collector = set_int_collector(
        INTCollector(enabled=True, jsonl_path=str(out / "int.jsonl"))
    )
    enable_int(ns.int_capacity)
    profiler = SimProfiler() if ns.profile else None

    def instrument(net) -> None:
        QueueMonitor(net.sim, period_s=period).watch_network(net)
        if profiler is not None:
            profiler.install(net.sim)

    try:
        run = run_scenario(
            scenario,
            transport=ns.transport,
            seed=ns.seed,
            max_events=ns.max_events,
            instrument=instrument,
        )
        if profiler is not None:
            profiler.uninstall(run.network.sim)
        tracer = get_tracer()
        events = [e.to_json() for e in tracer.events]
        tl = build_timeline(events, bins=ns.bins)
        lines = render_timeline(tl)
        (out / "timeline.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
        for line in lines:
            logger.info("%s", line)
        collector = get_int_collector()
        summary = collector.summary()
        (out / "int_summary.json").write_text(
            json.dumps(summary, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        logger.info("")
        logger.info(
            "INT: %d records from %d delivered packets across %d series (hops: %s)",
            summary["records"],
            summary["packets"],
            summary["series"],
            ", ".join(summary["hops"]) or "-",
        )
        if ns.html:
            html_path = out / "timeline.html"
            html_path.write_text(
                timeline_html(
                    tl,
                    title=f"{run.scenario} / {run.transport} / seed {run.seed}",
                ),
                encoding="utf-8",
            )
            logger.info("wrote %s", html_path)
        if profiler is not None:
            report = profiler.report()
            (out / "profile.json").write_text(
                json.dumps(report, indent=2) + "\n", encoding="utf-8"
            )
            logger.info("")
            logger.info("-- event-loop profile --")
            rows = [
                [
                    row["stage"],
                    row["events"],
                    _fmt_s(row["wall_s"]),
                    f"{row['wall_share']:.1%}",
                    _fmt_s(row["modeled_s"]),
                    f"{row['modeled_share']:.1%}",
                ]
                for row in report
            ]
            for line in _rows(
                ["stage", "events", "wall", "wall%", "modeled", "modeled%"], rows
            ):
                logger.info("%s", line)
        logger.info("artifacts in %s", out)
        return 0
    finally:
        get_tracer().close()
        get_span_tracer().close()
        get_int_collector().close()
        set_tracer(prev_tracer)
        set_span_tracer(prev_spans)
        set_int_collector(prev_collector)
        disable_int()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-timeline",
        description="per-round congestion timeline for the trim pipeline",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_rec = sub.add_parser(
        "record", help="run a fault scenario with full telemetry and render it"
    )
    p_rec.add_argument(
        "scenario",
        help="a preset name (see `repro-faults list`) or a scenario .json path",
    )
    p_rec.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
    p_rec.add_argument(
        "--transport",
        default="trimming",
        help="transport to drive the gradient traffic (default trimming)",
    )
    p_rec.add_argument(
        "--out-dir",
        default="timeline-out",
        help="artifact directory (default ./timeline-out)",
    )
    p_rec.add_argument("--bins", type=int, default=60, help="time bins (default 60)")
    p_rec.add_argument(
        "--int-capacity",
        type=int,
        default=DEFAULT_INT_CAPACITY,
        help=f"INT band record slots per packet (default {DEFAULT_INT_CAPACITY})",
    )
    p_rec.add_argument(
        "--sample-period",
        type=float,
        default=None,
        help="queue sampling period in seconds (default 2e-5)",
    )
    p_rec.add_argument(
        "--max-events",
        type=int,
        default=2_000_000,
        help="simulator safety valve (default 2e6 events)",
    )
    p_rec.add_argument(
        "--html", action="store_true", help="also write timeline.html"
    )
    p_rec.add_argument(
        "--profile",
        action="store_true",
        help="attach the event-loop profiler and report per-stage time",
    )
    p_rec.set_defaults(func=_cmd_record)

    p_ren = sub.add_parser("render", help="render a timeline from a trace JSONL")
    p_ren.add_argument("trace", help="path to a trace.jsonl")
    p_ren.add_argument("--bins", type=int, default=60, help="time bins (default 60)")
    p_ren.add_argument("--html", default=None, help="write a static HTML copy here")
    p_ren.set_defaults(func=_cmd_render)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    logging.basicConfig(level=logging.INFO, format="%(message)s", stream=sys.stderr)
    ns = build_parser().parse_args(argv)
    return int(ns.func(ns))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
