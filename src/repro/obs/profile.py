"""Event-loop profiler: where do a simulation's modeled and wall time go?

:class:`SimProfiler` shadows a :class:`~repro.net.simulator.Simulator`'s
``run`` with :meth:`~repro.net.simulator.Simulator.run_profiled`, which
times every callback as the event loop dispatches it:

* **wall time** (``time.perf_counter``) — the real CPU cost of running
  that callback, attributed to the pipeline stage the callback belongs
  to (switch / link / transport / collective / telemetry / faults);
* **modeled time** — the simulated-clock gap between this event and the
  previous one, attributed to the stage that consumed it (the stage
  whose event the simulation was waiting on).

Timing at the dispatch level (rather than wrapping the scheduling APIs)
means every event is covered no matter how it was posted — ``schedule``
closures, fire-and-forget ``schedule_call`` tuples, and ``schedule_batch``
bursts alike — and the fabric's hot paths stay free to cache bound
scheduler methods.  Stages are classified from the callback's defining
module, so the instrumentation needs no cooperation from the
instrumented code.  This module lives in ``repro.obs`` (not
``repro.net``) deliberately: the wall-clock-in-sim lint rule bans
``perf_counter`` inside the simulated fabric, and the profiler is
exactly the observer that rule protects the fabric from becoming —
``run_profiled`` takes the clock as an argument for the same reason.

Profiling perturbs nothing modeled: callbacks run unchanged, in the
same order, at the same simulated times — only their execution is
timed.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - avoids obs -> net import cycle
    from ..net.simulator import Simulator

__all__ = ["StageProfile", "SimProfiler"]

#: Module-substring → stage, first match wins (order matters: the
#: specific ``net.*`` entries must precede the catch-alls).
_STAGE_RULES = (
    ("repro.net.switch", "switch"),
    ("repro.net.link", "link"),
    ("repro.net.queues", "link"),
    ("repro.net.crosstraffic", "tenants"),
    ("repro.net.telemetry", "telemetry"),
    ("repro.net.host", "transport"),
    ("repro.transport", "transport"),
    ("repro.collectives", "collective"),
    ("repro.train", "collective"),
    ("repro.faults", "faults"),
)


def _classify(callback: Callable[[], None]) -> str:
    module = getattr(callback, "__module__", "") or ""
    for needle, stage in _STAGE_RULES:
        if needle in module:
            return stage
    return "other"


class StageProfile:
    """Accumulated cost of one pipeline stage."""

    __slots__ = ("stage", "events", "wall_s", "modeled_s")

    def __init__(self, stage: str) -> None:
        self.stage = stage
        self.events = 0
        self.wall_s = 0.0
        self.modeled_s = 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "events": self.events,
            "wall_s": self.wall_s,
            "modeled_s": self.modeled_s,
        }


class SimProfiler:
    """Per-stage wall/modeled time attribution for one simulator.

    Use::

        profiler = SimProfiler()
        profiler.install(net.sim)
        net.sim.run(...)
        profiler.uninstall(net.sim)
        for row in profiler.report():
            ...
    """

    def __init__(self) -> None:
        self.profiles: Dict[str, StageProfile] = {}
        self.events_profiled = 0
        self._last_now: Optional[float] = None
        self._installed_on: Optional[Simulator] = None
        # callback __module__ -> stage, so the rule scan runs once per
        # distinct module instead of once per event.
        self._stage_cache: Dict[str, str] = {}

    def install(self, sim: Simulator) -> None:
        """Shadow ``sim.run`` with the timing dispatch loop."""
        if self._installed_on is not None:
            raise RuntimeError("profiler is already installed")
        profiler = self

        def run(
            until: Optional[float] = None, max_events: Optional[int] = None
        ) -> float:
            return sim.run_profiled(
                profiler._observe, perf_counter, until=until, max_events=max_events
            )

        # Instance attribute shadows the bound method; uninstall removes it.
        sim.run = run  # type: ignore[method-assign]
        self._installed_on = sim
        self._last_now = sim.now

    def uninstall(self, sim: Simulator) -> None:
        """Restore ``sim.run``."""
        if self._installed_on is not sim:
            raise RuntimeError("profiler is not installed on this simulator")
        if "run" in sim.__dict__:
            del sim.__dict__["run"]
        self._installed_on = None

    def _observe(self, callback: Callable, now: float, wall_s: float) -> None:
        """Credit one executed event to its stage (run_profiled hook)."""
        module = getattr(callback, "__module__", "") or ""
        stage = self._stage_cache.get(module)
        if stage is None:
            stage = self._stage_cache[module] = _classify(callback)
        profile = self._profile(stage)
        if self._last_now is not None and now > self._last_now:
            profile.modeled_s += now - self._last_now
        self._last_now = now
        profile.wall_s += wall_s
        profile.events += 1
        self.events_profiled += 1

    def _profile(self, stage: str) -> StageProfile:
        profile = self.profiles.get(stage)
        if profile is None:
            profile = self.profiles[stage] = StageProfile(stage)
        return profile

    # -- reporting ----------------------------------------------------------

    @property
    def total_wall_s(self) -> float:
        return sum(p.wall_s for p in self.profiles.values())

    @property
    def total_modeled_s(self) -> float:
        return sum(p.modeled_s for p in self.profiles.values())

    def report(self) -> List[Dict[str, Any]]:
        """Per-stage rows, heaviest wall time first, with share columns."""
        total_wall = self.total_wall_s or 1.0
        total_modeled = self.total_modeled_s or 1.0
        rows = []
        for profile in sorted(
            self.profiles.values(), key=lambda p: (-p.wall_s, p.stage)
        ):
            row = profile.to_json()
            row["wall_share"] = profile.wall_s / total_wall
            row["modeled_share"] = profile.modeled_s / total_modeled
            rows.append(row)
        return rows
