"""In-band network telemetry (INT) for the trim pipeline.

Real INT deployments have switches stamp a small per-hop record into a
dedicated metadata band of each packet as it flies by; the receiver
strips the stack and feeds it to a collector.  This module is that data
plane for the simulator, and the congestion signal the ROADMAP's
adaptive-compression controller will eventually consume:

* :class:`INTHopRecord` / :class:`INTExtension` — a **versioned,
  fixed-size** telemetry band riding on :class:`~repro.packet.packet.Packet`.
  Like the gradient header, the band is *protected metadata*: switches
  never trim it, and it is excluded from the payload checksum
  (``seal()``/``verify()``) because switches legitimately mutate it
  after the sender seals — exactly why real INT shims live outside the
  L4 checksum.
* per-hop stamping — :class:`~repro.net.switch.Switch` records a
  forward/trim/drop decision with the egress queue depth and occupancy;
  :class:`~repro.net.link.Link` records probabilistic in-flight trims.
* :class:`INTCollector` — the receiver-side sink that turns delivered
  records into per-(job, layer, hop) congestion series, optionally
  streamed to JSONL (sorted keys, simulation time only, so two
  same-seed runs produce byte-identical files).

Everything is **off by default**: packets carry no extension until
:func:`enable_int` is called, and every stamping site guards on
``packet.int_ext is not None`` — one attribute check on the disabled
path.
"""

from __future__ import annotations

import json
import re
import struct
from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Dict, List, Optional, Tuple

from .metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a packet cycle
    from ..packet.packet import Packet

__all__ = [
    "INT_VERSION",
    "INT_HEADER_BYTES",
    "INT_RECORD_BYTES",
    "DEFAULT_INT_CAPACITY",
    "DECISION_FORWARD",
    "DECISION_TRIM",
    "DECISION_DROP",
    "REASON_NONE",
    "REASON_BUFFER_OVERFLOW",
    "REASON_HEADER_BAND_OVERFLOW",
    "REASON_NO_ROUTE",
    "REASON_PORT_BLACKOUT",
    "REASON_LINK_IMPAIRMENT",
    "REASON_BLACKHOLE",
    "REASON_SWITCH_DOWN",
    "REASON_GRAY_LOSS",
    "AUX_PATH_CHANGED",
    "decision_name",
    "reason_name",
    "INTHopRecord",
    "INTExtension",
    "INTCollector",
    "enable_int",
    "disable_int",
    "int_capacity",
    "hop_id",
    "hop_name",
    "is_reserved_hop_name",
    "reset_hop_registry",
    "get_int_collector",
    "set_int_collector",
    "int_to",
]

INT_VERSION = 1

#: Per-packet record slots pre-allocated in the band.  Like real INT's
#: max-hop-count, the band's wire size is fixed up front so stamping a
#: hop never changes the packet's size mid-flight.
DEFAULT_INT_CAPACITY = 8

#: Band header: version, capacity, count, flags (bit 0: overflowed).
_EXT_HEADER = struct.Struct(">BBBB")
INT_HEADER_BYTES = _EXT_HEADER.size

#: One hop record: hop id, decision, reason, modeled timestamp, egress
#: queue depth in bytes, data-band occupancy in permille, aux (the trim
#: level for multi-level trims).
_RECORD = struct.Struct(">HBBdIHH")
INT_RECORD_BYTES = _RECORD.size

_EXT_FLAG_OVERFLOWED = 0x01

DECISION_FORWARD = 0
DECISION_TRIM = 1
DECISION_DROP = 2

_DECISION_NAMES = {
    DECISION_FORWARD: "forward",
    DECISION_TRIM: "trim",
    DECISION_DROP: "drop",
}

REASON_NONE = 0
REASON_BUFFER_OVERFLOW = 1
REASON_HEADER_BAND_OVERFLOW = 2
REASON_NO_ROUTE = 3
REASON_PORT_BLACKOUT = 4
REASON_LINK_IMPAIRMENT = 5
REASON_BLACKHOLE = 6
REASON_SWITCH_DOWN = 7
REASON_GRAY_LOSS = 8

#: High bit of the ``aux`` field on a forward record: this flow was
#: rerouted onto a different ECMP leg after a port failure, and this is
#: its first stamped packet on the new path.  The low bits keep their
#: usual meaning (path index + 1), so a failover reads as
#: ``aux = AUX_PATH_CHANGED | new_leg``.
AUX_PATH_CHANGED = 0x8000

_REASON_NAMES = {
    REASON_NONE: "none",
    REASON_BUFFER_OVERFLOW: "buffer-overflow",
    REASON_HEADER_BAND_OVERFLOW: "header-band-overflow",
    REASON_NO_ROUTE: "no-route",
    REASON_PORT_BLACKOUT: "port-blackout",
    REASON_LINK_IMPAIRMENT: "link-impairment",
    REASON_BLACKHOLE: "blackhole",
    REASON_SWITCH_DOWN: "switch-down",
    REASON_GRAY_LOSS: "gray-loss",
}


def decision_name(decision: int) -> str:
    """Human-readable name for a decision code."""
    return _DECISION_NAMES.get(decision, f"decision-{decision}")


def reason_name(reason: int) -> str:
    """Human-readable name for a reason code."""
    return _REASON_NAMES.get(reason, f"reason-{reason}")


# -- hop registry -------------------------------------------------------------
#
# INT records carry a 16-bit hop id, not a name.  Devices intern their
# name once at construction; because topologies are built in a fixed
# order, a given (scenario, seed) always yields the same ids.

_HOP_IDS: Dict[str, int] = {}
_HOP_NAMES: List[str] = []


def hop_id(name: str) -> int:
    """Intern ``name`` and return its stable small-integer hop id."""
    hid = _HOP_IDS.get(name)
    if hid is None:
        hid = len(_HOP_NAMES)
        if hid > 0xFFFF:
            raise OverflowError("hop registry exhausted the 16-bit id space")
        _HOP_IDS[name] = hid
        _HOP_NAMES.append(name)
    return hid


def hop_name(hid: int) -> str:
    """Reverse lookup; unknown ids render as ``hop<id>``."""
    if 0 <= hid < len(_HOP_NAMES):
        return _HOP_NAMES[hid]
    return f"hop{hid}"


#: Names the registry itself generates: link labels ("a->b", interned by
#: every Link) and the ``hop<N>`` fallback rendering for unknown ids.
_FALLBACK_HOP_RE = re.compile(r"hop\d+")


def is_reserved_hop_name(name: str) -> bool:
    """True when ``name`` would collide with a registry-generated id.

    Links intern their ``"src->dst"`` label and :func:`hop_name` renders
    unknown ids as ``hop<N>``, so a *device* with either shape of name
    would alias an existing (or future) registry entry and corrupt the
    telemetry attribution.  :meth:`repro.net.topology.Network.add_host`
    and ``add_switch`` reject such names up front.
    """
    return "->" in name or _FALLBACK_HOP_RE.fullmatch(name) is not None


def reset_hop_registry() -> None:
    """Clear the interning table (test isolation)."""
    _HOP_IDS.clear()
    _HOP_NAMES.clear()


# -- wire format --------------------------------------------------------------


@dataclass(frozen=True)
class INTHopRecord:
    """One hop's stamp: where, when, what happened, how congested."""

    hop: int
    decision: int
    reason: int
    sim_time: float
    queue_depth_bytes: int
    fill_permille: int
    aux: int = 0

    def to_bytes(self) -> bytes:
        """Serialize (big-endian, :data:`INT_RECORD_BYTES` bytes)."""
        return _RECORD.pack(
            self.hop,
            self.decision,
            self.reason,
            self.sim_time,
            self.queue_depth_bytes,
            self.fill_permille,
            self.aux,
        )

    @classmethod
    def from_bytes(cls, data: "bytes | memoryview") -> "INTHopRecord":
        """Parse one record."""
        hop, decision, reason, sim_time, depth, fill, aux = _RECORD.unpack_from(data)
        return cls(
            hop=hop,
            decision=decision,
            reason=reason,
            sim_time=sim_time,
            queue_depth_bytes=depth,
            fill_permille=fill,
            aux=aux,
        )


class INTExtension:
    """The fixed-size INT band carried by one packet.

    ``capacity`` record slots are pre-allocated; :meth:`stamp` fills
    them in hop order, and a stamp past capacity sets the overflow flag
    instead of growing the band (the wire size never changes in
    flight).  The band survives trimming untouched and is excluded from
    the payload checksum — see the module docstring.
    """

    __slots__ = ("version", "capacity", "records", "overflowed")

    def __init__(
        self,
        capacity: int = DEFAULT_INT_CAPACITY,
        version: int = INT_VERSION,
        records: Optional[List[INTHopRecord]] = None,
        overflowed: bool = False,
    ) -> None:
        if not 1 <= capacity <= 255:
            raise ValueError(f"capacity must be in [1, 255], got {capacity}")
        self.version = version
        self.capacity = capacity
        self.records: List[INTHopRecord] = list(records) if records else []
        self.overflowed = overflowed

    @property
    def wire_bytes(self) -> int:
        """Bytes this band occupies on the wire (fixed per capacity)."""
        return INT_HEADER_BYTES + self.capacity * INT_RECORD_BYTES

    def stamp(
        self,
        hop: int,
        decision: int,
        reason: int,
        sim_time: float,
        queue_depth_bytes: int = 0,
        fill_permille: int = 0,
        aux: int = 0,
    ) -> bool:
        """Append one hop record; False (and the overflow flag) when full."""
        if len(self.records) >= self.capacity:
            self.overflowed = True
            return False
        self.records.append(
            INTHopRecord(
                hop=hop,
                decision=decision,
                reason=reason,
                sim_time=sim_time,
                queue_depth_bytes=queue_depth_bytes,
                fill_permille=min(fill_permille, 0xFFFF),
                aux=aux,
            )
        )
        return True

    def fresh(self) -> "INTExtension":
        """Empty band with the same geometry — retransmitted clones get
        their own journey's records, not a copy of the lost one's."""
        return INTExtension(capacity=self.capacity, version=self.version)

    def to_bytes(self) -> bytes:
        """Serialize: header + every slot (unused slots zero-filled)."""
        flags = _EXT_FLAG_OVERFLOWED if self.overflowed else 0
        parts = [_EXT_HEADER.pack(self.version, self.capacity, len(self.records), flags)]
        parts.extend(record.to_bytes() for record in self.records)
        pad = self.capacity - len(self.records)
        if pad:
            parts.append(b"\x00" * (pad * INT_RECORD_BYTES))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: "bytes | memoryview") -> "INTExtension":
        """Parse a serialized band; raises ``ValueError`` on bad input."""
        if len(data) < INT_HEADER_BYTES:
            raise ValueError(f"INT band needs {INT_HEADER_BYTES}+ bytes, got {len(data)}")
        version, capacity, count, flags = _EXT_HEADER.unpack_from(data)
        if version != INT_VERSION:
            raise ValueError(f"unsupported INT version {version}")
        if count > capacity:
            raise ValueError(f"count {count} exceeds capacity {capacity}")
        need = INT_HEADER_BYTES + capacity * INT_RECORD_BYTES
        if len(data) < need:
            raise ValueError(f"INT band needs {need} bytes, got {len(data)}")
        records = [
            INTHopRecord.from_bytes(data[INT_HEADER_BYTES + i * INT_RECORD_BYTES :])
            for i in range(count)
        ]
        return cls(
            capacity=capacity,
            version=version,
            records=records,
            overflowed=bool(flags & _EXT_FLAG_OVERFLOWED),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, INTExtension):
            return NotImplemented
        return (
            self.version == other.version
            and self.capacity == other.capacity
            and self.records == other.records
            and self.overflowed == other.overflowed
        )

    def __repr__(self) -> str:
        return (
            f"<INTExtension v{self.version} {len(self.records)}/{self.capacity} records"
            f"{' overflowed' if self.overflowed else ''}>"
        )


# -- enablement ---------------------------------------------------------------

_INT_CAPACITY: Optional[int] = None


def enable_int(capacity: int = DEFAULT_INT_CAPACITY) -> None:
    """Have the packetizer attach an INT band to every gradient packet."""
    if not 1 <= capacity <= 255:
        raise ValueError(f"capacity must be in [1, 255], got {capacity}")
    global _INT_CAPACITY
    _INT_CAPACITY = capacity


def disable_int() -> None:
    """Stop attaching INT bands (the default)."""
    global _INT_CAPACITY
    _INT_CAPACITY = None


def int_capacity() -> Optional[int]:
    """The configured band capacity, or None when INT is disabled."""
    return _INT_CAPACITY


# -- receiver-side collection -------------------------------------------------


@dataclass(frozen=True)
class INTSample:
    """One collected record, keyed back to the packet that carried it."""

    seq: int
    packet_id: int
    record: INTHopRecord


class INTCollector:
    """Sinks delivered INT records into per-(job, layer, hop) series.

    The *job* is the transport flow id and the *layer* is the gradient
    message id — the granularity the adaptive-codec controller needs to
    answer "which layer's packets are being trimmed, where, and when".

    Args:
        enabled: collect records (False = one attribute check per call).
        jsonl_path: stream one JSON line per record (sorted keys,
            simulation time only — byte-identical for the same seed).
        keep_records: retain series in memory for in-process analysis.
    """

    def __init__(
        self,
        enabled: bool = False,
        jsonl_path: Optional[str] = None,
        keep_records: bool = True,
    ) -> None:
        self.enabled = enabled
        self.jsonl_path = jsonl_path
        self.keep_records = keep_records
        #: (flow_id, message_id, hop_id) -> samples in delivery order.
        self.series: Dict[Tuple[int, int, int], List[INTSample]] = {}
        self.packets_collected = 0
        self.records_collected = 0
        self.overflowed_packets = 0
        self._sink: Optional[IO[str]] = None
        registry = get_registry()
        self._m_records = registry.counter(
            "repro_int_records_total",
            "INT hop records delivered to the collector",
            ("decision",),
        )
        self._m_depth = registry.histogram(
            "repro_int_queue_depth_bytes",
            "egress queue depth observed by delivered INT records",
            ("hop",),
            start=1.0,
            factor=4.0,
            num_buckets=20,
        )

    def collect(self, packet: "Packet") -> int:
        """Sink one delivered packet's band; returns records collected."""
        if not self.enabled:
            return 0
        ext = packet.int_ext
        if ext is None or not ext.records:
            return 0
        header = packet.grad_header
        message_id = header.message_id if header is not None else 0
        flow_id = packet.flow_id
        self.packets_collected += 1
        if ext.overflowed:
            self.overflowed_packets += 1
        for record in ext.records:
            key = (flow_id, message_id, record.hop)
            if self.keep_records:
                self.series.setdefault(key, []).append(
                    INTSample(seq=packet.seq, packet_id=packet.packet_id, record=record)
                )
            self.records_collected += 1
            self._m_records.inc(decision=decision_name(record.decision))
            self._m_depth.observe(record.queue_depth_bytes, hop=hop_name(record.hop))
            if self.jsonl_path is not None:
                if self._sink is None:
                    self._sink = open(self.jsonl_path, "w", encoding="utf-8")
                self._sink.write(
                    json.dumps(self._record_json(flow_id, message_id, packet.seq, record),
                               sort_keys=True)
                    + "\n"
                )
        return len(ext.records)

    @staticmethod
    def _record_json(
        flow_id: int, message_id: int, seq: int, record: INTHopRecord
    ) -> Dict[str, object]:
        return {
            "flow": flow_id,
            "message": message_id,
            "seq": seq,
            "hop": record.hop,
            "hop_name": hop_name(record.hop),
            "t": record.sim_time,
            "queue_depth_bytes": record.queue_depth_bytes,
            "fill_permille": record.fill_permille,
            "decision": decision_name(record.decision),
            "reason": reason_name(record.reason),
            "aux": record.aux,
        }

    # -- analysis -----------------------------------------------------------

    def hops_seen(self) -> List[str]:
        """Names of every hop that contributed a record, sorted."""
        return sorted({hop_name(hop) for _, _, hop in self.series})

    def depth_series(self, flow_id: int, message_id: int, hop: str) -> List[Tuple[float, int]]:
        """(sim_time, queue_depth_bytes) pairs for one congestion series."""
        samples = self.series.get((flow_id, message_id, hop_id(hop)), [])
        return [(s.record.sim_time, s.record.queue_depth_bytes) for s in samples]

    def decision_counts(self) -> Dict[str, int]:
        """Delivered records per decision, over every series."""
        counts: Dict[str, int] = {}
        for samples in self.series.values():
            for sample in samples:
                name = decision_name(sample.record.decision)
                counts[name] = counts.get(name, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> Dict[str, object]:
        """Deterministic JSON-ready digest."""
        return {
            "packets": self.packets_collected,
            "records": self.records_collected,
            "overflowed_packets": self.overflowed_packets,
            "hops": self.hops_seen(),
            "decisions": self.decision_counts(),
            "series": len(self.series),
        }

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def clear(self) -> None:
        self.series.clear()
        self.packets_collected = 0
        self.records_collected = 0
        self.overflowed_packets = 0


_COLLECTOR = INTCollector(enabled=False)


def get_int_collector() -> INTCollector:
    """The process-wide collector (disabled unless someone enabled it)."""
    return _COLLECTOR


def set_int_collector(collector: INTCollector) -> INTCollector:
    """Install ``collector`` process-wide; returns the previous one."""
    global _COLLECTOR
    previous = _COLLECTOR
    _COLLECTOR = collector
    return previous


def int_to(path: Optional[str], capacity: int = DEFAULT_INT_CAPACITY) -> INTCollector:
    """Enable INT stamping + collection, streaming records to ``path``."""
    enable_int(capacity=capacity)
    collector = INTCollector(enabled=True, jsonl_path=path)
    set_int_collector(collector)
    return collector
