"""Render a per-run report from a JSONL trace file.

Usage::

    python -m repro.obs.report trace.jsonl
    repro-report trace.jsonl --title "congested dumbbell"

The input is the event stream written by
:class:`repro.obs.trace.Tracer` (one JSON object per line); the output
is the same report :func:`repro.obs.export.build_report` produces
in-process.
"""

from __future__ import annotations

import argparse
import logging
import sys

from .export import build_report, read_jsonl

_log = logging.getLogger("repro.obs.report")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Render a run report from a repro observability JSONL trace.",
    )
    parser.add_argument("trace", help="path to the JSONL trace file")
    parser.add_argument(
        "--title", default="run report", help="report heading (default: 'run report')"
    )
    args = parser.parse_args(argv)

    from .. import configure_logging

    configure_logging()
    try:
        events = read_jsonl(args.trace)
    except OSError as exc:
        _log.error("cannot read trace %s: %s", args.trace, exc)
        return 1
    except ValueError as exc:  # malformed JSON line
        _log.error("trace %s is not valid JSONL: %s", args.trace, exc)
        return 1
    if not events:
        _log.warning("trace %s holds no events", args.trace)
    _log.info("%s", build_report(events, title=args.title))
    return 0


if __name__ == "__main__":
    sys.exit(main())
