"""Exporters: Prometheus text dump, JSONL IO, per-run report.

Three consumers, three formats:

* a scrape endpoint or tee file wants :func:`prometheus_text`;
* offline analysis wants the raw JSONL trace (:func:`read_jsonl`);
* a human at the end of a run wants :func:`build_report` — the
  paper-shaped summary (trim fraction, bytes saved, queue percentiles,
  NMSE, per-stage time breakdown) computed *from the trace events*, so
  the same report renders live in-process or later from a file.
"""

from __future__ import annotations

import json
import math
from collections import defaultdict
from html import escape
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence

from .metrics import Histogram, MetricsRegistry, _HistogramSeries, get_registry

if TYPE_CHECKING:  # pragma: no cover - timeline imports this module
    from .timeline import Timeline

__all__ = ["prometheus_text", "read_jsonl", "build_report", "timeline_html"]


# -- Prometheus exposition ---------------------------------------------------


def _label_str(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{v}"' for n, v in zip(names, values))
    return "{" + inner + "}"


def _fmt_num(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Render the registry in the Prometheus text exposition format."""
    registry = registry or get_registry()
    lines: List[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for key, value in metric.series():
            if isinstance(value, _HistogramSeries):
                assert isinstance(metric, Histogram)
                cumulative = 0
                for bound, count in zip(metric.bounds, value.buckets):
                    cumulative += count
                    label = _label_str(
                        metric.label_names + ("le",), key + (repr(bound),)
                    )
                    lines.append(f"{metric.name}_bucket{label} {cumulative}")
                label = _label_str(metric.label_names + ("le",), key + ("+Inf",))
                lines.append(f"{metric.name}_bucket{label} {value.count}")
                base = _label_str(metric.label_names, key)
                lines.append(f"{metric.name}_sum{base} {repr(value.sum)}")
                lines.append(f"{metric.name}_count{base} {value.count}")
            else:
                label = _label_str(metric.label_names, key)
                lines.append(f"{metric.name}{label} {_fmt_num(float(value))}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- JSONL -------------------------------------------------------------------


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a trace file written by :class:`repro.obs.trace.Tracer`."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# -- per-run report ----------------------------------------------------------


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation percentile on pre-sorted data."""
    if not sorted_values:
        return 0.0
    rank = q / 100.0 * (len(sorted_values) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return sorted_values[lo]
    frac = rank - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def _rows(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    cells = [list(map(str, headers))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    out = [
        "  " + " | ".join(h.ljust(w) for h, w in zip(cells[0], widths)),
        "  " + "-+-".join("-" * w for w in widths),
    ]
    for row in cells[1:]:
        out.append("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return out


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def _fmt_bytes(n: float) -> str:
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {unit}"
    return f"{int(n)} B"


def build_report(
    events: Sequence[Mapping[str, Any]],
    registry: Optional[MetricsRegistry] = None,
    title: str = "run report",
) -> str:
    """Human-readable per-run summary from a trace event stream.

    ``events`` are dicts in the JSONL schema (``TraceEvent.to_json``):
    in-process callers pass ``[e.to_json() for e in tracer.events]``,
    the CLI passes :func:`read_jsonl` output.  Pass a registry to append
    a metrics snapshot section.
    """
    lines: List[str] = [f"== {title} =="]

    sim_times = [e["sim_time"] for e in events if e.get("sim_time") is not None]
    span = f", sim span {_fmt_s(max(sim_times) - min(sim_times))}" if sim_times else ""
    lines.append(f"{len(events)} trace events{span}")

    by_name: Dict[str, List[Mapping[str, Any]]] = defaultdict(list)
    for ev in events:
        by_name[ev.get("name", "?")].append(ev)

    # -- switch behaviour: the paper's central rate claims ------------------
    forwards = len(by_name.get("switch.forward", ()))
    trims = len(by_name.get("switch.trim", ()))
    drops = len(by_name.get("switch.drop", ()))
    total = forwards + trims + drops
    if total:
        bytes_saved = sum(
            ev.get("fields", {}).get("bytes_saved", 0)
            for ev in by_name.get("switch.trim", ())
        )
        drop_kinds: Dict[str, int] = defaultdict(int)
        for ev in by_name.get("switch.drop", ()):
            drop_kinds[ev.get("fields", {}).get("kind", "?")] += 1
        lines.append("")
        lines.append("-- switch --")
        lines.append(
            f"  enqueues {total}: forwarded {forwards}, "
            f"trimmed {trims}, dropped {drops}"
        )
        lines.append(
            f"  trim fraction {trims / total:.4f}, "
            f"drop fraction {drops / total:.4f}, "
            f"bytes saved by trimming {_fmt_bytes(bytes_saved)}"
        )
        if drop_kinds:
            kinds = ", ".join(f"{k}: {v}" for k, v in sorted(drop_kinds.items()))
            lines.append(f"  drops by kind: {kinds}")

    # -- fabric self-healing ------------------------------------------------
    reroutes = by_name.get("switch.reroute", ())
    fabric_drops: Dict[str, int] = defaultdict(int)
    for ev in by_name.get("switch.drop", ()):
        kind = ev.get("fields", {}).get("kind")
        if kind in ("blackhole", "switch-down", "port-blackout", "no-route"):
            fabric_drops[str(kind)] += 1
    if reroutes or fabric_drops:
        lines.append("")
        lines.append("-- fabric self-healing --")
        per_switch: Dict[str, int] = defaultdict(int)
        for ev in reroutes:
            per_switch[str(ev.get("fields", {}).get("switch", "?"))] += 1
        detail = (
            " (" + ", ".join(f"{s}: {n}" for s, n in sorted(per_switch.items())) + ")"
            if per_switch
            else ""
        )
        lines.append(f"  flow reroutes: {len(reroutes)}{detail}")
        if fabric_drops:
            lines.append(
                "  failure drops: "
                + ", ".join(f"{k}: {v}" for k, v in sorted(fabric_drops.items()))
            )

    # -- queue depth percentiles -------------------------------------------
    queue_samples: Dict[str, List[float]] = defaultdict(list)
    for ev in by_name.get("queue.sample", ()):
        fields = ev.get("fields", {})
        queue_samples[str(fields.get("queue", "?"))].append(
            float(fields.get("bytes_queued", 0))
        )
    if queue_samples:
        lines.append("")
        lines.append("-- queue depth (bytes) --")
        rows = []
        for label in sorted(queue_samples):
            values = sorted(queue_samples[label])
            rows.append(
                [
                    label,
                    len(values),
                    int(_percentile(values, 50)),
                    int(_percentile(values, 90)),
                    int(_percentile(values, 99)),
                    int(values[-1]),
                ]
            )
        lines.extend(_rows(["queue", "samples", "p50", "p90", "p99", "max"], rows))

    # -- transport deliveries ----------------------------------------------
    deliveries = by_name.get("transport.deliver", ())
    if deliveries:
        durations = [
            float(ev["fields"]["fct_s"])
            for ev in deliveries
            if "fct_s" in ev.get("fields", {})
        ]
        lines.append("")
        lines.append("-- transport --")
        line = f"  messages delivered: {len(deliveries)}"
        if durations:
            line += (
                f", completion time mean {_fmt_s(sum(durations) / len(durations))}"
                f" / max {_fmt_s(max(durations))}"
            )
        lines.append(line)
        retx = sum(
            ev.get("fields", {}).get("retransmissions", 0) for ev in deliveries
        )
        lines.append(f"  retransmissions: {retx}")

    # -- gradient quality ---------------------------------------------------
    nmse_values = [
        float(ev["fields"]["nmse"])
        for ev in events
        if "nmse" in ev.get("fields", {})
        and ev["fields"]["nmse"] is not None
        and math.isfinite(float(ev["fields"]["nmse"]))
    ]
    if nmse_values:
        lines.append("")
        lines.append("-- gradient quality --")
        lines.append(
            f"  NMSE over {len(nmse_values)} decodes: "
            f"mean {sum(nmse_values) / len(nmse_values):.4g}, "
            f"worst {max(nmse_values):.4g}, last {nmse_values[-1]:.4g}"
        )

    # -- per-stage wall-time breakdown -------------------------------------
    staged: Dict[str, List[float]] = defaultdict(list)
    for ev in events:
        if ev.get("duration_s") is not None:
            staged[ev.get("name", "?")].append(float(ev["duration_s"]))
    if staged:
        lines.append("")
        lines.append("-- per-stage wall time --")
        rows = []
        grand_total = sum(sum(v) for v in staged.values())
        for name in sorted(staged, key=lambda n: -sum(staged[n])):
            durations = staged[name]
            stage_total = sum(durations)
            share = stage_total / grand_total if grand_total else 0.0
            rows.append(
                [
                    name,
                    len(durations),
                    _fmt_s(stage_total),
                    _fmt_s(stage_total / len(durations)),
                    f"{share:.1%}",
                ]
            )
        lines.extend(_rows(["stage", "events", "total", "mean", "share"], rows))

    # -- optional metrics snapshot ------------------------------------------
    if registry is not None:
        snapshot = registry.snapshot()
        flat_rows = []
        for name, family in snapshot.items():
            for label, value in family.items():
                if isinstance(value, dict):  # histogram summary
                    rendered = f"count={value['count']} sum={value['sum']:.6g}"
                else:
                    rendered = _fmt_num(float(value))
                flat_rows.append([name, label or "-", rendered])
        if flat_rows:
            lines.append("")
            lines.append("-- metrics snapshot --")
            lines.extend(_rows(["metric", "labels", "value"], flat_rows))

    return "\n".join(lines)


# -- static HTML timeline ----------------------------------------------------

_TIMELINE_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       background: #fafafa; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
table.grid { border-collapse: collapse; }
table.grid td, table.grid th { padding: 0; }
table.grid th.label { text-align: right; padding-right: 0.6em;
       font-weight: 500; font-size: 0.8em; white-space: nowrap; }
table.grid td.cell { width: 10px; height: 18px; min-width: 10px; }
table.grid td.peak { padding-left: 0.6em; font-size: 0.75em; color: #666;
       white-space: nowrap; }
table.data { border-collapse: collapse; font-size: 0.85em; }
table.data td, table.data th { border: 1px solid #ddd; padding: 2px 8px;
       text-align: left; }
ul.marks { font-size: 0.85em; }
p.meta { color: #666; font-size: 0.85em; }
""".strip()

#: Row key -> RGB used for the activity heat rows.
_ROW_COLORS = {
    "queue": (31, 119, 180),
    "forward": (44, 160, 44),
    "trim": (255, 127, 14),
    "drop": (214, 39, 40),
    "blackhole": (64, 64, 64),
    "retransmit": (148, 103, 189),
}


def _heat_row(
    label: str, values: Sequence[float], rgb: Sequence[int], peak_text: str
) -> str:
    peak = max(values) if values else 0.0
    cells = []
    for v in values:
        alpha = 0.0 if peak <= 0 else max(0.0, min(v / peak, 1.0))
        style = (
            f"background: rgba({rgb[0]},{rgb[1]},{rgb[2]},{alpha:.3f});"
            if alpha > 0
            else "background: #eee;"
        )
        cells.append(f'<td class="cell" style="{style}" title="{_fmt_num(v)}"></td>')
    return (
        f'<tr><th class="label">{escape(label)}</th>{"".join(cells)}'
        f'<td class="peak">{escape(peak_text)}</td></tr>'
    )


def timeline_html(timeline: "Timeline", title: str = "congestion timeline") -> str:
    """Render a :class:`~repro.obs.timeline.Timeline` as one static HTML page.

    Self-contained (inline CSS, no scripts, no external assets) so CI
    can upload it as an artifact and it renders anywhere.
    """
    tl = timeline
    parts: List[str] = [
        "<!doctype html>",
        '<html><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_TIMELINE_CSS}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
        f'<p class="meta">{tl.events_seen} trace events, sim span '
        f"{_fmt_s(tl.t1 - tl.t0)} in {tl.bins} bins of {_fmt_s(tl.bin_s)} "
        f"(t0 = {tl.t0:.6f} s)</p>",
    ]
    if tl.queues:
        parts.append("<h2>Queue depth (peak bytes per bin)</h2>")
        parts.append('<table class="grid">')
        for label in sorted(tl.queues):
            series = tl.queues[label]
            parts.append(
                _heat_row(
                    label,
                    series,
                    _ROW_COLORS["queue"],
                    f"peak {_fmt_bytes(max(series))}",
                )
            )
        parts.append("</table>")
    if tl.activity:
        parts.append("<h2>Switch / transport activity (events per bin)</h2>")
        parts.append('<table class="grid">')
        for row in ("forward", "trim", "drop", "blackhole", "retransmit"):
            series = tl.activity.get(row)
            if series is None:
                continue
            parts.append(
                _heat_row(
                    row,
                    [float(v) for v in series],
                    _ROW_COLORS[row],
                    f"total {sum(series)}",
                )
            )
        parts.append("</table>")
    if tl.marks:
        parts.append("<h2>Events</h2>")
        parts.append('<ul class="marks">')
        for t, name, detail in tl.marks:
            suffix = f" ({escape(detail)})" if detail else ""
            parts.append(f"<li>t={t:.6f} s — {escape(name)}{suffix}</li>")
        parts.append("</ul>")
    if tl.layers:
        headers = list(tl.layers[0].keys())
        label = "Per-layer" if "layer" in headers else "Per-flow"
        parts.append(f"<h2>{label} trimming</h2>")
        parts.append('<table class="data"><tr>')
        parts.extend(f"<th>{escape(str(h))}</th>" for h in headers)
        parts.append("</tr>")
        for row in tl.layers:
            parts.append("<tr>")
            for key in headers:
                value = row.get(key)
                text = f"{value:.4f}" if isinstance(value, float) else str(value)
                parts.append(f"<td>{escape(text)}</td>")
            parts.append("</tr>")
        parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
