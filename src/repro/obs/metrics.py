"""Process-wide metrics registry: counters, gauges, log-scale histograms.

The rate claims at the heart of the paper — trim fraction under
congestion, bytes saved per round, per-stage time — are all *counters
divided by counters*.  This module gives every layer of the pipeline one
place to put those counters so a run can be summarized without chasing
per-object attributes (``SwitchStats`` here, ``Link.packets_sent``
there, ``ChannelStats`` somewhere else).

Design constraints, in order:

1. **Always-on must be cheap.**  A metric update on the packet hot path
   is one ``enabled`` check, one tuple key, one dict write.  Hot callers
   bind their label set once (:meth:`Counter.bind`) so per-packet cost
   is a bound-method call and a dict ``get``/``set``.
2. **Disabled must be a no-op.**  Every mutator checks
   ``registry.enabled`` first and returns immediately; reads still work
   (they just see zeros).
3. **No dependencies.**  The registry imports nothing from the rest of
   :mod:`repro`, so any layer may import it without cycles.

The process-wide default registry is reachable via :func:`get_registry`
and honours ``REPRO_OBS_METRICS=0`` to start disabled.  Tests that need
isolation install a fresh registry with :func:`set_registry` (and should
restore the previous one afterwards).
"""

from __future__ import annotations

import math
import os
import weakref
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


class Metric:
    """Base class: a named family of labelled series."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        registry: "MetricsRegistry",
        label_names: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._registry = registry
        self._series: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        try:
            return tuple(str(labels[n]) for n in self.label_names)
        except KeyError as exc:
            raise ValueError(f"{self.name}: missing label {exc}") from exc

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label-values, value) pairs in sorted label order."""
        self._registry.flush()
        return sorted(self._series.items())

    def labels_of(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    def clear(self) -> None:
        self._series.clear()


class _BoundScalar:
    """A (metric, label-key) pair pre-resolved for hot paths."""

    __slots__ = ("_metric", "_key", "_registry", "_series")

    def __init__(self, metric: Metric, key: Tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key
        # Aliased here because inc() runs per packet: the registry object
        # persists for the metric's lifetime and Metric.clear() empties
        # the series dict in place, so both references stay valid.
        self._registry = metric._registry
        self._series = metric._series

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        series = self._series
        key = self._key
        series[key] = series.get(key, 0.0) + amount

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self._series[self._key] = float(value)

    @property
    def value(self) -> float:
        self._registry.flush()
        return float(self._series.get(self._key, 0.0))


class Counter(Metric):
    """Monotonically increasing count (packets, bytes, rounds)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up (got {amount})")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        self._registry.flush()
        return float(self._series.get(self._key(labels), 0.0))

    def total(self) -> float:
        """Sum across every label combination."""
        self._registry.flush()
        return float(sum(self._series.values()))

    def bind(self, **labels: object) -> _BoundScalar:
        """Pre-resolve a label set for per-packet use."""
        return _BoundScalar(self, self._key(labels))


class Gauge(Metric):
    """Point-in-time value (queue depth, epoch, loss)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        self._registry.flush()
        return float(self._series.get(self._key(labels), 0.0))

    def bind(self, **labels: object) -> _BoundScalar:
        return _BoundScalar(self, self._key(labels))


class _HistogramSeries:
    """Bucket counts + running sum for one label combination."""

    __slots__ = ("buckets", "count", "sum")

    def __init__(self, num_buckets: int) -> None:
        self.buckets = [0] * (num_buckets + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0


class _BoundHistogram:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "Histogram", key: Tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key

    def observe(self, value: float) -> None:
        metric = self._metric
        if not metric._registry.enabled:
            return
        metric._observe(self._key, value)


class Histogram(Metric):
    """Log-scale histogram: geometric bucket bounds.

    Buckets span ``[start, start * factor ** (num_buckets - 1)]``; the
    default covers nanoseconds to ~20 minutes for time-like values and
    single bytes to ~1 TB for size-like values with one parametrisation
    (1e-9 .. 1e12 at decade spacing).  Values above the last bound land
    in an overflow bucket; percentiles are interpolated geometrically
    inside the owning bucket, which is accurate to the bucket factor.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        registry: "MetricsRegistry",
        label_names: Sequence[str] = (),
        start: float = 1e-9,
        factor: float = 10.0,
        num_buckets: int = 22,
    ) -> None:
        super().__init__(name, help_text, registry, label_names)
        if start <= 0 or factor <= 1 or num_buckets < 1:
            raise ValueError("need start > 0, factor > 1, num_buckets >= 1")
        self.bounds = [start * factor**i for i in range(num_buckets)]
        self._log_start = math.log(start)
        self._log_factor = math.log(factor)

    # -- recording ----------------------------------------------------------

    def _bucket_index(self, value: float) -> int:
        if value <= self.bounds[0]:
            return 0
        if value > self.bounds[-1]:
            return len(self.bounds)  # overflow
        # Direct log-index beats a bisect on the hot path.
        idx = int(math.ceil((math.log(value) - self._log_start) / self._log_factor - 1e-12))
        return min(max(idx, 0), len(self.bounds) - 1)

    def _observe(self, key: Tuple[str, ...], value: float) -> None:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.bounds))
        series.buckets[self._bucket_index(value)] += 1
        series.count += 1
        series.sum += value

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        self._observe(self._key(labels), value)

    def bind(self, **labels: object) -> _BoundHistogram:
        return _BoundHistogram(self, self._key(labels))

    # -- queries ------------------------------------------------------------

    def _get(self, labels: Mapping[str, object]) -> Optional[_HistogramSeries]:
        series = self._series.get(self._key(labels))
        return series if isinstance(series, _HistogramSeries) else None

    def count(self, **labels: object) -> int:
        series = self._get(labels)
        return series.count if series else 0

    def total(self, **labels: object) -> float:
        series = self._get(labels)
        return series.sum if series else 0.0

    def mean(self, **labels: object) -> float:
        series = self._get(labels)
        return series.sum / series.count if series and series.count else 0.0

    def percentile(self, q: float, **labels: object) -> float:
        """Estimated q-th percentile (q in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        series = self._get(labels)
        if series is None or series.count == 0:
            return 0.0
        rank = q / 100.0 * series.count
        seen = 0
        for i, n in enumerate(series.buckets):
            seen += n
            if seen >= rank and n:
                if i >= len(self.bounds):
                    return self.bounds[-1] * math.sqrt(
                        self.bounds[-1] / self.bounds[-2]
                    )
                lower = self.bounds[i - 1] if i else self.bounds[0] / math.e
                return math.sqrt(lower * self.bounds[i])
        return self.bounds[-1]


class MetricsRegistry:
    """Name -> metric family; one per process by default.

    Args:
        enabled: start collecting immediately (default: yes, unless
            ``REPRO_OBS_METRICS=0`` is set in the environment).
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        if enabled is None:
            enabled = os.environ.get("REPRO_OBS_METRICS", "1") != "0"
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}
        # Deferred hot-path counters (see add_flush_hook).
        self._flush_hooks: List[object] = []
        self._flushing = False

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every series; metric families stay registered."""
        for metric in self._metrics.values():
            metric.clear()

    # -- deferred counters --------------------------------------------------

    def add_flush_hook(self, fn: Callable[[], None]) -> None:
        """Register a hook that publishes deferred counters on read.

        Per-packet call sites (link serializers, switch forwarding) keep
        plain integer attributes on their own objects and publish them
        into the registry only when something *reads* it — every read
        API calls :meth:`flush` first, so observers still see exact
        values.  Hooks must be idempotent (``set``, not ``inc``).  Bound
        methods are held weakly: a dead owner silently unregisters, so
        the process-wide registry never pins networks alive.
        """
        if hasattr(fn, "__self__"):
            self._flush_hooks.append(weakref.WeakMethod(fn))
        else:
            self._flush_hooks.append(weakref.ref(fn))

    def flush(self) -> None:
        """Run every live flush hook (reentrancy-safe, prunes dead)."""
        if self._flushing or not self._flush_hooks:
            return
        self._flushing = True
        try:
            dead = False
            for ref in self._flush_hooks:
                fn = ref()
                if fn is None:
                    dead = True
                else:
                    fn()
            if dead:
                self._flush_hooks = [r for r in self._flush_hooks if r() is not None]
        finally:
            self._flushing = False

    # -- registration -------------------------------------------------------

    def _register(self, cls, name: str, help_text: str, labels: Sequence[str], **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names}"
                )
            return existing
        metric = cls(name, help_text, self, labels, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Counter:
        """Get-or-create a counter family (idempotent)."""
        return self._register(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        start: float = 1e-9,
        factor: float = 10.0,
        num_buckets: int = 22,
    ) -> Histogram:
        return self._register(
            Histogram, name, help_text, labels,
            start=start, factor=factor, num_buckets=num_buckets,
        )

    # -- introspection ------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        """All metric families, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict dump: {metric: {label-string: value}}.

        Histogram series dump as ``{"count": n, "sum": s}``.
        """
        out: Dict[str, Dict[str, object]] = {}
        for metric in self.collect():
            family: Dict[str, object] = {}
            for key, value in metric.series():
                label = ",".join(
                    f"{n}={v}" for n, v in zip(metric.label_names, key)
                )
                if isinstance(value, _HistogramSeries):
                    family[label] = {"count": value.count, "sum": value.sum}
                else:
                    family[label] = value
            out[metric.name] = family
        return out


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the default; returns the previous one.

    Already-constructed instrumented objects keep the registry they
    bound at construction time, so install a fresh registry *before*
    building the network/trainer you want to observe in isolation.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
