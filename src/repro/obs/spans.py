"""Causal span tracing over the modeled clock.

A *span* is a named interval with a parent — together they form the
causal tree of a training run::

    train.round
      └─ collective.aggregate
           └─ channel.transfer
                └─ transport.message
                     └─ transport.packet  (one per emission)

Where the existing :class:`~repro.obs.trace.Tracer` records point
events, :class:`SpanTracer` records *lifecycles*: a span is begun when
work starts and ended when it resolves (delivered, acknowledged,
surrendered), carrying modeled-clock timestamps only.  Because every
timestamp comes from the simulator (never the wall clock), two runs of
the same (scenario, seed) emit byte-identical span JSONL — spans are
reproducible evidence, not best-effort logging.

Parentage is tracked with an explicit context stack: callers wrap the
child-producing region in :meth:`SpanTracer.context` and any span begun
inside inherits the enclosing span as its parent, without the layers
having to thread ids through each other's signatures.

Disabled (the default), ``begin``/``end`` return immediately — hot
paths guard on :attr:`SpanTracer.enabled` exactly like the metrics and
trace layers.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterator, List, Optional

__all__ = ["Span", "SpanTracer", "get_span_tracer", "set_span_tracer", "spans_to"]


@dataclass
class Span:
    """One completed (or in-flight) interval of modeled time."""

    span_id: int
    name: str
    parent_id: Optional[int] = None
    start: Optional[float] = None
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Modeled seconds between start and end, when both are known."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready dict; unknown times/parents are omitted."""
        doc: Dict[str, Any] = {"span_id": self.span_id, "name": self.name}
        if self.parent_id is not None:
            doc["parent_id"] = self.parent_id
        if self.start is not None:
            doc["start"] = self.start
        if self.end is not None:
            doc["end"] = self.end
        duration = self.duration
        if duration is not None:
            doc["duration_s"] = duration
        if self.attrs:
            doc["attrs"] = self.attrs
        return doc


#: Sentinel distinguishing "no parent given, use the context stack"
#: from an explicit ``parent_id=None`` (a deliberate root span).
_INHERIT: Any = object()


class SpanTracer:
    """Begin/end span recorder with a parent-context stack.

    Args:
        enabled: record spans (False = every call is a cheap no-op).
        jsonl_path: stream one JSON line per *ended* span (sorted keys,
            modeled time only — byte-identical across same-seed runs).
        keep_spans: retain ended spans in memory for assertions.
        max_spans: in-memory retention cap (JSONL keeps streaming).
    """

    def __init__(
        self,
        enabled: bool = False,
        jsonl_path: Optional[str] = None,
        keep_spans: bool = True,
        max_spans: int = 1_000_000,
    ) -> None:
        self.enabled = enabled
        self.jsonl_path = jsonl_path
        self.keep_spans = keep_spans
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped_spans = 0
        self._open: Dict[int, Span] = {}
        self._stack: List[int] = []
        self._next_id = 1
        self._sink: Optional[IO[str]] = None

    # -- recording ----------------------------------------------------------

    def begin(
        self,
        name: str,
        t: Optional[float] = None,
        parent_id: Optional[int] = _INHERIT,
        **attrs: Any,
    ) -> Optional[int]:
        """Open a span; returns its id, or None when disabled.

        ``parent_id`` defaults to the innermost :meth:`context` span;
        pass ``parent_id=None`` explicitly to force a root span.
        """
        if not self.enabled:
            return None
        if parent_id is _INHERIT:
            parent_id = self._stack[-1] if self._stack else None
        span_id = self._next_id
        self._next_id += 1
        self._open[span_id] = Span(
            span_id=span_id, name=name, parent_id=parent_id, start=t, attrs=dict(attrs)
        )
        return span_id

    def end(self, span_id: Optional[int], t: Optional[float] = None, **attrs: Any) -> None:
        """Close a span and emit it; unknown/None ids are ignored (so
        callers can hold ``Optional[int]`` without re-checking)."""
        if not self.enabled or span_id is None:
            return
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end = t
        if attrs:
            span.attrs.update(attrs)
        if self.keep_spans:
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.dropped_spans += 1
        if self.jsonl_path is not None:
            if self._sink is None:
                self._sink = open(self.jsonl_path, "w", encoding="utf-8")
            self._sink.write(json.dumps(span.to_json(), sort_keys=True) + "\n")

    @contextmanager
    def context(self, span_id: Optional[int]) -> Iterator[None]:
        """Make ``span_id`` the default parent for spans begun inside."""
        if not self.enabled or span_id is None:
            yield
            return
        self._stack.append(span_id)
        try:
            yield
        finally:
            self._stack.pop()

    # -- inspection ---------------------------------------------------------

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (id order)."""
        return [self._open[sid] for sid in sorted(self._open)]

    def by_name(self, name: str) -> List[Span]:
        """Ended spans with the given name, in end order."""
        return [s for s in self.spans if s.name == name]

    def children(self, span_id: int) -> List[Span]:
        """Ended spans whose parent is ``span_id``."""
        return [s for s in self.spans if s.parent_id == span_id]

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def clear(self) -> None:
        self.spans.clear()
        self._open.clear()
        self._stack.clear()
        self.dropped_spans = 0
        self._next_id = 1


_SPAN_TRACER = SpanTracer(enabled=False)


def get_span_tracer() -> SpanTracer:
    """The process-wide span tracer (disabled unless installed)."""
    return _SPAN_TRACER


def set_span_tracer(tracer: SpanTracer) -> SpanTracer:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _SPAN_TRACER
    previous = _SPAN_TRACER
    _SPAN_TRACER = tracer
    return previous


def spans_to(path: Optional[str]) -> SpanTracer:
    """Enable span tracing, streaming ended spans to ``path``."""
    tracer = SpanTracer(enabled=True, jsonl_path=path)
    set_span_tracer(tracer)
    return tracer
