"""Deterministic fault injection for the simulated trim pipeline.

The subsystem has three layers:

* :mod:`repro.faults.scenarios` — declarative :class:`FaultSpec` /
  :class:`Scenario` schedules plus six named presets;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which arms a
  scenario against a built network through the ``Link.delivery_hook`` /
  ``Link.up`` / ``Switch.set_port_down`` seams, drawing every decision
  from :func:`repro.transforms.prng.shared_generator`;
* :mod:`repro.faults.harness` — :func:`run_scenario`, the shared
  entry point of the ``repro-faults`` CLI, the chaos CI matrix and the
  transport-invariant test suite.

Same scenario + same seed ⇒ byte-identical fault event logs.
"""

from .harness import TRANSPORTS, ScenarioRun, run_scenario
from .injector import FaultInjector
from .scenarios import (
    FAULT_KINDS,
    PRESETS,
    FaultSpec,
    Scenario,
    available_scenarios,
    scenario_by_name,
)

__all__ = [
    "FAULT_KINDS",
    "PRESETS",
    "FaultSpec",
    "Scenario",
    "available_scenarios",
    "scenario_by_name",
    "FaultInjector",
    "TRANSPORTS",
    "ScenarioRun",
    "run_scenario",
]
