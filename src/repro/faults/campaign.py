"""Chaos campaigns: seeded fault sequences over a cluster scenario.

A campaign is the fuzzing layer on top of :mod:`repro.faults`: instead
of hand-writing one :class:`~repro.faults.scenarios.Scenario`, a
:class:`CampaignConfig` *draws* a fault sequence — which fabric devices
break, how, and when — from the seeded PRNG tree, runs it against a
multi-job :class:`~repro.cluster.ClusterScenario`, and checks a set of
declarative invariant :data:`MONITORS`:

* ``training-completes`` — every job trains every epoch and none
  diverges, no matter what the fabric did;
* ``no-livelock`` — the simulator drains within a step bound (waves
  are deadline-bounded, so a stuck flow surfaces here);
* ``ef-telescoping`` — for error-feedback jobs,
  ``sum(delivered) + residual == sum(inputs)`` to float rounding
  (gradient mass is never silently created or destroyed);
* ``int-intact`` — delivered packets still carry parseable INT bands
  with known per-hop decisions (telemetry survives the chaos);
* ``determinism`` — rerunning the same plan yields byte-identical
  reports and fault logs (optional second run).

When a campaign fails, :func:`shrink_plan` reduces it to a minimal
fault sequence that still violates the *same* monitor — the repro you
attach to the bug report instead of the 8-fault haystack.

Determinism contract: a plan is a pure function of its config
(:func:`draw_plan` draws from :func:`repro.transforms.prng.shared_generator`
with ``purpose="campaign"``), and a run is a pure function of the plan,
so campaign JSONL artifacts are byte-identical across repeats.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..transforms.prng import shared_generator
from .injector import FaultInjector
from .scenarios import FaultSpec, Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.topology import Network

__all__ = [
    "CAMPAIGN_KINDS",
    "CampaignConfig",
    "CampaignPlan",
    "CampaignResult",
    "FabricInventory",
    "Monitor",
    "Violation",
    "MONITORS",
    "fabric_inventory",
    "draw_plan",
    "run_campaign",
    "shrink_plan",
    "render_campaign_jsonl",
]

#: Fault kinds a campaign may draw.  All fabric-scoped: worker-scoped
#: kinds (crash/straggler) belong to :mod:`repro.resilience` harnesses.
CAMPAIGN_KINDS = (
    "blackout",
    "port-flap",
    "switch-down",
    "gray-failure",
    "flap",
    "corrupt",
)

#: EF telescoping tolerance: float64 rounding noise, nothing more.
EF_GAP_TOLERANCE = 1e-9


@dataclass(frozen=True)
class CampaignConfig:
    """What to fuzz and how hard.

    Attributes:
        cluster: a :data:`repro.cluster.CLUSTER_PRESETS` name.
        seed: campaign seed — drives the plan draw *and* the run.
        faults: how many fault specs to draw.
        kinds: the fault-kind pool (subset of :data:`CAMPAIGN_KINDS`).
        window_s: fault start times are drawn in ``[0, window_s)``.
        down_min_s / down_max_s: dark-time range for windowed kinds
            (flap/blackout/port-flap/switch-down) and the active-window
            length of per-packet kinds.
        rate_min / rate_max: per-packet probability range.
        ef: force DGC error feedback on every job so the telescoping
            monitor has something to check.
        check_determinism: run the plan twice and require byte-identical
            reports and fault logs (doubles the cost; CI turns it on).
        max_steps: simulator-step bound the no-livelock monitor enforces.
    """

    cluster: str = "idle-1job"
    seed: int = 0
    faults: int = 3
    kinds: Tuple[str, ...] = CAMPAIGN_KINDS
    window_s: float = 2e-3
    down_min_s: float = 0.2e-3
    down_max_s: float = 1.5e-3
    rate_min: float = 0.01
    rate_max: float = 0.2
    ef: bool = True
    check_determinism: bool = False
    max_steps: int = 50_000_000

    def __post_init__(self) -> None:
        if self.faults < 1:
            raise ValueError(f"a campaign draws at least one fault, got {self.faults}")
        unknown = set(self.kinds) - set(CAMPAIGN_KINDS)
        if not self.kinds or unknown:
            raise ValueError(
                f"kinds must be a non-empty subset of {CAMPAIGN_KINDS}, "
                f"got {self.kinds}"
            )
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        if not 0 < self.down_min_s <= self.down_max_s:
            raise ValueError(
                f"need 0 < down_min_s <= down_max_s, got "
                f"[{self.down_min_s}, {self.down_max_s}]"
            )
        if not 0 < self.rate_min <= self.rate_max <= 1:
            raise ValueError(
                f"need 0 < rate_min <= rate_max <= 1, got "
                f"[{self.rate_min}, {self.rate_max}]"
            )
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be positive, got {self.max_steps}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown campaign config keys: {sorted(extra)}")
        payload = dict(data)
        if "kinds" in payload:
            payload["kinds"] = tuple(payload["kinds"])
        return cls(**payload)


@dataclass(frozen=True)
class CampaignPlan:
    """A drawn (or shrunken) fault sequence, ready to run or replay."""

    config: CampaignConfig
    faults: Tuple[FaultSpec, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "faults": [asdict(spec) for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignPlan":
        known = {"config", "faults"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown campaign plan keys: {sorted(extra)}")
        return cls(
            config=CampaignConfig.from_dict(data["config"]),
            faults=tuple(
                spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
                for spec in data.get("faults", ())
            ),
        )


@dataclass(frozen=True)
class FabricInventory:
    """The drawable fault targets of one built network.

    Attributes:
        links: switch-to-switch ``"src->dst"`` labels (per-packet and
            flap/gray targets).
        ports: switch-to-switch ``"<switch>:<neighbor>"`` egress ports
            (blackout / port-flap targets).
        switches: ``"switch:<name>"`` device targets — only switches
            whose every neighbor is another switch (aggregation/core
            tier), so killing one always leaves the edge an equal-cost
            detour and never strands a host behind a dead device.
    """

    links: Tuple[str, ...]
    ports: Tuple[str, ...]
    switches: Tuple[str, ...]


def fabric_inventory(network: "Network") -> FabricInventory:
    """Enumerate the fault targets of ``network``, deterministically."""
    links: List[str] = []
    ports: List[str] = []
    switches: List[str] = []
    for name in sorted(network.switches):
        switch = network.switches[name]
        fabric_neighbors = [n for n in sorted(switch.ports) if n in network.switches]
        for neighbor in fabric_neighbors:
            links.append(f"{name}->{neighbor}")
            ports.append(f"{name}:{neighbor}")
        if fabric_neighbors and len(fabric_neighbors) == len(switch.ports):
            switches.append(f"switch:{name}")
    return FabricInventory(
        links=tuple(links), ports=tuple(ports), switches=tuple(switches)
    )


def _build_cluster_network(config: CampaignConfig) -> "Network":
    """The fabric the campaign's cluster scenario would build."""
    from ..cluster import ClusterDriver, cluster_scenario_by_name

    scenario = cluster_scenario_by_name(config.cluster)
    return ClusterDriver.build_network(scenario, seed=config.seed)


def draw_plan(config: CampaignConfig, network: Optional["Network"] = None) -> CampaignPlan:
    """Draw the campaign's fault sequence from the seeded PRNG tree.

    One ``config`` always yields the same plan: every draw comes from
    ``shared_generator(seed, purpose="campaign")`` over the *sorted*
    target inventory, so the plan (and everything downstream of it) is
    reproducible from the config alone.
    """
    if network is None:
        network = _build_cluster_network(config)
    inventory = fabric_inventory(network)
    kinds = tuple(
        kind
        for kind in config.kinds
        if kind != "switch-down" or inventory.switches
    )
    if not kinds:
        raise ValueError("no drawable fault kinds for this topology")
    gen = shared_generator(config.seed, epoch=0, message_id=0, purpose="campaign")
    specs: List[FaultSpec] = []
    for _ in range(config.faults):
        kind = kinds[int(gen.integers(len(kinds)))]
        start_s = round(float(gen.uniform(0.0, config.window_s)), 9)
        span_s = round(
            float(gen.uniform(config.down_min_s, config.down_max_s)), 9
        )
        if kind in ("blackout", "port-flap"):
            target = inventory.ports[int(gen.integers(len(inventory.ports)))]
            specs.append(FaultSpec(kind, target, start_s=start_s, down_s=span_s))
        elif kind == "switch-down":
            target = inventory.switches[int(gen.integers(len(inventory.switches)))]
            specs.append(FaultSpec(kind, target, start_s=start_s, down_s=span_s))
        elif kind == "flap":
            target = inventory.links[int(gen.integers(len(inventory.links)))]
            specs.append(FaultSpec(kind, target, start_s=start_s, down_s=span_s))
        elif kind == "gray-failure":
            target = inventory.links[int(gen.integers(len(inventory.links)))]
            rate = round(float(gen.uniform(config.rate_min, config.rate_max)), 9)
            corrupt = round(float(gen.uniform(0.0, config.rate_max)), 9)
            specs.append(
                FaultSpec(
                    kind,
                    target,
                    rate=rate,
                    corrupt_rate=corrupt,
                    start_s=start_s,
                    stop_s=round(start_s + span_s, 9),
                )
            )
        else:  # corrupt
            target = inventory.links[int(gen.integers(len(inventory.links)))]
            rate = round(float(gen.uniform(config.rate_min, config.rate_max)), 9)
            specs.append(
                FaultSpec(
                    kind,
                    target,
                    rate=rate,
                    start_s=start_s,
                    stop_s=round(start_s + span_s, 9),
                )
            )
    return CampaignPlan(config=config, faults=tuple(specs))


# -- invariant monitors -------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One invariant breach, JSON-ready."""

    monitor: str
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {"monitor": self.monitor, "detail": self.detail}


@dataclass
class _RunArtifacts:
    """Everything a monitor may inspect after one cluster run."""

    plan: CampaignPlan
    report: Dict[str, Any]
    driver: Any
    injector: FaultInjector
    int_summary: Dict[str, Any]


@dataclass(frozen=True)
class Monitor:
    """A named invariant over a finished campaign run."""

    name: str
    description: str
    check: Callable[[_RunArtifacts], List[str]]


def _check_training_completes(run: _RunArtifacts) -> List[str]:
    problems: List[str] = []
    jobs: Dict[str, Dict[str, Any]] = run.report["jobs"]
    for spec in run.driver.scenario.jobs:
        job = jobs[spec.name]
        if job["epochs"] != spec.epochs:
            problems.append(
                f"{spec.name}: trained {job['epochs']}/{spec.epochs} epochs"
            )
        if job["diverged"]:
            problems.append(f"{spec.name}: diverged")
    return problems


def _check_no_livelock(run: _RunArtifacts) -> List[str]:
    steps = int(run.driver.net.sim.events_processed)
    bound = run.plan.config.max_steps
    if steps > bound:
        return [f"simulator ran {steps} steps (bound {bound})"]
    if run.report["waves"] < 1:
        return ["no wave ever completed"]
    return []


def _check_ef_telescoping(run: _RunArtifacts) -> List[str]:
    problems: List[str] = []
    for runtime in run.driver.runtimes:
        if not runtime.spec.ef:
            continue
        gap = float(runtime.hook.ef_telescoping_gap())
        if gap > EF_GAP_TOLERANCE:
            problems.append(
                f"{runtime.spec.name}: telescoping gap {gap:.3e} "
                f"(tolerance {EF_GAP_TOLERANCE:.0e})"
            )
    return problems


def _check_int_intact(run: _RunArtifacts) -> List[str]:
    delivered = sum(
        int(job["bytes_delivered"]) for job in run.report["jobs"].values()
    )
    if delivered == 0:
        # Nothing arrived, nothing to stamp; training-completes will
        # have fired if that is itself a problem.
        return []
    problems: List[str] = []
    if int(run.int_summary["records"]) == 0:
        problems.append("gradient bytes delivered but no INT record survived")
    unknown = [
        name
        for name in run.int_summary.get("decisions", {})
        if name.startswith("unknown")
    ]
    if unknown:
        problems.append(f"unparseable INT decisions: {sorted(unknown)}")
    return problems


#: The declarative invariant set every campaign run is judged against.
#: (``determinism`` is checked by :func:`run_campaign` itself when the
#: config asks for it — it needs a second run, not a post-hoc check.)
MONITORS: Tuple[Monitor, ...] = (
    Monitor(
        "training-completes",
        "every job trains all its epochs and none diverges",
        _check_training_completes,
    ),
    Monitor(
        "no-livelock",
        "the simulator drains within the configured step bound",
        _check_no_livelock,
    ),
    Monitor(
        "ef-telescoping",
        "sum(delivered) + residual == sum(inputs) for every EF job",
        _check_ef_telescoping,
    ),
    Monitor(
        "int-intact",
        "delivered packets carry parseable INT bands with known decisions",
        _check_int_intact,
    ),
)


# -- execution ----------------------------------------------------------------


@dataclass
class CampaignResult:
    """One finished campaign run: the report, the log, the verdict."""

    plan: CampaignPlan
    report: Dict[str, Any]
    fault_events: List[Dict[str, Any]]
    fault_counts: Dict[str, int]
    int_summary: Dict[str, Any]
    violations: Tuple[Violation, ...]
    sim_time_s: float
    steps: int

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violated_monitors(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for violation in self.violations:
            if violation.monitor not in seen:
                seen.append(violation.monitor)
        return tuple(seen)

    def summary(self) -> Dict[str, Any]:
        """Deterministic, JSON-ready digest."""
        return {
            "cluster": self.plan.config.cluster,
            "seed": self.plan.config.seed,
            "faults": len(self.plan.faults),
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "fault_events": len(self.fault_events),
            "sim_time_s": self.sim_time_s,
            "steps": self.steps,
            "int": dict(sorted(self.int_summary.items())),
            "fabric": self.report.get("fabric", {}),
            "ok": self.ok,
            "violated_monitors": list(self.violated_monitors),
        }


def _execute_once(plan: CampaignPlan) -> _RunArtifacts:
    """One seeded cluster run with the plan's faults armed."""
    from ..cluster import ClusterDriver, cluster_scenario_by_name
    from ..obs.int_telemetry import (
        INTCollector,
        disable_int,
        enable_int,
        int_capacity,
        set_int_collector,
    )

    config = plan.config
    scenario = cluster_scenario_by_name(config.cluster)
    if config.ef:
        scenario = replace(
            scenario, jobs=tuple(replace(job, ef=True) for job in scenario.jobs)
        )
    driver = ClusterDriver(scenario, seed=config.seed)
    wrapper = Scenario(
        name=f"campaign-{config.cluster}-{config.seed}",
        description="drawn chaos-campaign fault sequence",
        faults=plan.faults,
        duration_s=1.0,
    )
    injector = FaultInjector(driver.net, wrapper, root_seed=config.seed)
    injector.install()
    previous_capacity = int_capacity()
    collector = INTCollector(enabled=True)
    previous_collector = set_int_collector(collector)
    enable_int()
    try:
        report = driver.run()
    finally:
        set_int_collector(previous_collector)
        if previous_capacity is None:
            disable_int()
        else:
            enable_int(previous_capacity)
    return _RunArtifacts(
        plan=plan,
        report=report,
        driver=driver,
        injector=injector,
        int_summary=collector.summary(),
    )


def run_campaign(plan: CampaignPlan) -> CampaignResult:
    """Run ``plan`` once (twice under ``check_determinism``) and judge it."""
    run = _execute_once(plan)
    violations: List[Violation] = []
    for monitor in MONITORS:
        for detail in monitor.check(run):
            violations.append(Violation(monitor=monitor.name, detail=detail))
    if plan.config.check_determinism:
        rerun = _execute_once(plan)
        first = json.dumps(run.report, sort_keys=True)
        second = json.dumps(rerun.report, sort_keys=True)
        if first != second:
            violations.append(
                Violation("determinism", "same-plan reports differ byte-for-byte")
            )
        if run.injector.events != rerun.injector.events:
            violations.append(
                Violation("determinism", "same-plan fault event logs differ")
            )
    return CampaignResult(
        plan=plan,
        report=run.report,
        fault_events=list(run.injector.events),
        fault_counts=run.injector.summary(),
        int_summary=run.int_summary,
        violations=tuple(violations),
        sim_time_s=float(run.driver.net.sim.now),
        steps=int(run.driver.net.sim.events_processed),
    )


# -- shrinking ----------------------------------------------------------------


def shrink_plan(
    plan: CampaignPlan,
    monitor: str,
    run: Callable[[CampaignPlan], CampaignResult] = run_campaign,
    trace: Optional[List[Dict[str, Any]]] = None,
) -> CampaignPlan:
    """Reduce ``plan`` to a minimal sequence still violating ``monitor``.

    Greedy delta debugging: repeatedly try dropping one fault at a time,
    keeping any drop after which the *same* monitor still fires, until no
    single fault can be removed (1-minimality).  Deterministic: candidates
    are tried in sequence order, so the same failing plan always shrinks
    to the same minimal repro.

    Args:
        plan: a plan known (or suspected) to violate ``monitor``.
        monitor: the monitor name the shrunken plan must keep violating.
        run: the campaign runner (injectable for fast/offline shrinks).
        trace: optional sink for one record per candidate tried.
    """
    current = list(plan.faults)
    if monitor not in run(replace(plan, faults=tuple(current))).violated_monitors:
        raise ValueError(f"plan does not violate monitor {monitor!r}; nothing to shrink")
    changed = True
    while changed and len(current) > 1:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1 :]
            result = run(replace(plan, faults=tuple(candidate)))
            still_failing = monitor in result.violated_monitors
            if trace is not None:
                trace.append(
                    {
                        "kept": len(candidate),
                        "dropped": asdict(current[index]),
                        "still_failing": still_failing,
                    }
                )
            if still_failing:
                current = candidate
                changed = True
                break
    return replace(plan, faults=tuple(current))


# -- artifacts ----------------------------------------------------------------


def render_campaign_jsonl(result: CampaignResult) -> List[str]:
    """The deterministic JSONL artifact for one campaign run.

    One ``plan`` line, one ``fault`` line per injected event, one
    ``violation`` line per breach, then a single ``summary`` record —
    all with sorted keys and simulation time only, so two runs of the
    same plan produce byte-identical files.
    """
    lines = [json.dumps({"kind": "plan", **result.plan.to_dict()}, sort_keys=True)]
    lines.extend(
        json.dumps({"kind": "fault", **event}, sort_keys=True)
        for event in result.fault_events
    )
    lines.extend(
        json.dumps({"kind": "violation", **violation.to_dict()}, sort_keys=True)
        for violation in result.violations
    )
    lines.append(json.dumps({"kind": "summary", **result.summary()}, sort_keys=True))
    return lines
