"""Declarative fault scenarios: what breaks, where, when, how hard.

A :class:`FaultSpec` is one scheduled fault stream — corruption on a
link, ACK loss, duplication, reordering jitter, a link flap, a switch
port blackout, a worker crash, a persistent straggler, a whole-device
switch death, a layer-1 port flap the control plane never sees, or a
gray failure that silently eats packets while the port stays "up" —
and a :class:`Scenario` is a named bundle of specs plus the
topology/workload shape to run them against.  Everything is plain
data: scenarios serialize to/from dicts, so a JSON file is a valid
scenario definition and the preset table below is just eleven of them.

Determinism contract: a scenario carries **no randomness of its own**.
All random draws happen inside :class:`repro.faults.FaultInjector`
through :func:`repro.transforms.prng.shared_generator` keyed by the run
seed and the spec's index, so one ``(scenario, seed)`` pair always
produces the same fault stream — byte-identical event logs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "Scenario",
    "PRESETS",
    "available_scenarios",
    "scenario_by_name",
]

#: Fault kinds the injector knows how to apply.
FAULT_KINDS = (
    "corrupt",
    "ack-loss",
    "duplicate",
    "reorder",
    "flap",
    "blackout",
    "crash",
    "straggler",
    "switch-down",
    "port-flap",
    "gray-failure",
)

#: Kinds that draw a Bernoulli decision per packet (need ``rate``).
_PER_PACKET = ("corrupt", "ack-loss", "duplicate", "reorder", "straggler")

#: Kinds scoped to a whole worker (``target="worker:<rank>"``) rather
#: than a single link.  In the network harness rank ``r`` maps to host
#: ``tx<r>``; in the DDP trainer the same spec drives
#: :class:`repro.resilience.WorkerFaultPlan`.
_WORKER_SCOPED = ("crash", "straggler")

#: Kinds scoped to one egress port (``target="<switch>:<neighbor>"``).
#: ``blackout`` is FIB-visible (the switch reroutes after convergence);
#: ``port-flap`` is a layer-1 flap the control plane never hears about.
_PORT_SCOPED = ("blackout", "port-flap")


@dataclass(frozen=True)
class FaultSpec:
    """One fault stream against one target.

    Attributes:
        fault: one of :data:`FAULT_KINDS`.
        target: a link label ``"src->dst"`` (per-packet kinds, ``flap``
            and ``gray-failure``), ``"<switch>:<neighbor>"``
            (``blackout``/``port-flap``) or ``"switch:<name>"``
            (``switch-down``).
        rate: per-packet probability for the per-packet kinds; the
            silent-drop probability of a ``gray-failure``.
        start_s: simulation time the fault becomes active.
        stop_s: simulation time it stops (None = whole run).
        period_s: flap cycle length (down + up); 0 = a single flap.
        down_s: how long each flap/blackout/switch-down keeps the
            target dark.
        jitter_s: max extra delay for ``reorder``; the fixed extra delay
            of a ``duplicate`` copy or of a ``straggler``'s slow packets.
        bit_flips: payload bits flipped per corrupted packet.
        slow_factor: multiplicative round-time slowdown a ``straggler``
            imposes in the DDP cost-model path (the network path uses
            ``jitter_s`` per packet instead).
        corrupt_rate: ``gray-failure`` only — probability that a packet
            the leg does *not* silently drop gets its payload corrupted
            instead (the flaky-SerDes half of a gray failure).
    """

    fault: str
    target: str
    rate: float = 0.0
    start_s: float = 0.0
    stop_s: Optional[float] = None
    period_s: float = 0.0
    down_s: float = 0.0
    jitter_s: float = 0.0
    bit_flips: int = 8
    slow_factor: float = 1.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.fault not in FAULT_KINDS:
            raise ValueError(f"unknown fault {self.fault!r}; expected one of {FAULT_KINDS}")
        if self.fault in _PER_PACKET and not 0.0 < self.rate <= 1.0:
            raise ValueError(f"{self.fault} needs rate in (0, 1], got {self.rate}")
        if self.fault in ("flap", "switch-down", *_PORT_SCOPED) and self.down_s <= 0.0:
            raise ValueError(f"{self.fault} needs down_s > 0, got {self.down_s}")
        if 0.0 < self.period_s <= self.down_s:
            raise ValueError(
                f"period_s={self.period_s} must exceed down_s={self.down_s}"
            )
        if self.fault in _PORT_SCOPED and ":" not in self.target:
            raise ValueError(
                f"{self.fault} target must be '<switch>:<neighbor>', got {self.target!r}"
            )
        if self.fault == "switch-down":
            if not self.target.startswith("switch:") or not self.target[7:]:
                raise ValueError(
                    f"switch-down target must be 'switch:<name>', got {self.target!r}"
                )
        elif self.fault == "gray-failure":
            if not 0.0 <= self.rate <= 1.0 or not 0.0 <= self.corrupt_rate <= 1.0:
                raise ValueError(
                    "gray-failure rate and corrupt_rate must be in [0, 1], got "
                    f"rate={self.rate}, corrupt_rate={self.corrupt_rate}"
                )
            if self.rate == 0.0 and self.corrupt_rate == 0.0:
                raise ValueError(
                    "gray-failure needs rate > 0 or corrupt_rate > 0 (else it is a no-op)"
                )
            if "->" not in self.target:
                raise ValueError(
                    f"gray-failure target must be 'src->dst', got {self.target!r}"
                )
        elif self.fault in _WORKER_SCOPED:
            if not self.target.startswith("worker:"):
                raise ValueError(
                    f"{self.fault} target must be 'worker:<rank>', got {self.target!r}"
                )
            rank = self.target.split(":", 1)[1]
            if not rank.isdigit():
                raise ValueError(f"{self.fault} worker rank must be an integer, got {rank!r}")
        elif self.fault not in _PORT_SCOPED and "->" not in self.target:
            raise ValueError(f"{self.fault} target must be 'src->dst', got {self.target!r}")
        if self.fault == "straggler" and self.jitter_s <= 0.0:
            raise ValueError(f"straggler needs jitter_s > 0, got {self.jitter_s}")
        if self.fault != "gray-failure" and self.corrupt_rate != 0.0:
            raise ValueError(f"corrupt_rate only applies to gray-failure, got {self.fault}")
        if self.slow_factor < 1.0:
            raise ValueError(f"slow_factor must be >= 1, got {self.slow_factor}")
        if self.start_s < 0 or (self.stop_s is not None and self.stop_s <= self.start_s):
            raise ValueError(f"bad fault window [{self.start_s}, {self.stop_s})")
        if self.bit_flips < 1:
            raise ValueError(f"bit_flips must be >= 1, got {self.bit_flips}")

    @property
    def worker_rank(self) -> int:
        """Rank of a worker-scoped fault's target (crash/straggler only)."""
        if self.fault not in _WORKER_SCOPED:
            raise ValueError(f"{self.fault} is not worker-scoped")
        return int(self.target.split(":", 1)[1])

    def active_at(self, now: float) -> bool:
        """Is this fault's window open at simulation time ``now``?"""
        return now >= self.start_s and (self.stop_s is None or now < self.stop_s)


@dataclass(frozen=True)
class Scenario:
    """A named, fully declarative adversity schedule.

    The topology is always a dumbbell (``tx*``/``rx*`` hosts around the
    ``s0 -> s1`` bottleneck) — the canonical shared-queue shape every
    preset stresses; ``pairs``/rates control congestion pressure and
    ``coords`` sizes the gradient workload each pair transfers.
    """

    name: str
    description: str
    faults: Tuple[FaultSpec, ...]
    duration_s: float = 0.2
    pairs: int = 1
    edge_rate_bps: float = 10e9
    bottleneck_rate_bps: float = 10e9
    coords: int = 20_000
    max_retries: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.faults:
            raise ValueError("a scenario needs at least one fault")
        if self.duration_s <= 0 or self.pairs < 1 or self.coords < 1:
            raise ValueError("duration_s, pairs and coords must be positive")
        if self.max_retries is not None and self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {self.max_retries}")

    def worker_faults(self) -> Tuple[FaultSpec, ...]:
        """The worker-scoped specs (crash/straggler) in this scenario."""
        return tuple(spec for spec in self.faults if spec.fault in _WORKER_SCOPED)

    def to_dict(self) -> Dict:
        """Plain-data form (JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "Scenario":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown scenario keys: {sorted(extra)}")
        payload = dict(data)
        payload["faults"] = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in payload.get("faults", ())
        )
        return cls(**payload)


def _presets() -> Dict[str, Scenario]:
    bottleneck = "s0->s1"
    ack_path = "s1->s0"
    return {
        scenario.name: scenario
        for scenario in (
            Scenario(
                name="flaky-link",
                description=(
                    "a marginal bottleneck cable: light payload corruption "
                    "plus occasional duplication on s0->s1"
                ),
                faults=(
                    FaultSpec("corrupt", bottleneck, rate=0.03),
                    FaultSpec("duplicate", bottleneck, rate=0.02, jitter_s=2e-6),
                ),
            ),
            Scenario(
                name="incast-plus-corruption",
                description=(
                    "four senders share a half-rate bottleneck while the "
                    "congested link also corrupts payloads"
                ),
                faults=(FaultSpec("corrupt", bottleneck, rate=0.02),),
                pairs=4,
                bottleneck_rate_bps=5e9,
                coords=10_000,
            ),
            Scenario(
                name="ack-storm-loss",
                description=(
                    "the reverse path misbehaves: heavy ACK loss plus "
                    "duplicated control packets on s1->s0"
                ),
                faults=(
                    FaultSpec("ack-loss", ack_path, rate=0.3),
                    FaultSpec("duplicate", ack_path, rate=0.2, jitter_s=1e-6),
                ),
            ),
            Scenario(
                name="reorder-heavy",
                description=(
                    "a third of the data packets take a detour: bounded "
                    "delay jitter reorders the bottleneck stream"
                ),
                faults=(FaultSpec("reorder", bottleneck, rate=0.3, jitter_s=30e-6),),
            ),
            Scenario(
                name="flap-during-allreduce",
                description=(
                    "the bottleneck link flaps down 0.5 ms out of every "
                    "2 ms while gradient messages are in flight"
                ),
                faults=(
                    FaultSpec(
                        "flap",
                        bottleneck,
                        start_s=0.2e-3,
                        period_s=2e-3,
                        down_s=0.5e-3,
                        stop_s=20e-3,
                    ),
                ),
            ),
            Scenario(
                name="blackout-recovery",
                description=(
                    "the egress port toward rx0 goes dark for 2 ms "
                    "mid-transfer, then recovery must finish the message"
                ),
                faults=(FaultSpec("blackout", "s1:rx0", start_s=0.3e-3, down_s=2e-3),),
            ),
            Scenario(
                name="worker-crash",
                description=(
                    "worker 1 dies mid-transfer and never comes back; the "
                    "survivors must surrender its flow and keep training"
                ),
                faults=(FaultSpec("crash", "worker:1", start_s=30e-6),),
                pairs=2,
                duration_s=2.0,
                coords=10_000,
                max_retries=40,
            ),
            Scenario(
                name="core-switch-down",
                description=(
                    "the ingress-side switch dies whole mid-transfer for "
                    "1.5 ms — every flow through it blackholes until the "
                    "fabric heals and retransmits finish the message"
                ),
                faults=(
                    FaultSpec(
                        "switch-down", "switch:s0", start_s=0.3e-3, down_s=1.5e-3
                    ),
                ),
                max_retries=40,
            ),
            Scenario(
                name="gray-core-leak",
                description=(
                    "a gray failure on the bottleneck: the port stays up "
                    "while the leg silently eats 4% of packets and "
                    "corrupts another 4%"
                ),
                faults=(
                    FaultSpec(
                        "gray-failure", bottleneck, rate=0.04, corrupt_rate=0.04
                    ),
                ),
            ),
            Scenario(
                name="port-flap-storm",
                description=(
                    "the bottleneck egress port flaps at layer 1 — 0.4 ms "
                    "dark out of every 2 ms — without the control plane "
                    "ever noticing, so nothing reroutes"
                ),
                faults=(
                    FaultSpec(
                        "port-flap",
                        "s0:s1",
                        start_s=0.2e-3,
                        period_s=2e-3,
                        down_s=0.4e-3,
                        stop_s=20e-3,
                    ),
                ),
            ),
            Scenario(
                name="straggler-storm",
                description=(
                    "two workers turn persistently slow: every packet from "
                    "worker 1 (and half from worker 2) takes a long detour"
                ),
                faults=(
                    FaultSpec(
                        "straggler",
                        "worker:1",
                        rate=1.0,
                        jitter_s=40e-6,
                        slow_factor=8.0,
                        stop_s=0.1,
                    ),
                    FaultSpec(
                        "straggler",
                        "worker:2",
                        rate=0.5,
                        jitter_s=40e-6,
                        slow_factor=4.0,
                        stop_s=0.1,
                    ),
                ),
                pairs=4,
                duration_s=0.3,
                coords=10_000,
            ),
        )
    }


#: The named adversity presets the chaos CI matrix runs.
PRESETS: Dict[str, Scenario] = _presets()


def available_scenarios() -> list:
    """Names of the built-in presets."""
    return sorted(PRESETS)


def scenario_by_name(name: str) -> Scenario:
    """Look up a preset; raises ``KeyError`` with the available names."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        ) from None
