"""``repro-faults``: run deterministic fault scenarios from the shell.

Subcommands:

* ``repro-faults list`` — the preset table with descriptions.
* ``repro-faults run <scenario> --seed N [--transport T] [--out F]`` —
  execute one preset (or a JSON scenario file) and write the fault/event
  log as JSONL.  Two runs with the same arguments produce byte-identical
  output files; the chaos CI job diffs exactly that.
* ``repro-faults campaign run|replay|shrink`` — seeded chaos campaigns
  over a cluster preset: draw a fault sequence, run it under the
  invariant monitors (see :mod:`repro.faults.campaign`), replay a saved
  plan byte-for-byte, or shrink a failing plan to a minimal repro.

The JSONL stream is one fault event per line (sorted keys, simulation
time only — never wall-clock time) followed by a single ``summary``
record.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import List, Optional

from ..net import impairment_summary
from .campaign import (
    CAMPAIGN_KINDS,
    CampaignConfig,
    CampaignPlan,
    CampaignResult,
    draw_plan,
    render_campaign_jsonl,
    run_campaign,
    shrink_plan,
)
from .harness import TRANSPORTS, ScenarioRun, run_scenario
from .scenarios import PRESETS, Scenario, scenario_by_name

logger = logging.getLogger("repro.faults")

__all__ = ["main", "render_jsonl"]


def render_jsonl(run: ScenarioRun) -> List[str]:
    """The deterministic JSONL lines for one run (no trailing newline)."""
    lines = [
        json.dumps({"kind": "fault", **event}, sort_keys=True)
        for event in run.events
    ]
    summary = {
        "kind": "summary",
        **run.summary(),
        "impairments": impairment_summary(run.network),
    }
    lines.append(json.dumps(summary, sort_keys=True))
    return lines


def _load_scenario(name: str) -> Scenario:
    if name.endswith(".json"):
        with open(name, "r", encoding="utf-8") as fh:
            return Scenario.from_dict(json.load(fh))
    return scenario_by_name(name)


def _cmd_list(_: argparse.Namespace) -> int:
    for name in sorted(PRESETS):
        scenario = PRESETS[name]
        kinds = ",".join(sorted({spec.fault for spec in scenario.faults}))
        logger.info("%-24s [%s] %s", name, kinds, scenario.description)
    return 0


def _cmd_run(ns: argparse.Namespace) -> int:
    scenario = _load_scenario(ns.scenario)
    run = run_scenario(
        scenario,
        transport=ns.transport,
        seed=ns.seed,
        max_events=ns.max_events,
    )
    lines = render_jsonl(run)
    if ns.out is not None:
        Path(ns.out).write_text("\n".join(lines) + "\n", encoding="utf-8")
        logger.info("wrote %d events to %s", len(lines) - 1, ns.out)
    completed, total = len(run.completed_flows), len(run.flows)
    logger.info(
        "%s/%s seed=%d: %d/%d flows complete, %d surrendered, "
        "%d faults injected, %d sim steps, t=%.6fs",
        run.scenario,
        run.transport,
        run.seed,
        completed,
        total,
        len(run.surrenders),
        sum(run.fault_counts.values()),
        run.steps,
        run.sim_time,
    )
    # Success = every flow reached a terminal state (delivered or clean
    # surrender); a flow stuck in limbo is exactly the livelock this
    # subsystem exists to rule out.
    stuck = total - completed - len(run.surrenders)
    if stuck:
        logger.error("%d flow(s) neither completed nor surrendered", stuck)
        return 1
    return 0


# -- chaos campaigns ----------------------------------------------------------


def _load_plan(path: str) -> CampaignPlan:
    with open(path, "r", encoding="utf-8") as fh:
        return CampaignPlan.from_dict(json.load(fh))


def _write_campaign_artifacts(
    result: CampaignResult, out_dir: Optional[str]
) -> None:
    if out_dir is None:
        return
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    plan_path = out / "plan.json"
    plan_path.write_text(
        json.dumps(result.plan.to_dict(), sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    log_path = out / "campaign.jsonl"
    log_path.write_text(
        "\n".join(render_campaign_jsonl(result)) + "\n", encoding="utf-8"
    )
    logger.info("wrote %s and %s", plan_path, log_path)


def _log_campaign_verdict(result: CampaignResult) -> int:
    for violation in result.violations:
        logger.error("VIOLATION %s: %s", violation.monitor, violation.detail)
    summary = result.summary()
    logger.info(
        "campaign %s seed=%d: %d faults drawn, %d fault events, "
        "%d reroutes, %d sim steps, %s",
        summary["cluster"],
        summary["seed"],
        summary["faults"],
        summary["fault_events"],
        summary["fabric"].get("reroutes", 0),
        summary["steps"],
        "OK" if result.ok else f"{len(result.violations)} violation(s)",
    )
    return 0 if result.ok else 1


def _cmd_campaign_run(ns: argparse.Namespace) -> int:
    kinds = (
        tuple(k for k in ns.kinds.split(",") if k) if ns.kinds else CAMPAIGN_KINDS
    )
    config = CampaignConfig(
        cluster=ns.cluster,
        seed=ns.seed,
        faults=ns.faults,
        kinds=kinds,
        ef=not ns.no_ef,
        check_determinism=ns.determinism,
    )
    result = run_campaign(draw_plan(config))
    _write_campaign_artifacts(result, ns.out_dir)
    return _log_campaign_verdict(result)


def _cmd_campaign_replay(ns: argparse.Namespace) -> int:
    result = run_campaign(_load_plan(ns.plan))
    if ns.out is not None:
        Path(ns.out).write_text(
            "\n".join(render_campaign_jsonl(result)) + "\n", encoding="utf-8"
        )
        logger.info("wrote %s", ns.out)
    return _log_campaign_verdict(result)


def _cmd_campaign_shrink(ns: argparse.Namespace) -> int:
    plan = _load_plan(ns.plan)
    monitor = ns.monitor
    if monitor is None:
        first = run_campaign(plan)
        if first.ok:
            logger.info("plan violates no monitor; nothing to shrink")
            return 0
        monitor = first.violated_monitors[0]
        logger.info("shrinking against monitor %r", monitor)
    trace: List[dict] = []
    shrunk = shrink_plan(plan, monitor, trace=trace)
    out = Path(ns.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    shrunk_path = out / "shrunk.json"
    shrunk_path.write_text(
        json.dumps(shrunk.to_dict(), sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    trace_path = out / "shrink.jsonl"
    trace_path.write_text(
        "\n".join(
            json.dumps({"kind": "shrink", "monitor": monitor, **step}, sort_keys=True)
            for step in trace
        )
        + "\n",
        encoding="utf-8",
    )
    logger.info(
        "shrunk %d -> %d fault(s); wrote %s and %s",
        len(plan.faults),
        len(shrunk.faults),
        shrunk_path,
        trace_path,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="deterministic fault injection for the trim-pipeline simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show the available presets")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one scenario and emit a JSONL log")
    p_run.add_argument(
        "scenario",
        help="a preset name (see `repro-faults list`) or a path to a scenario .json",
    )
    p_run.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
    p_run.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default="trimming",
        help="transport to drive the gradient traffic (default trimming)",
    )
    p_run.add_argument("--out", default=None, help="write the JSONL event log here")
    p_run.add_argument(
        "--max-events",
        type=int,
        default=2_000_000,
        help="simulator safety valve (default 2e6 events)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_campaign = sub.add_parser(
        "campaign", help="seeded chaos campaigns over a cluster preset"
    )
    campaign_sub = p_campaign.add_subparsers(dest="campaign_command", required=True)

    p_crun = campaign_sub.add_parser(
        "run", help="draw a fault sequence, run it, judge the invariants"
    )
    p_crun.add_argument(
        "--cluster",
        default="idle-1job",
        help="cluster preset to fuzz (default idle-1job)",
    )
    p_crun.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    p_crun.add_argument(
        "--faults", type=int, default=3, help="fault specs to draw (default 3)"
    )
    p_crun.add_argument(
        "--kinds",
        default=None,
        help=f"comma-separated fault-kind pool (default all of {CAMPAIGN_KINDS})",
    )
    p_crun.add_argument(
        "--no-ef",
        action="store_true",
        help="leave error feedback off (disables the ef-telescoping monitor)",
    )
    p_crun.add_argument(
        "--determinism",
        action="store_true",
        help="run the plan twice and require byte-identical reports",
    )
    p_crun.add_argument(
        "--out-dir",
        default=None,
        help="write plan.json and campaign.jsonl artifacts here",
    )
    p_crun.set_defaults(func=_cmd_campaign_run)

    p_creplay = campaign_sub.add_parser(
        "replay", help="re-run a saved plan.json byte-for-byte"
    )
    p_creplay.add_argument("--plan", required=True, help="path to a saved plan.json")
    p_creplay.add_argument(
        "--out", default=None, help="write the campaign JSONL log here"
    )
    p_creplay.set_defaults(func=_cmd_campaign_replay)

    p_cshrink = campaign_sub.add_parser(
        "shrink", help="reduce a failing plan to a minimal repro"
    )
    p_cshrink.add_argument("--plan", required=True, help="path to a saved plan.json")
    p_cshrink.add_argument(
        "--monitor",
        default=None,
        help="monitor name to shrink against (default: first violated)",
    )
    p_cshrink.add_argument(
        "--out-dir",
        required=True,
        help="write shrunk.json and shrink.jsonl here",
    )
    p_cshrink.set_defaults(func=_cmd_campaign_shrink)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    logging.basicConfig(level=logging.INFO, format="%(message)s", stream=sys.stderr)
    ns = build_parser().parse_args(argv)
    return int(ns.func(ns))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
