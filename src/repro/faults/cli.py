"""``repro-faults``: run deterministic fault scenarios from the shell.

Subcommands:

* ``repro-faults list`` — the preset table with descriptions.
* ``repro-faults run <scenario> --seed N [--transport T] [--out F]`` —
  execute one preset (or a JSON scenario file) and write the fault/event
  log as JSONL.  Two runs with the same arguments produce byte-identical
  output files; the chaos CI job diffs exactly that.

The JSONL stream is one fault event per line (sorted keys, simulation
time only — never wall-clock time) followed by a single ``summary``
record.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import List, Optional

from ..net import impairment_summary
from .harness import TRANSPORTS, ScenarioRun, run_scenario
from .scenarios import PRESETS, Scenario, scenario_by_name

logger = logging.getLogger("repro.faults")

__all__ = ["main", "render_jsonl"]


def render_jsonl(run: ScenarioRun) -> List[str]:
    """The deterministic JSONL lines for one run (no trailing newline)."""
    lines = [
        json.dumps({"kind": "fault", **event}, sort_keys=True)
        for event in run.events
    ]
    summary = {
        "kind": "summary",
        **run.summary(),
        "impairments": impairment_summary(run.network),
    }
    lines.append(json.dumps(summary, sort_keys=True))
    return lines


def _load_scenario(name: str) -> Scenario:
    if name.endswith(".json"):
        with open(name, "r", encoding="utf-8") as fh:
            return Scenario.from_dict(json.load(fh))
    return scenario_by_name(name)


def _cmd_list(_: argparse.Namespace) -> int:
    for name in sorted(PRESETS):
        scenario = PRESETS[name]
        kinds = ",".join(sorted({spec.fault for spec in scenario.faults}))
        logger.info("%-24s [%s] %s", name, kinds, scenario.description)
    return 0


def _cmd_run(ns: argparse.Namespace) -> int:
    scenario = _load_scenario(ns.scenario)
    run = run_scenario(
        scenario,
        transport=ns.transport,
        seed=ns.seed,
        max_events=ns.max_events,
    )
    lines = render_jsonl(run)
    if ns.out is not None:
        Path(ns.out).write_text("\n".join(lines) + "\n", encoding="utf-8")
        logger.info("wrote %d events to %s", len(lines) - 1, ns.out)
    completed, total = len(run.completed_flows), len(run.flows)
    logger.info(
        "%s/%s seed=%d: %d/%d flows complete, %d surrendered, "
        "%d faults injected, %d sim steps, t=%.6fs",
        run.scenario,
        run.transport,
        run.seed,
        completed,
        total,
        len(run.surrenders),
        sum(run.fault_counts.values()),
        run.steps,
        run.sim_time,
    )
    # Success = every flow reached a terminal state (delivered or clean
    # surrender); a flow stuck in limbo is exactly the livelock this
    # subsystem exists to rule out.
    stuck = total - completed - len(run.surrenders)
    if stuck:
        logger.error("%d flow(s) neither completed nor surrendered", stuck)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="deterministic fault injection for the trim-pipeline simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show the available presets")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one scenario and emit a JSONL log")
    p_run.add_argument(
        "scenario",
        help="a preset name (see `repro-faults list`) or a path to a scenario .json",
    )
    p_run.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
    p_run.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default="trimming",
        help="transport to drive the gradient traffic (default trimming)",
    )
    p_run.add_argument("--out", default=None, help="write the JSONL event log here")
    p_run.add_argument(
        "--max-events",
        type=int,
        default=2_000_000,
        help="simulator safety valve (default 2e6 events)",
    )
    p_run.set_defaults(func=_cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    logging.basicConfig(level=logging.INFO, format="%(message)s", stream=sys.stderr)
    ns = build_parser().parse_args(argv)
    return int(ns.func(ns))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
