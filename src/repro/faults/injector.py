"""Deterministic fault injection over the simulated network.

:class:`FaultInjector` takes a :class:`~repro.faults.scenarios.Scenario`
and arms the network's existing seams:

* per-packet faults (``corrupt``, ``ack-loss``, ``duplicate``,
  ``reorder``, ``straggler``, ``gray-failure``) compose into one
  :data:`~repro.net.link.DeliveryHook` per targeted link;
* ``flap`` schedules ``Link.up`` transitions on the event loop;
* ``blackout`` schedules :meth:`repro.net.switch.Switch.set_port_down`
  (FIB-visible: surviving equal-cost legs absorb the flows after the
  reroute-convergence delay);
* ``port-flap`` flaps one egress port at layer 1 — the link loses
  everything while dark but the FIB never updates, so nothing reroutes;
* ``switch-down`` kills a whole device via
  :meth:`repro.net.switch.Switch.set_failed` and tells every adjacent
  switch to take its port toward the corpse down, so their flows
  reroute around it;
* worker-scoped kinds resolve ``worker:<rank>`` to host ``tx<rank>``:
  ``crash`` takes both directions of the host's uplink down, and
  ``straggler`` delays that host's outbound packets.

Every random decision is drawn from a
:func:`~repro.transforms.prng.shared_generator` stream keyed by
``(root_seed, spec index, purpose="fault")``, so a run is a pure
function of ``(scenario, seed)``: the injected fault sequence — and the
JSONL event log it produces — is byte-identical across repeats.

Corruption mutates a **copy** of the packet (``dataclasses.replace``).
The sender still holds a reference to the original for retransmission;
flipping bits in place would poison every future retransmit and turn a
transient fault into a permanent one.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..net.host import Host
from ..net.link import DeliveryHook, Link
from ..net.topology import Network
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..packet.packet import Packet
from ..transforms.prng import shared_generator
from .scenarios import FaultSpec, Scenario

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms a scenario's fault specs against a built network.

    Args:
        network: a :class:`repro.net.topology.Network` (already wired).
        scenario: the declarative schedule to install.
        root_seed: the run seed; all fault draws derive from it.
        worker_hosts: optional rank -> host-name map for worker-scoped
            faults; None keeps the dumbbell convention ``tx<rank>``.
            Harnesses running scenarios on other topologies (fat-tree)
            pass their placement here.

    Attributes:
        events: append-only, JSON-ready fault log.  Every record carries
            the simulation time (never wall-clock time) plus enough
            identity (flow, seq) to line up with transport traces.
        counts: per fault-kind totals, mirrored into the metrics
            registry as ``repro_faults_injected_total``.
    """

    def __init__(
        self,
        network: Network,
        scenario: Scenario,
        root_seed: int,
        worker_hosts: Optional[Dict[int, str]] = None,
    ) -> None:
        self.network = network
        self.scenario = scenario
        self.root_seed = root_seed
        self.worker_hosts = worker_hosts or {}
        self.events: List[Dict] = []
        self.counts: Dict[str, int] = {}
        self._hooked_links: Dict[str, List] = {}
        self._m_injected = get_registry().counter(
            "repro_faults_injected_total",
            "faults injected by kind and target",
            ("fault", "target"),
        )
        self._installed = False

    # -- public API -------------------------------------------------------------

    def install(self) -> None:
        """Arm every fault spec.  Idempotence guard: call once per run."""
        if self._installed:
            raise RuntimeError("injector already installed")
        self._installed = True
        for index, spec in enumerate(self.scenario.faults):
            gen = shared_generator(
                self.root_seed, epoch=0, message_id=index, purpose="fault"
            )
            if spec.fault == "flap":
                self._install_flap(spec)
            elif spec.fault == "blackout":
                self._install_blackout(spec)
            elif spec.fault == "port-flap":
                self._install_port_flap(spec)
            elif spec.fault == "switch-down":
                self._install_switch_down(spec)
            elif spec.fault == "gray-failure":
                self._install_gray(spec, gen)
            elif spec.fault == "crash":
                self._install_crash(spec)
            elif spec.fault == "straggler":
                self._install_straggler(spec, gen)
            else:
                self._install_per_packet(spec, gen)
        for label, stages in self._hooked_links.items():
            link = self._link(label)
            link.delivery_hook = self._compose(stages)

    # -- shared plumbing --------------------------------------------------------

    def _link(self, label: str) -> Link:
        src, dst = label.split("->", 1)
        link = self.network.link_between(src, dst)
        if link is None:
            raise ValueError(f"no link {label!r} in topology")
        return link

    def _record(self, fault: str, target: str, **detail: Any) -> None:
        self.counts[fault] = self.counts.get(fault, 0) + 1
        self._m_injected.inc(fault=fault, target=target)
        event = {"t": self.network.sim.now, "fault": fault, "target": target}
        event.update(detail)
        self.events.append(event)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("fault.inject", sim_time=self.network.sim.now, **{
                "fault": fault, "target": target, **detail,
            })

    @staticmethod
    def _compose(stages: List) -> DeliveryHook:
        """Chain per-packet stages into one DeliveryHook.

        Each stage maps one ``(extra_delay, packet)`` entry to a list of
        them; the chain folds left so e.g. a duplicated packet can still
        be independently corrupted.
        """

        def hook(packet: Packet) -> List[Tuple[float, Packet]]:
            deliveries: List[Tuple[float, Packet]] = [(0.0, packet)]
            for stage in stages:
                nxt: List[Tuple[float, Packet]] = []
                for entry in deliveries:
                    nxt.extend(stage(entry))
                deliveries = nxt
            return deliveries

        return hook

    # -- per-packet faults ------------------------------------------------------

    def _install_per_packet(self, spec: FaultSpec, gen: np.random.Generator) -> None:
        sim = self.network.sim
        target = spec.target

        def stage(entry: Tuple[float, Packet]) -> List[Tuple[float, Packet]]:
            delay, packet = entry
            if not spec.active_at(sim.now):
                return [entry]
            if spec.fault == "ack-loss":
                if not packet.is_ack or gen.random() >= spec.rate:
                    return [entry]
                self._record(
                    "ack-loss", target, flow_id=packet.flow_id, seq=packet.seq
                )
                return []
            if spec.fault == "corrupt":
                # Control packets and empty payloads carry nothing to flip.
                if packet.is_ack or not packet.payload:
                    return [entry]
                if gen.random() >= spec.rate:
                    return [entry]
                corrupted = self._flip_bits(packet, gen, spec.bit_flips)
                self._record(
                    "corrupt",
                    target,
                    flow_id=packet.flow_id,
                    seq=packet.seq,
                    bit_flips=spec.bit_flips,
                )
                return [(delay, corrupted)]
            if spec.fault == "duplicate":
                if gen.random() >= spec.rate:
                    return [entry]
                self._record(
                    "duplicate", target, flow_id=packet.flow_id, seq=packet.seq,
                    is_ack=packet.is_ack,
                )
                return [entry, (delay + max(spec.jitter_s, 1e-9), packet)]
            # reorder: hold the packet back by a bounded, seeded jitter.
            if packet.is_ack or gen.random() >= spec.rate:
                return [entry]
            extra = float(gen.uniform(0.0, spec.jitter_s))
            self._record(
                "reorder",
                target,
                flow_id=packet.flow_id,
                seq=packet.seq,
                extra_delay_s=extra,
            )
            return [(delay + extra, packet)]

        self._hooked_links.setdefault(target, []).append(stage)

    @staticmethod
    def _flip_bits(packet: Packet, gen: np.random.Generator, bit_flips: int) -> Packet:
        buf = bytearray(packet.payload)
        positions = gen.integers(0, len(buf) * 8, size=bit_flips)
        for pos in positions:
            buf[int(pos) // 8] ^= 1 << (int(pos) % 8)
        # The stale checksum travels with the mangled payload — that is
        # exactly how the receiver detects the corruption.
        return replace(packet, payload=bytes(buf))

    # -- worker-scoped faults ---------------------------------------------------

    def _worker_host(self, spec: FaultSpec) -> Tuple[Host, Link]:
        """Resolve ``worker:<rank>`` to its wired host + uplink.

        The rank maps through ``worker_hosts`` when the harness supplied
        a placement, else to the dumbbell convention ``tx<rank>``.
        """
        name = self.worker_hosts.get(spec.worker_rank, f"tx{spec.worker_rank}")
        host = self.network.hosts.get(name)
        if host is None or host.uplink is None:
            raise ValueError(f"no wired host {name!r} for target {spec.target!r}")
        return host, host.uplink

    def _install_crash(self, spec: FaultSpec) -> None:
        """Kill both directions of the worker's uplink — a dead NIC."""
        host, uplink = self._worker_host(spec)
        downlink = self.network.link_between(uplink.dst.name, host.name)
        # Burst batching pre-schedules deliveries; a link that can die
        # mid-burst must serialize one packet at a time so the crash
        # loses exactly what is on the wire.
        uplink.burst = 1
        downlink.burst = 1
        sim = self.network.sim

        def die() -> None:
            uplink.up = False
            downlink.up = False
            self._record("crash", spec.target, state="down", host=host.name)

        def revive() -> None:
            uplink.up = True
            downlink.up = True
            self._record("crash", spec.target, state="up", host=host.name)

        sim.schedule(spec.start_s, die)
        if spec.stop_s is not None:
            sim.schedule(spec.stop_s, revive)

    def _install_straggler(self, spec: FaultSpec, gen: np.random.Generator) -> None:
        """Slow the worker's outbound data path by a fixed extra delay."""
        host, uplink = self._worker_host(spec)
        label = f"{host.name}->{uplink.dst.name}"
        sim = self.network.sim

        def stage(entry: Tuple[float, Packet]) -> List[Tuple[float, Packet]]:
            delay, packet = entry
            if not spec.active_at(sim.now) or packet.is_ack:
                return [entry]
            if gen.random() >= spec.rate:
                return [entry]
            self._record(
                "straggler",
                spec.target,
                flow_id=packet.flow_id,
                seq=packet.seq,
                extra_delay_s=spec.jitter_s,
            )
            return [(delay + spec.jitter_s, packet)]

        self._hooked_links.setdefault(label, []).append(stage)

    # -- scheduled faults -------------------------------------------------------

    def _install_flap(self, spec: FaultSpec) -> None:
        link = self._link(spec.target)
        # See _install_crash: a flapping link must not batch deliveries.
        link.burst = 1
        sim = self.network.sim

        def go_down() -> None:
            if spec.stop_s is not None and sim.now >= spec.stop_s:
                return
            link.up = False
            self._record("flap", spec.target, state="down")
            sim.schedule(spec.down_s, go_up)

        def go_up() -> None:
            link.up = True
            self._record("flap", spec.target, state="up")
            if spec.period_s > 0.0:
                sim.schedule(spec.period_s - spec.down_s, go_down)

        sim.schedule(spec.start_s, go_down)

    def _install_blackout(self, spec: FaultSpec) -> None:
        switch_name, neighbor = spec.target.split(":", 1)
        switch = self.network.switches.get(switch_name)
        if switch is None:
            raise ValueError(f"no switch {switch_name!r} in topology")
        if neighbor not in switch.ports:
            raise ValueError(f"{switch_name}: no port toward {neighbor!r}")
        sim = self.network.sim

        def go_dark() -> None:
            switch.set_port_down(neighbor, True)
            self._record("blackout", spec.target, state="down")
            sim.schedule(spec.down_s, restore)

        def restore() -> None:
            switch.set_port_down(neighbor, False)
            self._record("blackout", spec.target, state="up")
            if spec.period_s > 0.0 and (
                spec.stop_s is None or sim.now + spec.period_s - spec.down_s < spec.stop_s
            ):
                sim.schedule(spec.period_s - spec.down_s, go_dark)

        sim.schedule(spec.start_s, go_dark)

    def _install_port_flap(self, spec: FaultSpec) -> None:
        """Layer-1 flap of one egress port: loss without FIB reaction.

        The egress link toward the neighbor goes dark like a ``flap``,
        but through the *switch's* port — the control plane never hears
        about it, so unlike ``blackout`` no flow ever reroutes.  The
        gray twin of a blackout: same loss, none of the healing.
        """
        switch_name, neighbor = spec.target.split(":", 1)
        switch = self.network.switches.get(switch_name)
        if switch is None:
            raise ValueError(f"no switch {switch_name!r} in topology")
        link = switch.ports.get(neighbor)
        if link is None:
            raise ValueError(f"{switch_name}: no port toward {neighbor!r}")
        # See _install_crash: a link that can die mid-burst must
        # serialize one packet at a time.
        link.burst = 1
        sim = self.network.sim

        def go_down() -> None:
            if spec.stop_s is not None and sim.now >= spec.stop_s:
                return
            link.up = False
            self._record("port-flap", spec.target, state="down")
            sim.schedule(spec.down_s, go_up)

        def go_up() -> None:
            link.up = True
            self._record("port-flap", spec.target, state="up")
            if spec.period_s > 0.0:
                sim.schedule(spec.period_s - spec.down_s, go_down)

        sim.schedule(spec.start_s, go_down)

    def _install_switch_down(self, spec: FaultSpec) -> None:
        """Kill a whole switch; adjacent FIBs route around the corpse."""
        name = spec.target.split(":", 1)[1]
        switch = self.network.switches.get(name)
        if switch is None:
            raise ValueError(f"no switch {name!r} in topology")
        neighbors = [
            other
            for other in self.network.switches.values()
            if other is not switch and name in other.ports
        ]
        # The dead switch's egress wires lose what they carry; pin them
        # to one-packet serialization so the loss is exact (see
        # _install_crash).
        for link in switch.ports.values():
            link.burst = 1
        for other in neighbors:
            other.ports[name].burst = 1
        sim = self.network.sim

        def die() -> None:
            switch.set_failed(True)
            for other in neighbors:
                other.set_port_down(name, True)
            self._record(
                "switch-down", spec.target, state="down", switch=name,
                adjacent=sorted(other.name for other in neighbors),
            )
            sim.schedule(spec.down_s, revive)

        def revive() -> None:
            switch.set_failed(False)
            for other in neighbors:
                other.set_port_down(name, False)
            self._record("switch-down", spec.target, state="up", switch=name)
            if spec.period_s > 0.0 and (
                spec.stop_s is None or sim.now + spec.period_s - spec.down_s < spec.stop_s
            ):
                sim.schedule(spec.period_s - spec.down_s, die)

        sim.schedule(spec.start_s, die)

    def _install_gray(self, spec: FaultSpec, gen: np.random.Generator) -> None:
        """Gray failure on one leg: silent drops + corruption, port 'up'.

        The nastiest fabric failure mode: no flap, no blackout, no FIB
        event — the leg just eats ``rate`` of its packets and mangles
        ``corrupt_rate`` of the survivors.  Nothing reroutes; only
        end-to-end integrity (CRC seals, retransmits) catches it.
        """
        sim = self.network.sim
        target = spec.target

        def stage(entry: Tuple[float, Packet]) -> List[Tuple[float, Packet]]:
            delay, packet = entry
            if not spec.active_at(sim.now):
                return [entry]
            if spec.rate > 0.0 and gen.random() < spec.rate:
                self._record(
                    "gray-failure",
                    target,
                    effect="drop",
                    flow_id=packet.flow_id,
                    seq=packet.seq,
                    is_ack=packet.is_ack,
                )
                return []
            if (
                spec.corrupt_rate > 0.0
                and not packet.is_ack
                and packet.payload
                and gen.random() < spec.corrupt_rate
            ):
                corrupted = self._flip_bits(packet, gen, spec.bit_flips)
                self._record(
                    "gray-failure",
                    target,
                    effect="corrupt",
                    flow_id=packet.flow_id,
                    seq=packet.seq,
                    bit_flips=spec.bit_flips,
                )
                return [(delay, corrupted)]
            return [entry]

        self._hooked_links.setdefault(target, []).append(stage)

    # -- reporting --------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Total injections per fault kind (sorted, JSON-ready)."""
        return dict(sorted(self.counts.items()))
