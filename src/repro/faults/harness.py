"""Run a fault scenario against a dumbbell topology end to end.

:func:`run_scenario` is the single entry point the CLI, the chaos CI
matrix and the invariant test suite all share: build the scenario's
dumbbell, arm a :class:`~repro.faults.injector.FaultInjector`, push one
RHT-encoded gradient message per sender/receiver pair through the
chosen transport, and drain the event loop.  The returned
:class:`ScenarioRun` exposes everything the callers assert on —
delivery counts, surrender state, the deterministic fault event log,
per-link impairment counters and the simulator step count (the
no-livelock bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core import RHTCodec, decode_packets, nmse, packetize
from ..net import Host, Network, dumbbell
from ..packet.packet import Packet
from ..transforms.prng import shared_generator
from ..transport import (
    AIMD,
    FixedWindow,
    GoBackNReceiver,
    GoBackNSender,
    MessageSenderBase,
    PullReceiver,
    PullSender,
    TransportSurrender,
    TrimmingReceiver,
    TrimmingSender,
)
from .injector import FaultInjector
from .scenarios import Scenario

__all__ = ["TRANSPORTS", "ScenarioRun", "run_scenario"]

#: Transport names accepted by :func:`run_scenario` and the CLI.
TRANSPORTS = ("gbn", "pull", "trimming")

#: Base flow id for scenario traffic (clear of the test/bench ranges).
FLOW_BASE = 500


@dataclass
class ScenarioRun:
    """Everything observable about one completed scenario run."""

    scenario: str
    transport: str
    seed: int
    events: List[Dict]
    fault_counts: Dict[str, int]
    deliveries: Dict[int, List[Packet]]
    delivery_calls: Dict[int, int]
    surrenders: Dict[int, str]
    senders: Dict[int, MessageSenderBase]
    network: Network
    injector: FaultInjector
    sim_time: float
    steps: int
    decode_nmse: Dict[int, float] = field(default_factory=dict)

    @property
    def flows(self) -> List[int]:
        return sorted(self.senders)

    @property
    def completed_flows(self) -> List[int]:
        return sorted(flow for flow, s in self.senders.items() if s.done)

    def summary(self) -> Dict:
        """Deterministic, JSON-ready digest of the run."""
        return {
            "scenario": self.scenario,
            "transport": self.transport,
            "seed": self.seed,
            "sim_time_s": self.sim_time,
            "steps": self.steps,
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "fault_events": len(self.events),
            "flows": self.flows,
            "completed_flows": self.completed_flows,
            "surrendered_flows": sorted(self.surrenders),
            "delivery_calls": {
                str(flow): count for flow, count in sorted(self.delivery_calls.items())
            },
            "decode_nmse": {
                str(flow): round(value, 12)
                for flow, value in sorted(self.decode_nmse.items())
            },
        }


def _make_transport(
    transport: str, net: Network, flow: int, pair: int
) -> Tuple[MessageSenderBase, Any, Host]:
    """One sender/receiver pair on hosts ``tx<pair>``/``rx<pair>``."""
    tx, rx = net.hosts[f"tx{pair}"], net.hosts[f"rx{pair}"]
    sender: MessageSenderBase
    if transport == "gbn":
        sender = GoBackNSender(tx, flow_id=flow, cc=AIMD(initial_window=16))
        receiver_cls = GoBackNReceiver
    elif transport == "pull":
        sender = PullSender(tx, flow_id=flow)
        receiver_cls = PullReceiver
    elif transport == "trimming":
        sender = TrimmingSender(tx, flow_id=flow, cc=FixedWindow(initial_window=32))
        receiver_cls = TrimmingReceiver
    else:
        raise ValueError(f"unknown transport {transport!r}; expected one of {TRANSPORTS}")
    return sender, receiver_cls, rx


def run_scenario(
    scenario: Scenario,
    transport: str = "trimming",
    seed: int = 0,
    max_events: int = 2_000_000,
    max_retries: Optional[int] = None,
    instrument: Optional[Callable[[Network], None]] = None,
) -> ScenarioRun:
    """Execute ``scenario`` and return the full observable outcome.

    Args:
        scenario: the declarative fault schedule (see
            :mod:`repro.faults.scenarios`).
        transport: one of :data:`TRANSPORTS`.
        seed: run seed; drives the fault draws *and* the gradient data,
            so a ``(scenario, transport, seed)`` triple is fully
            deterministic.
        max_events: simulator safety valve — the no-livelock bound the
            invariant suite asserts against.
        max_retries: per-packet retry budget override (None falls back
            to ``scenario.max_retries``, then the transport default).
        instrument: observability seam — called with the built network
            after faults are armed but before any traffic is queued, so
            monitors/profilers (e.g. ``repro-timeline record``) can
            attach without perturbing the schedule already laid down.
    """
    if max_retries is None:
        max_retries = scenario.max_retries
    net = dumbbell(
        pairs=scenario.pairs,
        edge_rate_bps=scenario.edge_rate_bps,
        bottleneck_rate_bps=scenario.bottleneck_rate_bps,
    )
    injector = FaultInjector(net, scenario, root_seed=seed)
    injector.install()
    if instrument is not None:
        instrument(net)

    codec = RHTCodec(root_seed=seed)
    originals: Dict[int, np.ndarray] = {}
    deliveries: Dict[int, List[Packet]] = {}
    delivery_calls: Dict[int, int] = {}
    surrenders: Dict[int, str] = {}
    senders: Dict[int, MessageSenderBase] = {}

    for pair in range(scenario.pairs):
        flow = FLOW_BASE + pair
        sender, receiver_cls, rx = _make_transport(transport, net, flow, pair)
        if max_retries is not None:
            sender.max_retries = max_retries
        senders[flow] = sender

        def on_message(packets: List[Packet], flow: int = flow) -> None:
            delivery_calls[flow] = delivery_calls.get(flow, 0) + 1
            deliveries.setdefault(flow, packets)

        def on_failure(error: TransportSurrender, flow: int = flow) -> None:
            surrenders[flow] = error.reason

        receiver_cls(rx, flow_id=flow, on_message=on_message)
        grad = shared_generator(
            seed, epoch=0, message_id=flow, purpose="data"
        ).standard_normal(scenario.coords).astype(np.float32)
        originals[flow] = grad
        packets = packetize(
            codec.encode(grad, message_id=flow),
            src=f"tx{pair}",
            dst=f"rx{pair}",
            flow_id=flow,
        )
        sender.send_message(packets, on_failure=on_failure)

    net.sim.run(until=scenario.duration_s, max_events=max_events)

    decode_err: Dict[int, float] = {}
    for flow, packets in deliveries.items():
        decoded = decode_packets(packets, codec=codec)
        decode_err[flow] = float(nmse(originals[flow], decoded))

    return ScenarioRun(
        scenario=scenario.name,
        transport=transport,
        seed=seed,
        events=injector.events,
        fault_counts=injector.summary(),
        deliveries=deliveries,
        delivery_calls=delivery_calls,
        surrenders=surrenders,
        senders=senders,
        network=net,
        injector=injector,
        sim_time=net.sim.now,
        steps=net.sim.events_processed,
        decode_nmse=decode_err,
    )
