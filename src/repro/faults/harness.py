"""Run a fault scenario against a dumbbell or fat-tree topology.

:func:`run_scenario` is the single entry point the CLI, the chaos CI
matrix and the invariant test suite all share: build the scenario's
topology, arm a :class:`~repro.faults.injector.FaultInjector`, push one
RHT-encoded gradient message per sender/receiver pair through the
chosen transport, and drain the event loop.  The returned
:class:`ScenarioRun` exposes everything the callers assert on —
delivery counts, surrender state, the deterministic fault event log,
per-link impairment counters and the simulator step count (the
no-livelock bound).

Scenarios are written against the dumbbell's names (``s0->s1``,
``s1:rx0``, ``worker:<rank>``).  On a fat-tree the harness *remaps*
those roles onto the ECMP path pair 0's flow actually takes — the
bottleneck fault lands on the first fabric link of that path, the ACK
fault on the reverse path, the receiver blackout on the receiver's edge
port, a ``switch:s0`` device death on the aggregation tier — so the
same presets exercise a multipath fabric without rewriting them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core import RHTCodec, decode_packets, nmse, packetize
from ..net import Host, Network, dumbbell
from ..net.crosstraffic import CROSS_TRAFFIC_FLOW_BASE, OnOffFlow
from ..net.topology import fat_tree
from ..packet.packet import Packet
from ..transforms.prng import shared_generator
from ..transport import (
    AIMD,
    FixedWindow,
    GoBackNReceiver,
    GoBackNSender,
    MessageSenderBase,
    PullReceiver,
    PullSender,
    TransportSurrender,
    TrimmingReceiver,
    TrimmingSender,
)
from .injector import FaultInjector
from .scenarios import Scenario

__all__ = ["TRANSPORTS", "ScenarioRun", "run_scenario"]

#: Transport names accepted by :func:`run_scenario` and the CLI.
TRANSPORTS = ("gbn", "pull", "trimming")

#: Topology names accepted by :func:`run_scenario`.
TOPOLOGIES = ("dumbbell", "fat-tree")

#: Base flow id for scenario traffic (clear of the test/bench ranges).
FLOW_BASE = 500

#: Flow id of the optional fat-tree background tenant.
BACKGROUND_FLOW = CROSS_TRAFFIC_FLOW_BASE + 777


def _fat_tree_hosts(pair: int) -> Tuple[str, str]:
    """Pair ``i``'s endpoints on the k=4 fat-tree: pod 0 -> pod 1."""
    if pair >= 4:
        raise ValueError(
            f"fat-tree harness places at most 4 pairs (pod capacity), got pair {pair}"
        )
    return f"h0_{pair // 2}_{pair % 2}", f"h1_{pair // 2}_{pair % 2}"


def _remap_scenario(scenario: Scenario, net: Network) -> Tuple[Scenario, Dict[int, str]]:
    """Rewrite dumbbell fault targets onto the fat-tree's fabric.

    The roles transfer along the path pair 0's flow actually hashes to
    (``Network.flow_path`` is pure, so this predicts without
    perturbing): ``s0->s1`` becomes that path's first fabric link,
    ``s1->s0`` the reverse path's, ``s1:rx<i>`` the receiver's edge
    port, ``s0:s1`` (port-scoped kinds) the first fabric port on the
    forward path, and ``switch:s0``/``switch:s1`` the aggregation
    switch on the sender/receiver side of that path — the tier where a
    device death still leaves the edge an equal-cost alternative to
    reroute onto.  Worker ranks map to the pod-0 sender hosts.
    """
    tx0, rx0 = _fat_tree_hosts(0)
    forward = net.flow_path(tx0, rx0, FLOW_BASE)
    reverse = net.flow_path(rx0, tx0, FLOW_BASE)
    mapping = {
        "s0->s1": f"{forward[1]}->{forward[2]}",
        "s1->s0": f"{reverse[1]}->{reverse[2]}",
    }
    # Aggregation-tier devices on pair 0's path (fall back to the edge
    # on fabrics too shallow to have one).
    agg_up = forward[2] if len(forward) > 4 else forward[1]
    agg_down = forward[-3] if len(forward) > 4 else forward[-2]
    switch_mapping = {"switch:s0": f"switch:{agg_up}", "switch:s1": f"switch:{agg_down}"}
    faults = []
    for spec in scenario.faults:
        target = spec.target
        if target in mapping:
            target = mapping[target]
        elif spec.fault == "switch-down":
            target = switch_mapping.get(target, target)
        elif spec.fault in ("blackout", "port-flap") and ":" in target:
            switch_name, neighbor = target.split(":", 1)
            if neighbor.startswith("rx"):
                rx_host = _fat_tree_hosts(int(neighbor[2:]))[1]
                edge = net.flow_path(tx0, rx_host, FLOW_BASE)[-2]
                target = f"{edge}:{rx_host}"
            elif (switch_name, neighbor) == ("s0", "s1"):
                target = f"{forward[1]}:{forward[2]}"
            elif (switch_name, neighbor) == ("s1", "s0"):
                target = f"{reverse[1]}:{reverse[2]}"
        faults.append(replace(spec, target=target) if target != spec.target else spec)
    worker_hosts = {
        rank: _fat_tree_hosts(rank)[0] for rank in range(min(scenario.pairs, 4))
    }
    return replace(scenario, faults=tuple(faults)), worker_hosts


@dataclass
class ScenarioRun:
    """Everything observable about one completed scenario run."""

    scenario: str
    transport: str
    seed: int
    events: List[Dict]
    fault_counts: Dict[str, int]
    deliveries: Dict[int, List[Packet]]
    delivery_calls: Dict[int, int]
    surrenders: Dict[int, str]
    senders: Dict[int, MessageSenderBase]
    network: Network
    injector: FaultInjector
    sim_time: float
    steps: int
    decode_nmse: Dict[int, float] = field(default_factory=dict)

    @property
    def flows(self) -> List[int]:
        return sorted(self.senders)

    @property
    def completed_flows(self) -> List[int]:
        return sorted(flow for flow, s in self.senders.items() if s.done)

    def summary(self) -> Dict:
        """Deterministic, JSON-ready digest of the run."""
        return {
            "scenario": self.scenario,
            "transport": self.transport,
            "seed": self.seed,
            "sim_time_s": self.sim_time,
            "steps": self.steps,
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "fault_events": len(self.events),
            "flows": self.flows,
            "completed_flows": self.completed_flows,
            "surrendered_flows": sorted(self.surrenders),
            "delivery_calls": {
                str(flow): count for flow, count in sorted(self.delivery_calls.items())
            },
            "decode_nmse": {
                str(flow): round(value, 12)
                for flow, value in sorted(self.decode_nmse.items())
            },
        }


def _make_transport(
    transport: str, net: Network, flow: int, tx_name: str, rx_name: str
) -> Tuple[MessageSenderBase, Any, Host]:
    """One sender/receiver pair on the given hosts."""
    tx, rx = net.hosts[tx_name], net.hosts[rx_name]
    sender: MessageSenderBase
    if transport == "gbn":
        sender = GoBackNSender(tx, flow_id=flow, cc=AIMD(initial_window=16))
        receiver_cls = GoBackNReceiver
    elif transport == "pull":
        sender = PullSender(tx, flow_id=flow)
        receiver_cls = PullReceiver
    elif transport == "trimming":
        sender = TrimmingSender(tx, flow_id=flow, cc=FixedWindow(initial_window=32))
        receiver_cls = TrimmingReceiver
    else:
        raise ValueError(f"unknown transport {transport!r}; expected one of {TRANSPORTS}")
    return sender, receiver_cls, rx


def run_scenario(
    scenario: Scenario,
    transport: str = "trimming",
    seed: int = 0,
    max_events: int = 2_000_000,
    max_retries: Optional[int] = None,
    instrument: Optional[Callable[[Network], None]] = None,
    topology: str = "dumbbell",
    background_traffic: bool = False,
) -> ScenarioRun:
    """Execute ``scenario`` and return the full observable outcome.

    Args:
        scenario: the declarative fault schedule (see
            :mod:`repro.faults.scenarios`).
        transport: one of :data:`TRANSPORTS`.
        seed: run seed; drives the fault draws *and* the gradient data,
            so a ``(scenario, transport, seed)`` triple is fully
            deterministic.
        max_events: simulator safety valve — the no-livelock bound the
            invariant suite asserts against.
        max_retries: per-packet retry budget override (None falls back
            to ``scenario.max_retries``, then the transport default).
        instrument: observability seam — called with the built network
            after faults are armed but before any traffic is queued, so
            monitors/profilers (e.g. ``repro-timeline record``) can
            attach without perturbing the schedule already laid down.
        topology: one of :data:`TOPOLOGIES`.  ``fat-tree`` runs the same
            scenario on an ECMP-routed k=4 fat-tree (pairs cross from
            pod 0 to pod 1, fault targets remapped; max 4 pairs).
        background_traffic: fat-tree only — add one elephant tenant flow
            (pod 2 -> pod 1) contending with the scenario traffic.
    """
    if max_retries is None:
        max_retries = scenario.max_retries
    if topology not in TOPOLOGIES:
        raise ValueError(f"unknown topology {topology!r}; expected one of {TOPOLOGIES}")
    worker_hosts: Dict[int, str] = {}
    background: Optional[OnOffFlow] = None
    if topology == "fat-tree":
        net = fat_tree(
            k=4,
            rate_bps=scenario.edge_rate_bps,
            ecmp=True,
            ecmp_seed=seed,
        )
        scenario, worker_hosts = _remap_scenario(scenario, net)
        pair_hosts = [_fat_tree_hosts(pair) for pair in range(scenario.pairs)]
        if background_traffic:
            # Unregistered flows are silently counted at the receiving
            # host, so the tenant needs no transport endpoints.  The
            # active window is capped: scenario durations are drain
            # budgets (seconds), while all fault schedules and gradient
            # flows live in the first milliseconds — a tenant streaming
            # through the whole drain would add millions of idle-time
            # events and defeat the no-livelock step bounds.
            background = OnOffFlow(
                net.sim,
                net.hosts["h2_0_0"],
                "h1_0_0",
                rate_bps=scenario.edge_rate_bps / 4,
                burst_s=2e-3,
                idle_s=2e-4,
                seed=seed,
                flow_id=BACKGROUND_FLOW,
                stop_at=min(scenario.duration_s, 20e-3),
            )
    else:
        if background_traffic:
            raise ValueError("background_traffic requires topology='fat-tree'")
        net = dumbbell(
            pairs=scenario.pairs,
            edge_rate_bps=scenario.edge_rate_bps,
            bottleneck_rate_bps=scenario.bottleneck_rate_bps,
        )
        pair_hosts = [(f"tx{pair}", f"rx{pair}") for pair in range(scenario.pairs)]
    injector = FaultInjector(net, scenario, root_seed=seed, worker_hosts=worker_hosts)
    injector.install()
    if background is not None:
        background.start()
    if instrument is not None:
        instrument(net)

    codec = RHTCodec(root_seed=seed)
    originals: Dict[int, np.ndarray] = {}
    deliveries: Dict[int, List[Packet]] = {}
    delivery_calls: Dict[int, int] = {}
    surrenders: Dict[int, str] = {}
    senders: Dict[int, MessageSenderBase] = {}

    for pair, (tx_name, rx_name) in enumerate(pair_hosts):
        flow = FLOW_BASE + pair
        sender, receiver_cls, rx = _make_transport(transport, net, flow, tx_name, rx_name)
        if max_retries is not None:
            sender.max_retries = max_retries
        senders[flow] = sender

        def on_message(packets: List[Packet], flow: int = flow) -> None:
            delivery_calls[flow] = delivery_calls.get(flow, 0) + 1
            deliveries.setdefault(flow, packets)

        def on_failure(error: TransportSurrender, flow: int = flow) -> None:
            surrenders[flow] = error.reason

        receiver_cls(rx, flow_id=flow, on_message=on_message)
        grad = shared_generator(
            seed, epoch=0, message_id=flow, purpose="data"
        ).standard_normal(scenario.coords).astype(np.float32)
        originals[flow] = grad
        packets = packetize(
            codec.encode(grad, message_id=flow),
            src=tx_name,
            dst=rx_name,
            flow_id=flow,
        )
        sender.send_message(packets, on_failure=on_failure)

    net.sim.run(until=scenario.duration_s, max_events=max_events)

    decode_err: Dict[int, float] = {}
    for flow, packets in deliveries.items():
        decoded = decode_packets(packets, codec=codec)
        decode_err[flow] = float(nmse(originals[flow], decoded))

    return ScenarioRun(
        scenario=scenario.name,
        transport=transport,
        seed=seed,
        events=injector.events,
        fault_counts=injector.summary(),
        deliveries=deliveries,
        delivery_calls=delivery_calls,
        surrenders=surrenders,
        senders=senders,
        network=net,
        injector=injector,
        sim_time=net.sim.now,
        steps=net.sim.events_processed,
        decode_nmse=decode_err,
    )
