"""``python -m repro.faults`` — alias for the ``repro-faults`` CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
