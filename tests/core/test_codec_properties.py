"""Property-based codec contracts: encode → trim → decode.

Hypothesis varies the data seed, the vector length and the trim depth;
the assertions are the paper's core claims, phrased so they hold
deterministically for any example:

* untrimmed decode is (near-)exact for every codec;
* a trim mask only perturbs the masked coordinates of the scalar
  codecs — survivors decode bit-identically;
* the trimmed estimate is unbiased: averaging decodes across
  shared-randomness draws (distinct message ids) converges on the
  clipped input.

``derandomize=True`` keeps the statistical tolerances reproducible —
the same examples run every time, so a passing suite stays passing.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RHTCodec,
    StochasticQuantizationCodec,
    SubtractiveDitheringCodec,
    nmse,
)
from repro.transforms import shared_generator

SCALAR_CODECS = (StochasticQuantizationCodec, SubtractiveDitheringCodec)


def gradient(n, seed):
    gen = shared_generator(seed, purpose="data")
    return gen.standard_normal(n).astype(np.float32).astype(np.float64)


def trim_mask(n, depth_permille, seed):
    """Deterministic Bernoulli mask with an arbitrary trim depth."""
    gen = shared_generator(seed, purpose="trim")
    return gen.random(n) < depth_permille / 1000.0


class TestUntrimmedRoundTrip:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=600),
    )
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_scalar_codecs_near_exact(self, seed, n):
        x = gradient(n, seed)
        for codec_cls in SCALAR_CODECS:
            codec = codec_cls(root_seed=seed)
            decoded = codec.decode(codec.encode(x, message_id=1))
            assert nmse(x, decoded) < 1e-12

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=600),
    )
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_rht_fp32_exact(self, seed, n):
        x = gradient(n, seed)
        codec = RHTCodec(root_seed=seed, row_size=128)
        decoded = codec.decode(codec.encode(x, message_id=1))
        assert nmse(x, decoded) < 1e-12


class TestTrimLocality:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=2, max_value=600),
        depth=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_survivors_decode_bit_identically(self, seed, n, depth):
        """Trimming coordinate i never changes decoded coordinate j≠i
        for the per-coordinate codecs, at any trim depth."""
        x = gradient(n, seed)
        mask = trim_mask(n, depth, seed + 1)
        for codec_cls in SCALAR_CODECS:
            codec = codec_cls(root_seed=seed)
            enc = codec.encode(x, message_id=2)
            full = codec.decode(enc)
            partial = codec.decode(enc, trimmed=mask)
            assert np.array_equal(partial[~mask], full[~mask])

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=2, max_value=600),
        depth=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None, derandomize=True)
    def test_trimmed_values_bounded_by_scale(self, seed, n, depth):
        """A trimmed coordinate decodes to a value inside the clip range
        (±L for SQ, ±2L for SD's dither-shifted levels)."""
        x = gradient(n, seed)
        mask = trim_mask(n, depth, seed + 1)
        for codec_cls in SCALAR_CODECS:
            codec = codec_cls(root_seed=seed)
            enc = codec.encode(x, message_id=3)
            decoded = codec.decode(enc, trimmed=mask)
            scale = enc.metadata.scale
            assert np.all(np.isfinite(decoded))
            assert np.all(np.abs(decoded[mask]) <= 2.0 * scale + 1e-9)


class TestTrimUnbiasedness:
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        depth=st.integers(min_value=100, max_value=1000),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_scalar_estimate_tracks_clipped_input(self, seed, depth):
        """Averaging fully independent shared-randomness draws of the
        trimmed estimate converges on the clipped coordinate — the
        unbiasedness that makes trimming benign for SGD."""
        n, rounds = 256, 400
        x = gradient(n, seed)
        mask = trim_mask(n, depth, seed + 1)
        if not mask.any():
            return
        for codec_cls in SCALAR_CODECS:
            codec = codec_cls(root_seed=seed)
            acc = np.zeros(n)
            scale = None
            for message_id in range(rounds):
                enc = codec.encode(x, message_id=message_id)
                acc += codec.decode(enc, trimmed=mask)
                scale = enc.metadata.scale
            mean = acc / rounds
            clipped = np.clip(x, -scale, scale)
            # CLT bound: per-draw std is at most ~1.5*scale, so the mean
            # of `rounds` draws sits within ~6 standard errors.
            tol = 6.0 * 1.5 * scale / np.sqrt(rounds)
            assert np.max(np.abs(mean[mask] - clipped[mask])) < tol

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=5, deadline=None, derandomize=True)
    def test_rht_estimate_tracks_input(self, seed):
        """RHT full-trim decode is unbiased across rotation draws."""
        n, rounds = 64, 600
        x = gradient(n, seed)
        codec = RHTCodec(root_seed=seed, row_size=64)
        full_trim = np.ones(n, dtype=bool)
        acc = np.zeros(n)
        for message_id in range(rounds):
            enc = codec.encode(x, message_id=message_id)
            acc += codec.decode(enc, trimmed=full_trim)
        mean = acc / rounds
        # Row scale is O(sigma); the estimator error after averaging
        # shrinks as 1/sqrt(rounds).
        tol = 8.0 * float(np.std(x)) * np.sqrt(n) / np.sqrt(rounds)
        assert np.max(np.abs(mean - x)) < tol
