"""Tests for the gradient-statistics analysis helpers."""

import numpy as np
import pytest

from repro.core import codec_error_profile, heavy_tail_index, per_parameter_scales
from repro.core.analysis import GAUSSIAN_TAIL_INDEX


class TestHeavyTailIndex:
    def test_gaussian_near_theory(self):
        x = np.random.default_rng(0).standard_normal(200_000)
        assert heavy_tail_index(x) == pytest.approx(GAUSSIAN_TAIL_INDEX, rel=0.02)

    def test_heavy_tails_score_higher(self):
        rng = np.random.default_rng(1)
        gaussian = rng.standard_normal(100_000)
        student = rng.standard_t(df=2, size=100_000)
        assert heavy_tail_index(student) > heavy_tail_index(gaussian)

    def test_constant_vector(self):
        assert heavy_tail_index(np.ones(100)) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert heavy_tail_index(np.zeros(100)) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            heavy_tail_index(np.zeros(0))


class TestPerParameterScales:
    def test_reports_every_parameter(self):
        from repro.nn import MLP, Tensor, cross_entropy

        model = MLP(10, [8], 3, seed=0)
        model.zero_grad()
        x = np.random.default_rng(0).standard_normal((4, 10))
        cross_entropy(model(Tensor(x)), np.array([0, 1, 2, 0])).backward()
        records = per_parameter_scales(model)
        assert len(records) == len(model.parameters())
        assert all(r["rms"] > 0 for r in records)
        assert sum(r["size"] for r in records) == model.num_parameters()

    def test_no_backward_gives_zero_rms(self):
        from repro.nn import MLP

        records = per_parameter_scales(MLP(4, [2], 2, seed=0))
        assert all(r["rms"] == 0.0 for r in records)


class TestCodecErrorProfile:
    def test_profiles_all_registered_codecs_by_default(self):
        from repro.core import available_codecs

        x = np.random.default_rng(0).standard_normal(4096)
        profile = codec_error_profile(x, trim_rates=(0.5,))
        assert set(profile) == set(available_codecs())

    def test_error_monotone_in_trim_rate(self):
        x = np.random.default_rng(1).standard_normal(2**13)
        profile = codec_error_profile(x, trim_rates=(0.1, 0.5, 1.0), codecs=["rht"])
        errors = list(profile["rht"].values())
        assert errors == sorted(errors)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            codec_error_profile(np.ones(16), trim_rates=(1.5,), codecs=["sign"])

    def test_matches_t2_story_on_heavy_tails(self):
        x = np.random.default_rng(2).standard_t(df=2, size=2**14)
        profile = codec_error_profile(x, trim_rates=(1.0,), codecs=["sign", "rht"])
        assert profile["rht"][1.0] < profile["sign"][1.0]
