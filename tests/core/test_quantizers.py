"""Tests for the scalar 1-bit codecs (sign, SQ, SD)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SignMagnitudeCodec,
    StochasticQuantizationCodec,
    SubtractiveDitheringCodec,
    available_codecs,
    codec_by_id,
    codec_by_name,
    nmse,
)


def gradient(n=2000, seed=0):
    return np.random.default_rng(seed).standard_normal(n).astype(np.float32).astype(np.float64)


ALL_SCALAR = [SignMagnitudeCodec, StochasticQuantizationCodec, SubtractiveDitheringCodec]


class TestRegistry:
    def test_names_registered(self):
        for name in ["sign", "sq", "sd", "rht"]:
            assert name in available_codecs()

    def test_by_name_and_by_id_agree(self):
        for name in ["sign", "sq", "sd"]:
            codec = codec_by_name(name)
            assert type(codec_by_id(codec.codec_id)) is type(codec)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown codec"):
            codec_by_name("huffman")

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            codec_by_id(250)


@pytest.mark.parametrize("codec_cls", ALL_SCALAR)
class TestCommonScalarBehaviour:
    def test_untrimmed_decode_near_exact(self, codec_cls):
        x = gradient()
        codec = codec_cls(root_seed=3)
        decoded = codec.decode(codec.encode(x))
        # sign is exactly lossless; SQ/SD lose at most one mantissa ULP.
        assert nmse(x, decoded) < 1e-13

    def test_geometry(self, codec_cls):
        enc = codec_cls().encode(gradient(100))
        assert enc.head_bits == 1
        assert enc.tail_bits == 31
        assert enc.length == 100
        assert enc.heads.max() <= 1
        assert enc.tails.max() < 2**31

    def test_metadata_has_sigma(self, codec_cls):
        x = gradient()
        enc = codec_cls().encode(x)
        assert np.isclose(enc.metadata.sigma, np.std(x))

    def test_all_trimmed_is_finite_and_bounded(self, codec_cls):
        x = gradient(500)
        codec = codec_cls(root_seed=1)
        enc = codec.encode(x)
        decoded = codec.decode(enc, trimmed=np.ones(500, dtype=bool))
        assert np.all(np.isfinite(decoded))
        assert np.abs(decoded).max() < 10 * np.std(x)

    def test_missing_decodes_to_zero(self, codec_cls):
        x = gradient(100)
        codec = codec_cls()
        enc = codec.encode(x)
        missing = np.zeros(100, dtype=bool)
        missing[:10] = True
        decoded = codec.decode(enc, missing=missing)
        assert np.all(decoded[:10] == 0.0)
        assert nmse(x[10:], decoded[10:]) < 1e-13

    def test_zero_gradient_handled(self, codec_cls):
        codec = codec_cls()
        x = np.zeros(64)
        enc = codec.encode(x)
        decoded = codec.decode(enc, trimmed=np.ones(64, dtype=bool))
        assert np.all(np.isfinite(decoded))
        assert np.allclose(decoded, 0.0)

    def test_wrong_codec_id_rejected(self, codec_cls):
        enc = codec_cls().encode(gradient(10))
        others = [c for c in ALL_SCALAR if c is not codec_cls]
        with pytest.raises(ValueError, match="cannot decode"):
            others[0]().decode(enc)

    def test_bad_mask_shape_rejected(self, codec_cls):
        codec = codec_cls()
        enc = codec.encode(gradient(10))
        with pytest.raises(ValueError, match="mask shape"):
            codec.decode(enc, trimmed=np.zeros(5, dtype=bool))


class TestSignMagnitude:
    def test_trimmed_decodes_to_pm_sigma(self):
        x = gradient()
        codec = SignMagnitudeCodec()
        enc = codec.encode(x)
        decoded = codec.decode(enc, trimmed=np.ones(x.size, dtype=bool))
        sigma = np.std(x)
        assert np.allclose(np.abs(decoded), sigma)
        assert np.array_equal(np.sign(decoded), np.where(x >= 0, 1.0, -1.0))

    def test_untrimmed_is_bit_exact(self):
        x = gradient()
        codec = SignMagnitudeCodec()
        decoded = codec.decode(codec.encode(x))
        assert np.array_equal(decoded.astype(np.float32), x.astype(np.float32))

    def test_negative_zero_round_trips(self):
        x = np.array([-0.0, 0.0, 1.5, -2.5])
        decoded = SignMagnitudeCodec().decode(SignMagnitudeCodec().encode(x))
        assert np.array_equal(
            np.signbit(decoded.astype(np.float32)), np.signbit(x.astype(np.float32))
        )

    def test_trimmed_error_is_biased_on_heavy_tails(self):
        """The sign decode inflates small coordinates to ±σ — with
        heavy-tailed gradients (σ dominated by outliers) this is the bias
        that makes training diverge at >= 2% trim in the paper."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal(50000) * 0.01
        x[:50] = rng.standard_normal(50) * 10.0  # outliers dominate sigma
        codec = SignMagnitudeCodec()
        enc = codec.encode(x)
        decoded = codec.decode(enc, trimmed=np.ones(x.size, dtype=bool))
        small = np.abs(decoded[50:])
        assert small.mean() > np.abs(x[50:]).mean() * 10


class TestStochasticQuantization:
    def test_trimmed_decode_is_unbiased(self):
        rng = np.random.default_rng(7)
        x = np.clip(rng.standard_normal(200000), -2.4, 2.4)
        codec = StochasticQuantizationCodec(root_seed=5)
        enc = codec.encode(x)
        decoded = codec.decode(enc, trimmed=np.ones(x.size, dtype=bool))
        # Mean decoded value tracks the mean input (unbiasedness).
        assert abs(decoded.mean() - x.mean()) < 0.02

    def test_trimmed_values_are_pm_L(self):
        x = gradient(1000)
        codec = StochasticQuantizationCodec()
        enc = codec.encode(x)
        decoded = codec.decode(enc, trimmed=np.ones(1000, dtype=bool))
        L = enc.metadata.scale
        assert np.isclose(L, 2.5 * np.std(x))
        assert set(np.round(np.unique(np.abs(decoded)), 10)) == {np.round(L, 10)}

    def test_encode_probability_tracks_value(self):
        """Coordinates near +L encode to +1 almost surely."""
        codec = StochasticQuantizationCodec(root_seed=0)
        x = np.full(5000, 1.0)
        x[::2] = -1.0  # sigma = 1, L = 2.5
        enc = codec.encode(x)
        plus_rate_pos = enc.heads[1::2].mean()  # x = +1 -> p+ = 3.5/5 = .7
        plus_rate_neg = enc.heads[::2].mean()  # x = -1 -> p+ = 1.5/5 = .3
        assert 0.65 < plus_rate_pos < 0.75
        assert 0.25 < plus_rate_neg < 0.35

    def test_epoch_changes_randomness(self):
        codec = StochasticQuantizationCodec(root_seed=1)
        x = gradient(500)
        h1 = codec.encode(x, epoch=1).heads
        h2 = codec.encode(x, epoch=2).heads
        assert not np.array_equal(h1, h2)


class TestSubtractiveDithering:
    def test_decode_regenerates_same_dither(self):
        x = gradient(3000)
        sender = SubtractiveDitheringCodec(root_seed=9)
        receiver = SubtractiveDitheringCodec(root_seed=9)
        enc = sender.encode(x, epoch=4, message_id=2)
        decoded = receiver.decode(enc, trimmed=np.ones(x.size, dtype=bool))
        # SD's worst-case error per coordinate is bounded by 1.5L.
        L = enc.metadata.scale
        assert np.abs(decoded - np.clip(x, -L, L)).max() <= 1.5 * L + 1e-9

    def test_sd_beats_sq_variance(self):
        """SD has lower trimmed-decode error than SQ on the same input."""
        x = gradient(100000, seed=11)
        sq = StochasticQuantizationCodec(root_seed=1)
        sd = SubtractiveDitheringCodec(root_seed=1)
        mask = np.ones(x.size, dtype=bool)
        err_sq = nmse(x, sq.decode(sq.encode(x), trimmed=mask))
        err_sd = nmse(x, sd.decode(sd.encode(x), trimmed=mask))
        assert err_sd < err_sq

    def test_different_root_seed_breaks_decode(self):
        """A receiver with the wrong shared seed decodes garbage dither."""
        x = gradient(1000)
        enc = SubtractiveDitheringCodec(root_seed=1).encode(x)
        good = SubtractiveDitheringCodec(root_seed=1)
        mask = np.ones(x.size, dtype=bool)
        ok = good.decode(enc, trimmed=mask)
        # Same encoded object decoded twice is deterministic.
        assert np.array_equal(ok, good.decode(enc, trimmed=mask))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=1, max_value=500),
    scale=st.floats(min_value=1e-6, max_value=1e6),
)
@pytest.mark.parametrize("codec_cls", ALL_SCALAR)
def test_untrimmed_round_trip_property(codec_cls, seed, n, scale):
    """No-trim decode is (near-)lossless for any input scale and length."""
    x = (np.random.default_rng(seed).standard_normal(n) * scale).astype(np.float32)
    codec = codec_cls(root_seed=seed)
    decoded = codec.decode(codec.encode(x.astype(np.float64)))
    assert nmse(x, decoded) < 1e-12
