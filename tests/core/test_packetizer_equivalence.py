"""Old-vs-new packetize/depacketize equivalence and zero-copy invariants.

PR 4 rewrote the wire path to pack whole messages in batched numpy calls
and hand out zero-copy payload views.  These tests pin the rewrite to the
original per-packet semantics: a reference implementation (transcribed
from the pre-rewrite code, one ``pack_bits``/``unpack_bits`` call per
packet) must agree with the production path bit for bit — on pristine
messages and under hypothesis-driven trimming, dropping, and reordering.
"""

from typing import Iterable, List, Optional

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EncodedGradient, codec_by_name, depacketize, packetize
from repro.core.layout import coords_per_packet
from repro.core.metadata import GradientMetadata
from repro.core.packetizer import GradientMessage
from repro.packet import (
    GRADIENT_HEADER_BYTES,
    GradientHeader,
    Packet,
    pack_bits,
    packed_size,
    unpack_bits,
)
from repro.packet.header import FLAG_METADATA


def reference_packetize(
    enc: EncodedGradient, src: str = "", dst: str = "", mtu: int = 1500
) -> List[Packet]:
    """The pre-rewrite per-packet serializer (owned-bytes payloads)."""
    meta = enc.metadata
    n_per_packet = coords_per_packet(mtu, enc.head_bits, enc.tail_bits)
    meta_header = GradientHeader(
        codec_id=enc.codec_id,
        head_bits=enc.head_bits,
        tail_bits=enc.tail_bits,
        message_id=meta.message_id,
        epoch=meta.epoch,
        chunk_index=0,
        coord_offset=0,
        coord_count=0,
        seed=meta.seed,
        flags=FLAG_METADATA,
    )
    packets = [
        Packet(
            src=src,
            dst=dst,
            payload=meta_header.to_bytes() + meta.to_bytes(),
            grad_header=meta_header,
            priority=1,
        )
    ]
    for chunk, offset in enumerate(range(0, enc.length, n_per_packet)):
        end = min(offset + n_per_packet, enc.length)
        header = GradientHeader(
            codec_id=enc.codec_id,
            head_bits=enc.head_bits,
            tail_bits=enc.tail_bits,
            message_id=meta.message_id,
            epoch=meta.epoch,
            chunk_index=chunk + 1,
            coord_offset=offset,
            coord_count=end - offset,
            seed=meta.seed,
        )
        payload = (
            header.to_bytes()
            + pack_bits(enc.heads[offset:end], enc.head_bits)
            + pack_bits(enc.tails[offset:end], enc.tail_bits)
        )
        packets.append(
            Packet(src=src, dst=dst, payload=payload, grad_header=header, seq=chunk + 1)
        )
    return packets


def reference_depacketize(
    packets: Iterable[Packet], length: Optional[int] = None
) -> GradientMessage:
    """The pre-rewrite per-packet reassembler (one unpack per plane)."""
    data_packets: List[Packet] = []
    metadata = None
    geometry: Optional[GradientHeader] = None
    for pkt in packets:
        header = pkt.grad_header or GradientHeader.from_bytes(pkt.payload)
        if header.is_metadata:
            metadata = GradientMetadata.from_bytes(pkt.payload[GRADIENT_HEADER_BYTES:])
            geometry = geometry or header
        else:
            data_packets.append(pkt)
            geometry = header if geometry is None or geometry.is_metadata else geometry
    if geometry is None:
        raise ValueError("no gradient packets to depacketize")
    headers = [p.grad_header or GradientHeader.from_bytes(p.payload) for p in data_packets]
    if length is None:
        length = max((h.coord_offset + h.coord_count for h in headers), default=0)
    full_head_bits = full_tail_bits = None
    for hdr in headers:
        if not hdr.trimmed:
            full_head_bits, full_tail_bits = hdr.head_bits, hdr.tail_bits
            break
    if full_head_bits is None or full_tail_bits is None:
        full_head_bits, full_tail_bits = geometry.head_bits, geometry.tail_bits
    heads = np.zeros(length, dtype=np.uint32)
    tails = np.zeros(length, dtype=np.uint32)
    trimmed = np.zeros(length, dtype=bool)
    covered = np.zeros(length, dtype=bool)
    for hdr, pkt in zip(headers, data_packets):
        body = bytes(pkt.payload[GRADIENT_HEADER_BYTES:])
        lo, hi = hdr.coord_offset, hdr.coord_offset + hdr.coord_count
        heads[lo:hi] = unpack_bits(body, hdr.coord_count, hdr.head_bits)
        covered[lo:hi] = True
        if hdr.trimmed:
            trimmed[lo:hi] = True
        else:
            tail_start = packed_size(hdr.coord_count, hdr.head_bits)
            tails[lo:hi] = unpack_bits(body[tail_start:], hdr.coord_count, hdr.tail_bits)
    return GradientMessage(
        heads=heads,
        tails=tails,
        trimmed=trimmed,
        missing=~covered,
        metadata=metadata,
        codec_id=geometry.codec_id,
        head_bits=full_head_bits,
        tail_bits=full_tail_bits,
        length=length,
    )


def make_encoded(length: int, head_bits: int, tail_bits: int, seed: int = 0) -> EncodedGradient:
    """Synthetic encoded gradient with arbitrary geometry."""
    rng = np.random.default_rng(seed)
    return EncodedGradient(
        codec_id=1,
        head_bits=head_bits,
        tail_bits=tail_bits,
        length=length,
        heads=rng.integers(0, 1 << head_bits, size=length, dtype=np.uint32),
        tails=rng.integers(0, 1 << tail_bits, size=length, dtype=np.uint32),
        metadata=GradientMetadata(
            message_id=7,
            epoch=3,
            original_length=length,
            row_size=0,
            seed=seed,
            sigma=1.0,
        ),
    )


def assert_messages_equal(a: GradientMessage, b: GradientMessage) -> None:
    assert a.length == b.length
    assert a.codec_id == b.codec_id
    assert (a.head_bits, a.tail_bits) == (b.head_bits, b.tail_bits)
    assert np.array_equal(a.heads, b.heads)
    assert np.array_equal(a.tails, b.tails)
    assert np.array_equal(a.trimmed, b.trimmed)
    assert np.array_equal(a.missing, b.missing)
    assert (a.metadata is None) == (b.metadata is None)


geometries = st.tuples(
    st.integers(min_value=1, max_value=700),   # length
    st.integers(min_value=1, max_value=8),     # head bits
    st.integers(min_value=1, max_value=31),    # tail bits
    st.integers(min_value=0, max_value=2**31), # rng seed
)


class TestPacketizeEquivalence:
    @given(geometries)
    @settings(max_examples=60, deadline=None)
    def test_wire_bytes_identical(self, geom):
        length, head_bits, tail_bits, seed = geom
        enc = make_encoded(length, head_bits, tail_bits, seed)
        new = packetize(enc, "s", "d", mtu=256)
        old = reference_packetize(enc, "s", "d", mtu=256)
        assert len(new) == len(old)
        for new_pkt, old_pkt in zip(new, old):
            assert bytes(new_pkt.payload) == bytes(old_pkt.payload)
            assert new_pkt.grad_header == old_pkt.grad_header

    @given(geometries, st.data())
    @settings(max_examples=60, deadline=None)
    def test_depacketize_equivalence_under_chaos(self, geom, data):
        """Trim, drop, and reorder packets; both reassemblers must agree."""
        length, head_bits, tail_bits, seed = geom
        enc = make_encoded(length, head_bits, tail_bits, seed)
        packets = packetize(enc, "s", "d", mtu=256)
        received = [packets[0]]  # keep the reliable metadata packet
        for pkt in packets[1:]:
            fate = data.draw(st.sampled_from(["keep", "trim", "drop"]))
            if fate == "drop":
                continue
            received.append(pkt.trim() if fate == "trim" else pkt)
        order = data.draw(st.permutations(range(len(received))))
        received = [received[i] for i in order]
        assert_messages_equal(
            depacketize(received, length=enc.length),
            reference_depacketize(received, length=enc.length),
        )

    @given(geometries)
    @settings(max_examples=40, deadline=None)
    def test_round_trip_with_inferred_length(self, geom):
        length, head_bits, tail_bits, seed = geom
        enc = make_encoded(length, head_bits, tail_bits, seed)
        msg = depacketize(packetize(enc, mtu=256))
        ref = reference_depacketize(reference_packetize(enc, mtu=256))
        assert_messages_equal(msg, ref)
        assert np.array_equal(msg.heads, enc.heads)
        assert np.array_equal(msg.tails, enc.tails)
        assert not msg.trimmed.any() and not msg.missing.any()

    def test_new_depacketize_reads_reference_packets_and_vice_versa(self):
        """Cross-compatibility: either serializer feeds either reassembler."""
        enc = make_encoded(500, 1, 31, seed=5)
        new_pkts = packetize(enc, mtu=256)
        old_pkts = reference_packetize(enc, mtu=256)
        assert_messages_equal(
            depacketize(old_pkts), reference_depacketize(new_pkts)
        )

    def test_all_trimmed_message(self):
        enc = make_encoded(300, 2, 14, seed=9)
        packets = packetize(enc, mtu=128)
        received = [packets[0]] + [p.trim() for p in packets[1:]]
        assert_messages_equal(
            depacketize(received, length=enc.length),
            reference_depacketize(received, length=enc.length),
        )


class TestZeroCopyInvariants:
    def test_data_payloads_are_readonly_views(self):
        enc = make_encoded(400, 1, 31)
        packets = packetize(enc, mtu=256)
        for pkt in packets[1:]:
            assert isinstance(pkt.payload, memoryview)
            assert pkt.payload.readonly

    def test_views_share_one_message_buffer(self):
        enc = make_encoded(400, 1, 31)
        packets = packetize(enc, mtu=256)
        bufs = {pkt.payload.obj is packets[1].payload.obj for pkt in packets[2:]}
        assert bufs == {True}

    def test_trimmed_packet_owns_its_bytes(self):
        enc = make_encoded(400, 1, 31)
        pkt = packetize(enc, mtu=256)[1]
        trimmed = pkt.trim()
        assert isinstance(trimmed.payload, bytes)
        assert trimmed.grad_header is not None and trimmed.grad_header.trimmed

    def test_seal_and_verify_work_on_views(self):
        enc = make_encoded(200, 1, 31)
        for pkt in packetize(enc, mtu=256):
            sealed = pkt.seal()
            assert sealed.verify()

    def test_decode_matches_through_real_codec(self):
        grad = np.random.default_rng(3).standard_normal(2048)
        codec = codec_by_name("sign", root_seed=11)
        enc = codec.encode(grad, epoch=0, message_id=1)
        packets = packetize(enc, "a", "b")
        msg = depacketize(packets)
        ref = reference_depacketize(reference_packetize(enc, "a", "b", mtu=1500))
        assert_messages_equal(msg, ref)
        out = codec.decode(msg.to_encoded(), trimmed=msg.trimmed, missing=msg.missing)
        out_ref = codec.decode(ref.to_encoded(), trimmed=ref.trimmed, missing=ref.missing)
        assert np.array_equal(out, out_ref)

    @pytest.mark.parametrize("fate", ["trim", "drop"])
    def test_sticky_duplicate_semantics(self, fate):
        """A trimmed duplicate of a full packet keeps the trimmed flag
        sticky, exactly as the old per-packet loop did."""
        enc = make_encoded(300, 1, 31)
        packets = packetize(enc, mtu=256)
        dup = packets[1].trim() if fate == "trim" else packets[1]
        received = packets + [dup]
        assert_messages_equal(
            depacketize(received, length=enc.length),
            reference_depacketize(received, length=enc.length),
        )
