"""Tests for the Section 5.1 multi-level (1/8/32-bit) tiered codec."""

import numpy as np
import pytest

from repro.core import LEVEL_BITS, MultiLevelCodec, nmse
from repro.packet import MultiLevelTrim, trim_to_bits


def gradient(n=4096, seed=0):
    return np.random.default_rng(seed).standard_normal(n)


class TestArrayLevel:
    def test_full_precision_decode_near_exact(self):
        x = gradient()
        codec = MultiLevelCodec(root_seed=1, row_size=1024)
        decoded = codec.decode(codec.encode(x))
        assert nmse(x, decoded) < 1e-10

    def test_error_ordering_by_level(self):
        """More surviving bits -> strictly lower reconstruction error."""
        x = gradient(2**13, seed=3)
        codec = MultiLevelCodec(root_seed=2, row_size=2048)
        enc = codec.encode(x)
        errors = {}
        for bits in LEVEL_BITS:
            levels = np.full(enc.length, bits, dtype=np.int64)
            errors[bits] = nmse(x, codec.decode(enc, levels))
        assert errors[32] < errors[8] < errors[1]
        assert errors[8] < 1e-3  # 8-bit uniform quantization is already good
        assert errors[1] < 1.0

    def test_one_bit_level_matches_rht_codec(self):
        """Level-1 decoding is exactly the DRIVE sign+scale rule."""
        from repro.core import RHTCodec

        x = gradient(2048, seed=5)
        ml = MultiLevelCodec(root_seed=7, row_size=1024)
        rht = RHTCodec(root_seed=7, row_size=1024)
        enc_ml = ml.encode(x, epoch=1, message_id=2)
        enc_r = rht.encode(x, epoch=1, message_id=2)
        dec_ml = ml.decode(enc_ml, np.full(enc_ml.length, 1, dtype=np.int64))
        dec_r = rht.decode(enc_r, trimmed=np.ones(enc_r.length, dtype=bool))
        assert np.allclose(dec_ml, dec_r, atol=1e-6)

    def test_level_zero_means_missing(self):
        x = gradient(1024, seed=1)
        codec = MultiLevelCodec(root_seed=1, row_size=1024)
        enc = codec.encode(x)
        decoded = codec.decode(enc, np.zeros(enc.length, dtype=np.int64))
        assert np.allclose(decoded, 0.0)

    def test_mixed_levels(self):
        x = gradient(2048, seed=2)
        codec = MultiLevelCodec(root_seed=1, row_size=1024)
        enc = codec.encode(x)
        rng = np.random.default_rng(0)
        levels = rng.choice([0, 1, 8, 32], size=enc.length, p=[0.05, 0.25, 0.3, 0.4])
        decoded = codec.decode(enc, levels)
        assert np.all(np.isfinite(decoded))
        assert nmse(x, decoded) < 0.5

    def test_invalid_level_rejected(self):
        codec = MultiLevelCodec(row_size=64)
        enc = codec.encode(gradient(64))
        with pytest.raises(ValueError, match="invalid level"):
            codec.decode(enc, np.full(enc.length, 4, dtype=np.int64))

    def test_bad_levels_shape_rejected(self):
        codec = MultiLevelCodec(row_size=64)
        enc = codec.encode(gradient(64))
        with pytest.raises(ValueError, match="levels shape"):
            codec.decode(enc, np.zeros(3, dtype=np.int64))


class TestPacketLevel:
    def test_round_trip_untrimmed(self):
        x = gradient(3000, seed=4)
        codec = MultiLevelCodec(root_seed=3, row_size=1024)
        enc = codec.encode(x)
        back, levels = codec.depacketize(codec.packetize(enc, "a", "b"))
        assert np.all(levels == 32)
        assert nmse(x, codec.decode(back, levels)) < 1e-10

    def test_switch_trim_to_8_bits(self):
        x = gradient(3000, seed=4)
        codec = MultiLevelCodec(root_seed=3, row_size=1024)
        packets = codec.packetize(codec.encode(x), "a", "b")
        wire = [packets[0]] + [trim_to_bits(p, 8) for p in packets[1:]]
        back, levels = codec.depacketize(wire)
        assert np.all(levels == 8)
        err = nmse(x, codec.decode(back, levels))
        assert err < 1e-3

    def test_switch_trim_to_1_bit(self):
        x = gradient(3000, seed=4)
        codec = MultiLevelCodec(root_seed=3, row_size=1024)
        packets = codec.packetize(codec.encode(x), "a", "b")
        wire = [packets[0]] + [trim_to_bits(p, 1) for p in packets[1:]]
        back, levels = codec.depacketize(wire)
        assert np.all(levels == 1)
        err = nmse(x, codec.decode(back, levels))
        assert err < 1.0

    def test_mixed_trim_depths_on_wire(self):
        x = gradient(2**13, seed=8)
        codec = MultiLevelCodec(root_seed=3, row_size=1024)
        packets = codec.packetize(codec.encode(x), "a", "b")
        policy = MultiLevelTrim(level_bits=[8, 1], thresholds=[0.7, 0.9])
        rng = np.random.default_rng(2)
        wire = [packets[0]]
        for pkt in packets[1:]:
            fill = rng.random()
            if fill < 0.5:
                wire.append(pkt)
            else:
                wire.append(policy.apply(pkt, policy.decide(pkt, fill)))
        back, levels = codec.depacketize(wire)
        assert set(np.unique(levels)) <= {1, 8, 32}
        assert nmse(x, codec.decode(back, levels)) < 0.6

    def test_trim_sizes_match_paper_targets(self):
        """Section 5.1: trim to ~25% (8 bits) or ~3% (1 bit) of full size."""
        x = gradient(3000, seed=4)
        codec = MultiLevelCodec(root_seed=3, row_size=1024)
        packets = codec.packetize(codec.encode(x), "a", "b")
        full = packets[1]
        frac8 = trim_to_bits(full, 8).wire_size / full.wire_size
        frac1 = trim_to_bits(full, 1).wire_size / full.wire_size
        assert 0.2 < frac8 < 0.35
        assert frac1 < 0.12

    def test_missing_metadata_rejected(self):
        codec = MultiLevelCodec(root_seed=3, row_size=1024)
        packets = codec.packetize(codec.encode(gradient(100)), "a", "b")
        with pytest.raises(ValueError, match="metadata packet missing"):
            codec.depacketize(packets[1:])

    def test_dropped_packets_get_level_zero(self):
        x = gradient(2**13, seed=9)
        codec = MultiLevelCodec(root_seed=3, row_size=1024)
        packets = codec.packetize(codec.encode(x), "a", "b")
        kept = [packets[0]] + packets[2:]
        back, levels = codec.depacketize(kept)
        dropped = packets[1].grad_header
        lo, hi = dropped.coord_offset, dropped.coord_offset + dropped.coord_count
        assert np.all(levels[lo:hi] == 0)
        assert np.all(levels[hi:] == 32)
