"""Tests for the reliable metadata side-channel serialization."""

import numpy as np
import pytest

from repro.core import GradientMetadata


def make_metadata(**overrides):
    fields = dict(
        message_id=77,
        epoch=3,
        original_length=100000,
        row_size=32768,
        seed=123456789,
        sigma=0.0123,
        scale=0.030751,
        row_scales=np.array([1.2, 1.3, 1.25]),
        aux_scales=np.array([4.0, 4.1, 3.9]),
    )
    fields.update(overrides)
    return GradientMetadata(**fields)


class TestRoundTrip:
    def test_full_round_trip(self):
        meta = make_metadata()
        parsed = GradientMetadata.from_bytes(meta.to_bytes())
        assert parsed.message_id == meta.message_id
        assert parsed.epoch == meta.epoch
        assert parsed.original_length == meta.original_length
        assert parsed.row_size == meta.row_size
        assert parsed.seed == meta.seed
        assert parsed.sigma == pytest.approx(meta.sigma)
        assert parsed.scale == pytest.approx(meta.scale)
        assert np.allclose(parsed.row_scales, meta.row_scales)
        assert np.allclose(parsed.aux_scales, meta.aux_scales)

    def test_empty_scales(self):
        meta = make_metadata(row_scales=np.zeros(0), aux_scales=np.zeros(0))
        parsed = GradientMetadata.from_bytes(meta.to_bytes())
        assert parsed.row_scales.size == 0
        assert parsed.aux_scales.size == 0

    def test_wire_bytes_matches_serialization(self):
        meta = make_metadata()
        assert meta.wire_bytes == len(meta.to_bytes())

    def test_metadata_packet_is_small(self):
        """The paper sends scales 'in a small packet': a 25 MB blob at
        row size 2^15 has 200 rows -> well under one MTU."""
        meta = make_metadata(row_scales=np.ones(200), aux_scales=np.zeros(0))
        assert meta.wire_bytes < 1458

    def test_trailing_bytes_ignored(self):
        meta = make_metadata()
        parsed = GradientMetadata.from_bytes(meta.to_bytes() + b"\x00" * 7)
        assert np.allclose(parsed.row_scales, meta.row_scales)


class TestValidation:
    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            GradientMetadata.from_bytes(b"\x01\x02")

    def test_truncated_scales_rejected(self):
        data = make_metadata().to_bytes()
        with pytest.raises(ValueError, match="truncated"):
            GradientMetadata.from_bytes(data[:-4])
