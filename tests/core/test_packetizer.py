"""Tests for packetize/depacketize — the Figure 2(b) wire layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RHTCodec,
    SignMagnitudeCodec,
    SubtractiveDitheringCodec,
    codec_by_name,
    decode_packets,
    depacketize,
    nmse,
    packetize,
)


def gradient(n=3000, seed=0):
    return np.random.default_rng(seed).standard_normal(n).astype(np.float32).astype(np.float64)


class TestPacketize:
    def test_first_packet_is_metadata(self):
        enc = SignMagnitudeCodec().encode(gradient())
        packets = packetize(enc, "h0", "h1")
        assert packets[0].grad_header.is_metadata
        assert packets[0].trimmable_bytes() is None
        assert all(not p.grad_header.is_metadata for p in packets[1:])

    def test_data_packets_respect_mtu(self):
        enc = SignMagnitudeCodec().encode(gradient())
        for pkt in packetize(enc, "h0", "h1", mtu=1500):
            assert pkt.wire_size <= 1500

    def test_coordinate_coverage_is_exact(self):
        enc = SignMagnitudeCodec().encode(gradient(1000))
        packets = packetize(enc, "h0", "h1")
        covered = sum(p.grad_header.coord_count for p in packets[1:])
        assert covered == 1000

    def test_chunk_indices_sequential(self):
        enc = SignMagnitudeCodec().encode(gradient(2000))
        packets = packetize(enc, "h0", "h1")
        assert [p.grad_header.chunk_index for p in packets[1:]] == list(
            range(1, len(packets))
        )

    def test_small_message_single_data_packet(self):
        enc = SignMagnitudeCodec().encode(gradient(10))
        packets = packetize(enc, "h0", "h1")
        assert len(packets) == 2  # metadata + one data packet

    def test_jumbo_mtu_fewer_packets(self):
        enc = SignMagnitudeCodec().encode(gradient(5000))
        standard = packetize(enc, "h0", "h1", mtu=1500)
        jumbo = packetize(enc, "h0", "h1", mtu=9000)
        assert len(jumbo) < len(standard)


class TestDepacketize:
    @pytest.mark.parametrize("name", ["sign", "sq", "sd", "rht"])
    def test_round_trip_no_trim(self, name):
        x = gradient(2500)
        codec = codec_by_name(name, root_seed=3)
        enc = codec.encode(x, epoch=2, message_id=5)
        decoded = decode_packets(packetize(enc, "a", "b"), codec)
        assert nmse(x, decoded) < 1e-12

    @pytest.mark.parametrize("name", ["sign", "sq", "sd", "rht"])
    def test_round_trip_decodes_via_registry(self, name):
        """decode_packets can reconstruct the codec from the wire id."""
        x = gradient(800)
        codec = codec_by_name(name, root_seed=0)
        enc = codec.encode(x)
        decoded = decode_packets(packetize(enc, "a", "b"))
        assert nmse(x, decoded) < 1e-12

    def test_out_of_order_arrival(self):
        x = gradient(2500)
        codec = SubtractiveDitheringCodec(root_seed=1)
        packets = packetize(codec.encode(x), "a", "b")
        rng = np.random.default_rng(0)
        shuffled = [packets[i] for i in rng.permutation(len(packets))]
        assert nmse(x, decode_packets(shuffled, codec)) < 1e-12

    def test_trimmed_packets_mark_coordinates(self):
        x = gradient(3000)
        codec = SignMagnitudeCodec()
        packets = packetize(codec.encode(x), "a", "b")
        packets[1] = packets[1].trim()
        message = depacketize(packets)
        hdr = packets[1].grad_header
        lo, hi = hdr.coord_offset, hdr.coord_offset + hdr.coord_count
        assert message.trimmed[lo:hi].all()
        assert not message.trimmed[hi:].any()
        assert message.trim_fraction == pytest.approx(hdr.coord_count / 3000)

    def test_trimmed_decode_uses_head_estimates(self):
        x = gradient(3000)
        codec = SignMagnitudeCodec()
        packets = packetize(codec.encode(x), "a", "b")
        trimmed = [packets[0]] + [p.trim() for p in packets[1:]]
        decoded = decode_packets(trimmed, codec)
        assert np.allclose(np.abs(decoded), np.std(x))

    def test_dropped_packet_marks_missing(self):
        x = gradient(3000)
        codec = SignMagnitudeCodec()
        packets = packetize(codec.encode(x), "a", "b")
        hdr = packets[2].grad_header
        del packets[2]
        message = depacketize(packets, length=3000)
        lo, hi = hdr.coord_offset, hdr.coord_offset + hdr.coord_count
        assert message.missing[lo:hi].all()
        decoded = decode_packets(packets, codec, length=3000)
        assert np.all(decoded[lo:hi] == 0.0)

    def test_missing_metadata_raises_on_decode(self):
        x = gradient(500)
        codec = SignMagnitudeCodec()
        packets = packetize(codec.encode(x), "a", "b")[1:]  # drop metadata
        message = depacketize(packets)
        assert message.metadata is None
        with pytest.raises(ValueError, match="metadata packet missing"):
            message.to_encoded()

    def test_no_packets_raises(self):
        with pytest.raises(ValueError, match="no gradient packets"):
            depacketize([])

    def test_rht_packet_path_with_trimming(self):
        """Trimming 30% of packets of an RHT message keeps NMSE near the
        array-level prediction."""
        x = gradient(2**13, seed=9)
        codec = RHTCodec(root_seed=2, row_size=1024)
        enc = codec.encode(x)
        packets = packetize(enc, "a", "b")
        rng = np.random.default_rng(1)
        wire = [packets[0]] + [
            p.trim() if rng.random() < 0.3 else p for p in packets[1:]
        ]
        decoded = decode_packets(wire, codec)
        assert nmse(x, decoded) < 0.3 * (np.pi / 2 - 1) + 0.15


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=1500),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mtu=st.sampled_from([576, 1500, 9000]),
)
def test_packet_round_trip_property(n, seed, mtu):
    """packetize/depacketize is lossless for any length and MTU."""
    x = np.random.default_rng(seed).standard_normal(n)
    codec = SignMagnitudeCodec()
    enc = codec.encode(x)
    decoded = decode_packets(packetize(enc, "a", "b", mtu=mtu), codec)
    assert nmse(x, decoded) < 1e-12
